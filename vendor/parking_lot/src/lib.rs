//! Minimal `parking_lot` replacement backed by `std::sync`.
//!
//! Matches parking_lot's non-poisoning API shape: `lock()`, `read()`,
//! and `write()` return guards directly. A poisoned std lock (panic
//! while held) just yields the inner data, mirroring parking_lot's
//! behavior of not propagating poison.
//!
//! # Lock labels and the `tracked` feature
//!
//! Every lock may carry a *label* (`Mutex::labeled`,
//! `RwLock::labeled_ranked`) naming its role in the workspace lock
//! hierarchy — `journal.meta`, `journal.shard`, `storage.wal`, … The
//! labels mirror `fremont-lint`'s `lock_labels` table, so the static
//! `lock-order`/`shard-lock-order` rules and this crate talk about the
//! same objects.
//!
//! In the default build labels are erased at construction and the shim
//! compiles down to the plain std wrappers above — zero cost. With the
//! `tracked` feature (enabled workspace-wide via the `lock-sanitizer`
//! features on `fremont-journal`/`fremont-storage`), every labeled
//! acquisition is checked against the acquisition DAG the lint pass
//! exports to `crates/lint/lock-order.golden`:
//!
//! * acquiring label `B` while holding label `A` requires the edge
//!   `A -> B` in the golden;
//! * re-acquiring the *same* label (e.g. two shards) requires a
//!   strictly ascending rank — ranks are the shard indices;
//! * unlabeled locks are never tracked.
//!
//! A violation panics with both label chains: the acquiring thread's
//! held stack and the chain the last holder of the contested label was
//! holding when it took it. See [`sanitizer`] for details.

#[cfg(not(feature = "tracked"))]
mod plain;
#[cfg(not(feature = "tracked"))]
pub use plain::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "tracked")]
mod tracked;
#[cfg(feature = "tracked")]
pub use tracked::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "tracked")]
pub mod sanitizer;
