//! Minimal `parking_lot` replacement backed by `std::sync`.
//!
//! Matches parking_lot's non-poisoning API shape: `lock()`, `read()`,
//! and `write()` return guards directly. A poisoned std lock (panic
//! while held) just yields the inner data, mirroring parking_lot's
//! behavior of not propagating poison.

use std::sync::PoisonError;

/// Re-exported guard types (std's guards have the same deref API).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}
