//! The `tracked` build: same API as [`crate::plain`], but labeled
//! acquisitions are checked against the committed lock-order DAG by
//! [`crate::sanitizer`]. Guards wrap the std guards and release their
//! held-stack entry on drop.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

use crate::sanitizer::{self, HeldToken};

/// A mutex that does not poison. Labeled instances are sanitized.
#[derive(Default)]
pub struct Mutex<T> {
    label: Option<&'static str>,
    rank: usize,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new (unlabeled, untracked) mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            label: None,
            rank: 0,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a labeled mutex enrolled in the lock-order sanitizer.
    pub const fn labeled(label: &'static str, value: T) -> Self {
        Self::labeled_ranked(label, 0, value)
    }

    /// Creates a labeled mutex with a rank: same-label acquisitions
    /// must ascend strictly by rank (shard locks by index).
    pub const fn labeled_ranked(label: &'static str, rank: usize, value: T) -> Self {
        Mutex {
            label: Some(label),
            rank,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread. Panics if a
    /// labeled acquisition violates the committed DAG.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = sanitizer::acquire(self.label, self.rank);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]; releases the sanitizer entry on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    _token: HeldToken,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that does not poison. Labeled instances are
/// sanitized; read and write acquisitions are tracked identically
/// (the DAG orders *objects*, not access modes).
#[derive(Default)]
pub struct RwLock<T> {
    label: Option<&'static str>,
    rank: usize,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new (unlabeled, untracked) lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            label: None,
            rank: 0,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a labeled lock enrolled in the lock-order sanitizer.
    pub const fn labeled(label: &'static str, value: T) -> Self {
        Self::labeled_ranked(label, 0, value)
    }

    /// Creates a labeled lock with a rank: same-label acquisitions
    /// must ascend strictly by rank (shard locks by index).
    pub const fn labeled_ranked(label: &'static str, rank: usize, value: T) -> Self {
        RwLock {
            label: Some(label),
            rank,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = sanitizer::acquire(self.label, self.rank);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = sanitizer::acquire(self.label, self.rank);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Read guard for [`RwLock`]; releases the sanitizer entry on drop.
pub struct RwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    _token: HeldToken,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Write guard for [`RwLock`]; releases the sanitizer entry on drop.
pub struct RwLockWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    _token: HeldToken,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
