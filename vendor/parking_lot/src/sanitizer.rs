//! Runtime lock-order sanitizer: the dynamic half of `fremont-lint`.
//!
//! The static `lock-order` and `shard-lock-order` passes export the
//! workspace's observed lock acquisition DAG to
//! `crates/lint/lock-order.golden` (edges `A -> B` meaning "label `B`
//! may be acquired while label `A` is held", transitive edges
//! included). This module embeds that same golden at compile time and
//! asserts it on every labeled acquisition, so an ordering the lint
//! pass never saw — reached only through runtime control flow, trait
//! dispatch, or a path the call graph cannot resolve — still fails
//! loudly in the sanitizer CI job.
//!
//! Rules enforced per thread:
//!
//! * distinct labels: acquiring `B` while holding `A` requires the
//!   committed edge `A -> B`;
//! * same label (the shard array): the new acquisition's rank must be
//!   strictly greater than every held rank — shard locks ascend;
//! * unlabeled locks never participate.
//!
//! Violations panic with this thread's full held-label chain and the
//! chain the previous holder of the contested label carried, which is
//! exactly the pair of stacks a real deadlock would interleave.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

/// The committed acquisition DAG, embedded from the lint golden so the
/// static pass and this runtime check can never drift apart.
const GOLDEN: &str = include_str!("../../../crates/lint/lock-order.golden");

/// Parsed golden edges: `(held, acquired)` pairs that are legal.
fn dag() -> &'static BTreeSet<(&'static str, &'static str)> {
    static DAG: OnceLock<BTreeSet<(&'static str, &'static str)>> = OnceLock::new();
    DAG.get_or_init(|| {
        GOLDEN
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| l.split_once("->"))
            .map(|(a, b)| (a.trim(), b.trim()))
            .collect()
    })
}

/// One labeled lock currently held by this thread.
struct Held {
    id: u64,
    label: &'static str,
    rank: usize,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Last holder of each label: the label chain (and thread name) that
/// was in effect when the label was most recently acquired, anywhere.
/// This is the "other stack" in violation reports.
fn holders() -> &'static StdMutex<HashMap<&'static str, String>> {
    static HOLDERS: OnceLock<StdMutex<HashMap<&'static str, String>>> = OnceLock::new();
    HOLDERS.get_or_init(|| StdMutex::new(HashMap::new()))
}

fn chain_of(held: &[Held], tail: &'static str, tail_rank: usize) -> String {
    let mut parts: Vec<String> = held
        .iter()
        .map(|h| format!("{}#{}", h.label, h.rank))
        .collect();
    parts.push(format!("{tail}#{tail_rank}"));
    parts.join(" -> ")
}

/// Token returned by [`acquire`]; dropping it releases the held-stack
/// entry. Removal is by id, so guards may drop in any order.
pub struct HeldToken(Option<u64>);

impl Drop for HeldToken {
    fn drop(&mut self) {
        if let Some(id) = self.0 {
            // try_with: thread-locals may already be gone during
            // thread teardown; losing the entry then is harmless.
            let _ = HELD.try_with(|cell| {
                let mut held = cell.borrow_mut();
                if let Some(pos) = held.iter().rposition(|h| h.id == id) {
                    held.remove(pos);
                }
            });
        }
    }
}

/// Checks and records one acquisition. Called by the tracked lock
/// wrappers before blocking on the underlying std primitive; panics if
/// the acquisition violates the committed DAG.
pub(crate) fn acquire(label: Option<&'static str>, rank: usize) -> HeldToken {
    let Some(label) = label else {
        return HeldToken(None);
    };
    HELD.with(|cell| {
        let held = cell.borrow();
        for h in held.iter() {
            let legal = if h.label == label {
                rank > h.rank
            } else {
                dag().contains(&(h.label, label))
            };
            if !legal {
                let (held_label, held_rank) = (h.label, h.rank);
                let ours = chain_of(&held, label, rank);
                drop(held);
                let theirs = holders()
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get(label)
                    .cloned()
                    .unwrap_or_else(|| "<never acquired>".to_owned());
                panic!(
                    "fremont lock sanitizer: acquiring `{label}` (rank {rank}) while \
                     holding `{held_label}` (rank {held_rank}) is not in the committed \
                     acquisition DAG (crates/lint/lock-order.golden)\n  \
                     this thread:           {ours}\n  \
                     last holder of `{label}`: {theirs}"
                );
            }
        }
    });
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    HELD.with(|cell| {
        let mut held = cell.borrow_mut();
        held.push(Held { id, label, rank });
        let chain = format!(
            "{} [{}]",
            std::thread::current().name().unwrap_or("<unnamed>"),
            chain_of(&held[..held.len() - 1], label, rank)
        );
        holders()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(label, chain);
    });
    HeldToken(Some(id))
}

/// Labels currently held by this thread, outermost first. Exposed for
/// tests and diagnostics.
pub fn held_labels() -> Vec<&'static str> {
    HELD.with(|cell| cell.borrow().iter().map(|h| h.label).collect())
}

/// The number of edges in the embedded DAG. Zero means the golden is
/// missing or empty — the lint pass errors on that before this build
/// would even be worth running.
pub fn dag_edges() -> usize {
    dag().len()
}
