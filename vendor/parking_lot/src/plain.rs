//! The default, untracked build: thin newtypes over `std::sync`.
//!
//! Labels passed to `labeled`/`labeled_ranked` are discarded at
//! construction so the lock is byte-for-byte the std primitive.

use std::sync::PoisonError;

/// Re-exported guard types (std's guards have the same deref API).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Creates a labeled mutex. The label is erased in this build; with
    /// the `tracked` feature it enrolls the lock in the sanitizer.
    pub const fn labeled(_label: &'static str, value: T) -> Self {
        Self::new(value)
    }

    /// Creates a labeled, ranked mutex (see [`Mutex::labeled`]).
    pub const fn labeled_ranked(_label: &'static str, _rank: usize, value: T) -> Self {
        Self::new(value)
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Creates a labeled lock. The label is erased in this build; with
    /// the `tracked` feature it enrolls the lock in the sanitizer.
    pub const fn labeled(_label: &'static str, value: T) -> Self {
        Self::new(value)
    }

    /// Creates a labeled, ranked lock (see [`RwLock::labeled`]).
    pub const fn labeled_ranked(_label: &'static str, _rank: usize, value: T) -> Self {
        Self::new(value)
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}
