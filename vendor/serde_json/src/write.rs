//! JSON text output: compact and pretty (2-space indent).

use serde::value::Value;

/// Renders a value; `indent: Some(level)` selects pretty output.
pub fn write(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    emit(value, indent, &mut out);
    out
}

fn emit(value: &Value, indent: Option<usize>, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                let s = v.to_string();
                out.push_str(&s);
                // Keep floats recognizable as floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(level + 1, out);
                    emit(item, Some(level + 1), out);
                } else {
                    emit(item, None, out);
                }
            }
            if let Some(level) = indent {
                newline_indent(level, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(level + 1, out);
                    emit_string(key, out);
                    out.push_str(": ");
                    emit(val, Some(level + 1), out);
                } else {
                    emit_string(key, out);
                    out.push(':');
                    emit(val, None, out);
                }
            }
            if let Some(level) = indent {
                newline_indent(level, out);
            }
            out.push('}');
        }
    }
}

fn newline_indent(level: usize, out: &mut String) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
