//! A minimal, self-contained `serde_json` replacement for offline
//! builds, implementing the subset of the API this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`to_vec_pretty`],
//! [`from_str`], [`from_slice`], [`to_value`], [`from_value`], the
//! [`json!`] macro, and the [`Value`] type.

use std::fmt;

use serde::de::DeserializeOwned;
use serde::Serialize;

mod read;
mod write;

pub use serde::value::Value;

/// Error raised by JSON serialization or parsing.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    serde::__private::to_value(value).map_err(|e| Error(e.to_string()))
}

/// Converts a [`Value`] tree into any deserializable type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    serde::__private::from_value(value).map_err(|e| Error(e.to_string()))
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write(&to_value(value)?, None))
}

/// Serializes to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write(&to_value(value)?, Some(0)))
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    from_value(read::parse(s)?)
}

/// Parses a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] object literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$item).expect("json! value"),)* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val).expect("json! value")), )*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let t = (1u8, "x".to_string());
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<(u8, String)>(&s).unwrap(), t);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        // Surrogate pair.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("42 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,2,").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": 1u32, "b": [true, false], "c": "x"});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats() {
        let s = to_string(&1.5f64).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<f64>("-2.5e2").unwrap(), -250.0);
    }
}
