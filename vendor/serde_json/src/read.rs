//! Recursive-descent JSON parser.

use serde::value::Value;

use crate::Error;

/// Nesting limit: protects the stack from adversarial input arriving
/// over the Journal wire protocol.
const MAX_DEPTH: usize = 256;

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected {lit})")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000
                                + ((u32::from(hi) - 0xD800) << 10)
                                + (u32::from(lo) - 0xDC00);
                            char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(u32::from(hi))
                                .ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: the input is validated UTF-8, so
                    // re-decode the sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | u16::from(d);
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::Int(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}
