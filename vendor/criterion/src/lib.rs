//! Minimal `criterion` replacement for offline builds.
//!
//! Keeps the macro/API surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `black_box`, `BenchmarkId`, `Throughput`) but
//! replaces the statistics engine with a simple timed loop: a short
//! warm-up, then repeated batches, reporting the best mean ns/iter
//! minus a once-per-process calibration of the loop's own timer
//! overhead (see [`harness_overhead_ns`]).
//! Good enough to compare order-of-magnitude costs and to keep bench
//! targets compiling and runnable without network dependencies.
//!
//! Like real criterion, `--test` (as passed by `cargo bench -- --test`)
//! switches to smoke mode: every benchmark body runs exactly one short
//! batch, unmeasured — CI uses this to prove the benches still run
//! without paying for measurement.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Opaque value barrier (prevents the optimizer from deleting work).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration cost of the measurement loop itself — the deadline
/// `Instant::now()` read plus loop bookkeeping — measured once per
/// process by running the timed loop over an empty routine and keeping
/// the best of a few short batches. Every reported mean subtracts this
/// baseline (clamped at zero), so nanosecond-scale benchmarks report
/// the routine's cost rather than the clock read's.
fn harness_overhead_ns() -> f64 {
    static OVERHEAD: OnceLock<f64> = OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let deadline = Instant::now() + Duration::from_micros(500);
            let mut iters = 0u64;
            let start = Instant::now();
            loop {
                black_box(());
                iters += 1;
                if Instant::now() >= deadline {
                    break;
                }
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        best
    })
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level driver, one per bench binary.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(200),
            throughput: None,
            test_mode,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.id.clone());
        g.bench_function("", f);
        g.finish();
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches (real criterion: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget across batches.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, &mut |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            best_ns_per_iter: f64::INFINITY,
            batch_time: Duration::ZERO,
        };
        if self.test_mode {
            // Smoke mode: one minimal batch, no measurement.
            bencher.batch_time = Duration::from_micros(1);
            f(&mut bencher);
            let label = if id.is_empty() {
                self.name.clone()
            } else {
                format!("{}/{}", self.name, id)
            };
            println!("test {label:<48} ... ok");
            return;
        }
        // One warm-up batch, then `sample_size` timed batches bounded by
        // the measurement budget; keep the best (least-noisy) mean.
        bencher.batch_time = Duration::from_millis(1);
        f(&mut bencher);
        bencher.best_ns_per_iter = f64::INFINITY;
        bencher.batch_time = self
            .measurement_time
            .div_f64(self.sample_size as f64)
            .max(Duration::from_micros(200));
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        let ns = bencher.best_ns_per_iter;
        print!("bench {label:<48} {:>14}/iter", format_ns(ns));
        if let Some(t) = self.throughput {
            let per_sec = |units: u64| units as f64 * 1e9 / ns;
            match t {
                Throughput::Bytes(n) => print!("  {:>10}/s", format_bytes(per_sec(n))),
                Throughput::Elements(n) => print!("  {:>12.0} elem/s", per_sec(n)),
            }
        }
        println!();
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_bytes(bps: f64) -> String {
    if bps < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bps / 1024.0)
    } else if bps < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bps / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bps / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Runs closures under timing; handed to each benchmark body.
pub struct Bencher {
    best_ns_per_iter: f64,
    batch_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly for this batch's budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + self.batch_time;
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        let elapsed = start.elapsed();
        let raw = elapsed.as_nanos() as f64 / iters as f64;
        let ns = (raw - harness_overhead_ns()).max(0.0);
        if ns < self.best_ns_per_iter {
            self.best_ns_per_iter = ns;
        }
    }
}

/// Declares a bench group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
