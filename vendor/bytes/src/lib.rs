//! Minimal `bytes::Bytes` replacement: an immutable, cheaply-cloneable
//! byte buffer backed by `Arc<[u8]>`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Wraps a static slice (copies here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Returns a new buffer holding `range` of this one.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.0.len(),
        };
        Bytes(Arc::from(&self.0[start..end]))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}
