//! The self-describing value tree that serves as this shim's data model.

use std::fmt;

/// A dynamically-typed serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (stored when the value does not fit unsigned).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// The error type used by the built-in value serializer/deserializer.
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl crate::ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl crate::de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}
