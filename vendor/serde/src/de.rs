//! Deserialization traits, mirroring `serde::de`.

use std::fmt::Display;

use crate::value::Value;

/// Error trait for deserializers (mirrors `serde::de::Error`).
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A deserializer: yields a self-describing [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produces the full value tree for the input.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A deserializable type.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable from any lifetime (owned output).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

fn type_err<E: Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! de_uint {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_value()? {
                    Value::UInt(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("integer {v} out of range"))),
                    Value::Int(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("integer {v} out of range"))),
                    other => Err(type_err("unsigned integer", &other)),
                }
            }
        }
    )*};
}

macro_rules! de_int {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_value()? {
                    Value::UInt(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("integer {v} out of range"))),
                    Value::Int(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("integer {v} out of range"))),
                    other => Err(type_err("integer", &other)),
                }
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Float(v) => Ok(v),
            Value::UInt(v) => Ok(v as f64),
            Value::Int(v) => Ok(v as f64),
            other => Err(type_err("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(type_err("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(type_err("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected a single-character string")),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            other => crate::__private::from_value(other)
                .map(Some)
                .map_err(D::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| crate::__private::from_value(v).map_err(D::Error::custom))
                .collect(),
            other => Err(type_err("array", &other)),
        }
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(d)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($name:ident),+)),+ $(,)?) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                match d.deserialize_value()? {
                    Value::Array(items) => {
                        if items.len() != $len {
                            return Err(De::Error::custom(format!(
                                "expected tuple of length {}, found {}", $len, items.len())));
                        }
                        let mut it = items.into_iter();
                        Ok(($(
                            {
                                let v = it.next().expect("length checked");
                                crate::__private::from_value::<$name>(v)
                                    .map_err(De::Error::custom)?
                            },
                        )+))
                    }
                    other => Err(type_err("array (tuple)", &other)),
                }
            }
        }
    )+};
}

de_tuple!(
    (1, A),
    (2, A, B),
    (3, A, B, C),
    (4, A, B, C, D),
    (5, A, B, C, D, E),
    (6, A, B, C, D, E, F),
);

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    K::Err: Display,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Object(entries) => {
                let mut out = std::collections::BTreeMap::new();
                for (k, v) in entries {
                    let key = k
                        .parse()
                        .map_err(|e| D::Error::custom(format!("bad key: {e}")))?;
                    let val = crate::__private::from_value(v).map_err(D::Error::custom)?;
                    out.insert(key, val);
                }
                Ok(out)
            }
            other => Err(type_err("object", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for std::net::Ipv4Addr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse()
            .map_err(|e| D::Error::custom(format!("invalid IPv4 address {s:?}: {e}")))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}
