//! Serialization traits, mirroring `serde::ser`.

use std::fmt::Display;

use crate::value::Value;

/// Error trait for serializers (mirrors `serde::ser::Error`).
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A serializer: consumes a [`Value`] tree.
///
/// The shim collapses serde's many `serialize_*` entry points into one
/// value-tree sink plus the `collect_str` convenience the workspace's
/// hand-written impls use.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a value via its `Display` representation.
    fn collect_str<T: Display + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_string()))
    }
}

/// A serializable type.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::UInt(*self as u64))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let value = if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) };
                serializer.serialize_value(value)
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

fn collect_seq<'a, S, T, I>(serializer: S, items: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut out = Vec::new();
    for item in items {
        out.push(crate::__private::to_value(item).map_err(S::Error::custom)?);
    }
    serializer.serialize_value(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let out = vec![
                    $(crate::__private::to_value(&self.$idx).map_err(S::Error::custom)?,)+
                ];
                serializer.serialize_value(Value::Array(out))
            }
        }
    )+};
}

ser_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::new();
        for (k, v) in self {
            out.push((
                k.to_string(),
                crate::__private::to_value(v).map_err(S::Error::custom)?,
            ));
        }
        serializer.serialize_value(Value::Object(out))
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}
