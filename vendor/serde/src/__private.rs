//! Support machinery for the derive macro. Not public API.

use crate::de::Deserialize;
use crate::ser::Serialize;
use crate::value::{Value, ValueError};

/// Serializer whose output is the value tree itself.
pub struct ValueSerializer;

impl crate::ser::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer reading from an in-memory value tree.
pub struct ValueDeserializer(pub Value);

impl<'de> crate::de::Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serializes any `Serialize` into a value tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserializes any `DeserializeOwned` from a value tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

/// Removes a field from an object's entries; `Null` when absent (so
/// `Option` fields tolerate missing keys, as serde_json does).
pub fn take_field(entries: &mut Vec<(String, Value)>, name: &str) -> Value {
    match entries.iter().position(|(k, _)| k == name) {
        Some(i) => entries.remove(i).1,
        None => Value::Null,
    }
}

/// Unwraps an array value.
pub fn expect_array(value: Value, what: &str) -> Result<Vec<Value>, ValueError> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(ValueError(format!(
            "{what}: expected array, found {}",
            other.kind()
        ))),
    }
}

/// Unwraps an object value.
pub fn expect_object(value: Value, what: &str) -> Result<Vec<(String, Value)>, ValueError> {
    match value {
        Value::Object(entries) => Ok(entries),
        other => Err(ValueError(format!(
            "{what}: expected object, found {}",
            other.kind()
        ))),
    }
}
