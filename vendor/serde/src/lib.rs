//! A minimal, self-contained reimplementation of the serde API surface
//! used by this workspace.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the handful of external crates it needs. This crate
//! keeps serde's public trait names and signatures (`Serialize`,
//! `Deserialize`, `Serializer`, `Deserializer`, `ser::Error`,
//! `de::Error`) so application code is source-compatible, but the data
//! model is a simple self-describing [`value::Value`] tree rather than
//! serde's full visitor architecture. `serde_json` (also vendored)
//! drives these traits to and from JSON text.

pub mod de;
pub mod ser;
pub mod value;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
