//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Size bound for collection strategies (mirrors `SizeRange`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy producing `Vec`s of `elem` with a length in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s with a cardinality in `size`.
///
/// Duplicate draws are retried; if the element domain is too small to
/// reach the requested size, the set is returned short (best effort,
/// like the real crate's behavior under exhaustion).
pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 10 + 100 {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }
}
