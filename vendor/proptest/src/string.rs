//! `string_regex`: strategy generating strings from a small regex subset.
//!
//! Supported: literal characters, character classes like `[a-z0-9-]`
//! (ranges, literals, trailing `-`), `.` (printable ASCII), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded ones capped at
//! 8 repeats). Anything else is a parse error, like the real crate.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Regex-parse failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "string_regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// One regex atom with repeat bounds.
struct Piece {
    /// Candidate characters (uniform choice).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Strategy generating strings matching the parsed pattern.
pub struct RegexStrategy {
    pieces: Vec<Piece>,
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.gen_range(piece.min..=piece.max);
            for _ in 0..n {
                let i = rng.gen_range(0..piece.chars.len());
                out.push(piece.chars[i]);
            }
        }
        out
    }
}

/// Parses `pattern` and returns a string strategy for it.
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1)?;
                i = next;
                set
            }
            '.' => {
                i += 1;
                (0x20u8..0x7f).map(|b| b as char).collect()
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .ok_or_else(|| Error("dangling escape".into()))?;
                i += 2;
                vec![c]
            }
            c @ ('(' | ')' | '|' | '^' | '$') => {
                return Err(Error(format!("unsupported construct '{c}'")));
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        if alphabet.is_empty() {
            return Err(Error("empty character class".into()));
        }
        let (min, max, next) = parse_quantifier(&chars, i)?;
        i = next;
        pieces.push(Piece {
            chars: alphabet,
            min,
            max,
        });
    }
    Ok(RegexStrategy { pieces })
}

/// Parses a `[...]` body starting just after `[`; returns (set, index past `]`).
fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), Error> {
    let mut set = Vec::new();
    if chars.get(i) == Some(&'^') {
        return Err(Error("negated classes unsupported".into()));
    }
    while i < chars.len() && chars[i] != ']' {
        let lo = chars[i];
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            if lo > hi {
                return Err(Error(format!("inverted range {lo}-{hi}")));
            }
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(lo);
            i += 1;
        }
    }
    if i >= chars.len() {
        return Err(Error("unterminated character class".into()));
    }
    Ok((set, i + 1))
}

/// Parses an optional quantifier at `i`; returns (min, max, next index).
fn parse_quantifier(chars: &[char], i: usize) -> Result<(usize, usize, usize), Error> {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or_else(|| Error("unterminated quantifier".into()))?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| Error(format!("bad repeat count '{s}'")))
            };
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                None => {
                    let n = parse(&body)?;
                    (n, n)
                }
            };
            if min > max {
                return Err(Error(format!("inverted repeat {{{body}}}")));
            }
            Ok((min, max, close + 1))
        }
        Some('?') => Ok((0, 1, i + 1)),
        Some('*') => Ok((0, 8, i + 1)),
        Some('+') => Ok((1, 8, i + 1)),
        _ => Ok((1, 1, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn label_pattern_generates_matches() {
        let strat = string_regex("[a-z0-9-]{1,12}").expect("valid regex");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..=12).contains(&s.len()), "bad len {}", s.len());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(string_regex("(a|b)").is_err());
        assert!(string_regex("[z-a]").is_err());
        assert!(string_regex("[abc").is_err());
    }
}
