//! Test configuration, case errors, and the per-test driver loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Mirrors `proptest::test_runner::Config` for the parts we use.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; a slightly smaller default keeps the
        // dependency-free runner quick without losing much coverage.
        ProptestConfig { cases: 128 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Property violated: fail the whole test.
    Fail(String),
    /// Input rejected by `prop_assume!`: retry with a fresh input.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Stable per-test seed so failures reproduce across runs (FNV-1a).
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives one property: samples inputs until `config.cases` pass.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    while passed < config.cases {
        let input = strategy.generate(&mut rng);
        match test(input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed after {passed} passing case(s):\n{msg}");
            }
        }
    }
}
