//! `option::of`: strategy over `Option<T>`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Yields `None` about a quarter of the time, otherwise `Some(inner)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
