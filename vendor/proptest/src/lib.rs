//! Minimal `proptest` replacement for offline builds.
//!
//! Implements the subset this workspace uses: `proptest!` test blocks,
//! `prop_assert*` / `prop_assume!` / `prop_oneof!`, `any::<T>()`,
//! range and tuple strategies, `prop_map`, `collection::{vec,
//! btree_set}`, `option::of`, and a tiny `string_regex`.
//!
//! Differences from the real crate: generation is a flat deterministic
//! sampler (seeded per test name), there is **no shrinking**, and
//! failures report the formatted assertion message only. That is
//! enough to make the property suites meaningful regression tests
//! while staying dependency-free.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError};

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// expands to a normal test fn that samples `config.cases` inputs.
/// Attributes (e.g. `#[test]`) are passed through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(
                &config,
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns!(@cfg($cfg) $($rest)*);
    };
}

/// Fails the current test case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Rejects the current case (retried with a fresh input, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
