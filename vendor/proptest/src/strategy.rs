//! Core strategy trait and combinators.
//!
//! A strategy is just a deterministic sampler: `generate` draws one
//! value from the shim's seeded RNG. No value trees, no shrinking.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// Produces values for property tests.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7)
}
