//! `any::<T>()` and the `Arbitrary` trait.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T` (full value domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        rng.gen_range(0x20u32..0x7f) as u8 as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::arbitrary(rng);
        }
        out
    }
}
