//! Token-level parser for derive input: just enough of Rust's item
//! grammar to recognize the structs and enums this workspace defines.

use proc_macro::{Delimiter, TokenStream, TokenTree};

use crate::{is_group, is_punct};

/// One named field.
pub struct Field {
    pub name: String,
    pub skip: bool,
}

/// A struct's or variant's field list.
pub enum Fields {
    Unit,
    /// Tuple fields (count).
    Tuple(usize),
    Named(Vec<Field>),
}

/// One enum variant.
pub struct Variant {
    pub name: String,
    pub fields: Fields,
}

pub enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

/// Parsed derive input.
pub struct Input {
    pub name: String,
    /// Type parameter names, in order (lifetimes/consts unsupported).
    pub generics: Vec<String>,
    pub data: Data,
}

impl Input {
    pub fn parse(stream: TokenStream) -> Result<Input, String> {
        let toks: Vec<TokenTree> = stream.into_iter().collect();
        let mut i = 0;

        // Outer attributes and visibility.
        loop {
            if i < toks.len() && is_punct(&toks[i], '#') {
                i += 2; // '#' + [...] group
            } else if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub")
            {
                i += 1;
                if i < toks.len() && is_group(&toks[i], Delimiter::Parenthesis) {
                    i += 1; // pub(crate) etc.
                }
            } else {
                break;
            }
        }

        let kind = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected struct/enum, found {other:?}")),
        };
        i += 1;
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected type name, found {other:?}")),
        };
        i += 1;

        // Generics.
        let mut generics = Vec::new();
        if i < toks.len() && is_punct(&toks[i], '<') {
            i += 1;
            let mut depth = 1usize;
            let mut at_param_start = true;
            let mut in_bound = false;
            while i < toks.len() && depth > 0 {
                match &toks[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        at_param_start = true;
                        in_bound = false;
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                        in_bound = true;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' => {
                        return Err("lifetime parameters are not supported".to_owned());
                    }
                    TokenTree::Ident(id) if at_param_start && !in_bound => {
                        let s = id.to_string();
                        if s == "const" {
                            return Err("const generics are not supported".to_owned());
                        }
                        generics.push(s);
                        at_param_start = false;
                    }
                    _ => {}
                }
                i += 1;
            }
        }

        // where clauses are not used by this workspace.
        if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
            return Err("where clauses are not supported".to_owned());
        }

        let data = match kind.as_str() {
            "struct" => match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Data::Struct(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
                other => return Err(format!("unexpected struct body: {other:?}")),
            },
            "enum" => match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Data::Enum(parse_variants(g.stream())?)
                }
                other => return Err(format!("unexpected enum body: {other:?}")),
            },
            other => return Err(format!("cannot derive for a {other}")),
        };

        Ok(Input {
            name,
            generics,
            data,
        })
    }
}

/// Scans a field's attributes for `#[serde(skip)]`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Attributes.
        let mut skip = false;
        while i < toks.len() && is_punct(&toks[i], '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                skip |= attr_is_serde_skip(g);
            }
            i += 2;
        }
        // Visibility.
        if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if i < toks.len() && is_group(&toks[i], Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        if !matches!(&toks.get(i), Some(t) if is_punct(t, ':')) {
            return Err(format!("expected ':' after field {name}"));
        }
        i += 1;
        // Type: consume until a top-level comma (angle-bracket aware; all
        // other bracketing arrives as atomic groups).
        let mut angle = 0isize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(Fields::Named(fields))
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle = 0isize;
    let mut saw_tokens = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // variant attributes (doc comments)
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                match parse_named_fields(g.stream())? {
                    Fields::Named(f) => Fields::Named(f),
                    _ => unreachable!("parse_named_fields returns Named"),
                }
            }
            _ => Fields::Unit,
        };
        if matches!(&toks.get(i), Some(t) if is_punct(t, '=')) {
            return Err(format!("discriminants are not supported (variant {name})"));
        }
        if matches!(&toks.get(i), Some(t) if is_punct(t, ',')) {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}
