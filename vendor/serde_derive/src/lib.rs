//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`
//! available offline). Supports the shapes this workspace uses:
//!
//! * structs with named fields (including `#[serde(skip)]` fields and
//!   simple generic parameters);
//! * tuple structs (newtype and n-ary);
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching serde's default representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Fields, Input, Variant};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match Input::parse(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match Input::parse(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

fn ser_generics(input: &Input) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::Serialize"))
            .collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("<{}>", input.generics.join(", ")),
        )
    }
}

fn de_generics(input: &Input) -> (String, String) {
    if input.generics.is_empty() {
        ("<'de>".to_owned(), String::new())
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::de::DeserializeOwned"))
            .collect();
        (
            format!("<'de, {}>", bounded.join(", ")),
            format!("<{}>", input.generics.join(", ")),
        )
    }
}

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_g, ty_g) = ser_generics(input);
    let body = match &input.data {
        parse::Data::Struct(fields) => ser_struct_body(name, fields, "self"),
        parse::Data::Enum(variants) => ser_enum_body(name, variants),
    };
    format!(
        "impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 let __value = {body};\n\
                 __serializer.serialize_value(__value)\n\
             }}\n\
         }}"
    )
}

/// Expression producing a `Value` for a struct's fields accessed through
/// `recv` (`self` for derive on structs).
fn ser_struct_body(name: &str, fields: &Fields, recv: &str) -> String {
    match fields {
        Fields::Unit => "::serde::value::Value::Null".to_owned(),
        Fields::Tuple(n) if *n == 1 => field_to_value(name, &format!("&{recv}.0")),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| field_to_value(name, &format!("&{recv}.{i}")))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => {
            let mut parts = Vec::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                let fname = &f.name;
                parts.push(format!(
                    "({fname:?}.to_string(), {})",
                    field_to_value(name, &format!("&{recv}.{fname}"))
                ));
            }
            format!("::serde::value::Value::Object(vec![{}])", parts.join(", "))
        }
    }
}

fn field_to_value(ty_name: &str, expr: &str) -> String {
    format!(
        "::serde::__private::to_value({expr})\
         .map_err(|e| <__S::Error as ::serde::ser::Error>::custom(\
             format!(\"{ty_name}: {{e}}\")))?"
    )
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.fields {
            Fields::Unit => {
                format!("{name}::{vname} => ::serde::value::Value::Str({vname:?}.to_string())")
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    field_to_value(name, "__f0")
                } else {
                    let items: Vec<String> =
                        binds.iter().map(|b| field_to_value(name, b)).collect();
                    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{vname}({}) => ::serde::value::Value::Object(vec![({vname:?}.to_string(), {inner})])",
                    binds.join(", ")
                )
            }
            Fields::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "({:?}.to_string(), {})",
                            f.name,
                            field_to_value(name, &f.name)
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::value::Value::Object(vec![\
                         ({vname:?}.to_string(), ::serde::value::Value::Object(vec![{}]))])",
                    binds.join(", "),
                    items.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join(",\n"))
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_g, ty_g) = de_generics(input);
    let body = match &input.data {
        parse::Data::Struct(fields) => de_struct_body(name, fields),
        parse::Data::Enum(variants) => de_enum_body(name, variants),
    };
    format!(
        "impl{impl_g} ::serde::Deserialize<'de> for {name}{ty_g} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 let __value = ::serde::Deserializer::deserialize_value(__deserializer)?;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn de_err(expr: &str) -> String {
    format!("<__D::Error as ::serde::de::Error>::custom({expr})")
}

fn field_from_value(ty_name: &str, field: &str, expr: &str) -> String {
    let err = de_err(&format!("format!(\"{ty_name}.{field}: {{e}}\")"));
    format!("::serde::__private::from_value({expr}).map_err(|e| {err})?")
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("let _ = __value; Ok({name})"),
        Fields::Tuple(n) if *n == 1 => {
            let inner = field_from_value(name, "0", "__value");
            format!("Ok({name}({inner}))")
        }
        Fields::Tuple(n) => {
            let arr_err = de_err(&format!("format!(\"{name}: {{e}}\")"));
            let len_err = de_err(&format!(
                "format!(\"{name}: expected {n} elements, found {{}}\", __items.len())"
            ));
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    field_from_value(
                        name,
                        &i.to_string(),
                        "__items.next().expect(\"len checked\")",
                    )
                })
                .collect();
            format!(
                "let __items = ::serde::__private::expect_array(__value, {name:?})\
                     .map_err(|e| {arr_err})?;\n\
                 if __items.len() != {n} {{ return Err({len_err}); }}\n\
                 let mut __items = __items.into_iter();\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let obj_err = de_err(&format!("format!(\"{name}: {{e}}\")"));
            let mut lets = Vec::new();
            let mut inits = Vec::new();
            for f in fields {
                let fname = &f.name;
                if f.skip {
                    inits.push(format!("{fname}: ::core::default::Default::default()"));
                    continue;
                }
                let take = format!("::serde::__private::take_field(&mut __obj, {fname:?})");
                lets.push(format!(
                    "let {fname} = {};",
                    field_from_value(name, fname, &take)
                ));
                inits.push(fname.clone());
            }
            format!(
                "let mut __obj = ::serde::__private::expect_object(__value, {name:?})\
                     .map_err(|e| {obj_err})?;\n\
                 {}\n\
                 Ok({name} {{ {} }})",
                lets.join("\n"),
                inits.join(", ")
            )
        }
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut keyed_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push(format!("{vname:?} => Ok({name}::{vname})"));
            }
            Fields::Tuple(n) if *n == 1 => {
                let inner = field_from_value(name, vname, "__inner");
                keyed_arms.push(format!("{vname:?} => Ok({name}::{vname}({inner}))"));
            }
            Fields::Tuple(n) => {
                let arr_err = de_err(&format!("format!(\"{name}::{vname}: {{e}}\")"));
                let len_err = de_err(&format!(
                    "format!(\"{name}::{vname}: expected {n} elements, found {{}}\", __items.len())"
                ));
                let items: Vec<String> = (0..*n)
                    .map(|i| {
                        field_from_value(
                            name,
                            &format!("{vname}.{i}"),
                            "__items.next().expect(\"len checked\")",
                        )
                    })
                    .collect();
                keyed_arms.push(format!(
                    "{vname:?} => {{\n\
                         let __items = ::serde::__private::expect_array(__inner, {vname:?})\
                             .map_err(|e| {arr_err})?;\n\
                         if __items.len() != {n} {{ return Err({len_err}); }}\n\
                         let mut __items = __items.into_iter();\n\
                         Ok({name}::{vname}({}))\n\
                     }}",
                    items.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let obj_err = de_err(&format!("format!(\"{name}::{vname}: {{e}}\")"));
                let mut lets = Vec::new();
                let mut inits = Vec::new();
                for f in fields {
                    let fname = &f.name;
                    if f.skip {
                        inits.push(format!("{fname}: ::core::default::Default::default()"));
                        continue;
                    }
                    let take = format!("::serde::__private::take_field(&mut __obj, {fname:?})");
                    lets.push(format!(
                        "let {fname} = {};",
                        field_from_value(name, &format!("{vname}.{fname}"), &take)
                    ));
                    inits.push(fname.clone());
                }
                keyed_arms.push(format!(
                    "{vname:?} => {{\n\
                         let mut __obj = ::serde::__private::expect_object(__inner, {vname:?})\
                             .map_err(|e| {obj_err})?;\n\
                         {}\n\
                         Ok({name}::{vname} {{ {} }})\n\
                     }}",
                    lets.join("\n"),
                    inits.join(", ")
                ));
            }
        }
    }
    let unknown_unit = de_err(&format!(
        "format!(\"unknown {name} variant {{__other:?}}\")"
    ));
    let unknown_keyed = de_err(&format!(
        "format!(\"unknown {name} variant {{__other:?}}\")"
    ));
    let bad_shape = de_err(&format!(
        "format!(\"{name}: expected variant string or single-key object, found {{}}\", __value.kind())"
    ));
    unit_arms.push(format!("__other => Err({unknown_unit})"));
    keyed_arms.push(format!("__other => Err({unknown_keyed})"));
    format!(
        "match __value {{\n\
             ::serde::value::Value::Str(__s) => match __s.as_str() {{ {} }},\n\
             ::serde::value::Value::Object(mut __obj) if __obj.len() == 1 => {{\n\
                 let (__key, __inner) = __obj.remove(0);\n\
                 match __key.as_str() {{ {} }}\n\
             }}\n\
             __value => Err({bad_shape}),\n\
         }}",
        unit_arms.join(",\n"),
        keyed_arms.join(",\n")
    )
}

pub(crate) fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

pub(crate) fn is_group(tt: &TokenTree, delim: Delimiter) -> bool {
    matches!(tt, TokenTree::Group(g) if g.delimiter() == delim)
}
