//! Minimal `rand` replacement: a deterministic xoshiro256++ generator
//! behind the familiar `Rng` / `SeedableRng` / `rngs::StdRng` surface.
//!
//! Only what this workspace uses is implemented: `seed_from_u64`,
//! `gen::<f64>()`, `gen_bool`, and `gen_range` over integer ranges.
//! Distribution quality matches xoshiro256++ (Blackman/Vigna); no
//! attempt is made at bit-compatibility with the real crate.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding entry point, matching `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, matching `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Standard + Default + Copy, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::sample(rng);
        }
        out
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in [0, span) via Lemire-style rejection (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + 1;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&v));
            let w = rng.gen_range(0..30_000_000u64);
            assert!(w < 30_000_000);
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniform draws should land near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }
}
