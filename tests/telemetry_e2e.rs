//! End-to-end determinism contract for the telemetry layer.
//!
//! The whole value of sim-time-keyed observability is replayability:
//! two explorations with the same seed must emit byte-identical traces
//! and metric expositions, the exposition must be valid Prometheus
//! text, and the per-module load report must show the fleet actually
//! ran. (`fremont-bench`'s `telemetry_check` binary runs the same
//! contract against a larger campus in CI.)

use fremont::core::Fremont;
use fremont::netsim::campus::CampusConfig;
use fremont::netsim::time::SimDuration;
use fremont::telemetry::{parse_exposition, Telemetry, TraceEvent};

fn instrumented(cfg: &CampusConfig, hours: u64) -> (String, String, usize) {
    let (telemetry, rec) = Telemetry::recording();
    let mut system = Fremont::over_campus_with_telemetry(cfg, telemetry);
    system.explore(SimDuration::from_hours(hours)).unwrap();
    system.driver.publish_metrics();
    let active = system
        .load_report()
        .rows
        .iter()
        .filter(|r| r.load.active())
        .count();
    (rec.trace_jsonl(), rec.expose(), active)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let mut cfg = CampusConfig::small();
    cfg.cs_traffic = true;
    let (trace_a, expo_a, active_a) = instrumented(&cfg, 3);
    let (trace_b, expo_b, active_b) = instrumented(&cfg, 3);

    assert!(!trace_a.is_empty(), "instrumented run must emit a trace");
    assert_eq!(trace_a, trace_b, "same-seed traces must be byte-identical");
    assert_eq!(
        expo_a, expo_b,
        "same-seed expositions must be byte-identical"
    );
    assert_eq!(active_a, active_b);
    assert!(
        active_a >= 6,
        "most of the module fleet must show activity, got {active_a}/8"
    );

    let samples = parse_exposition(&expo_a).expect("exposition must be valid Prometheus text");
    assert!(
        samples > 20,
        "expected a substantial exposition, got {samples} samples"
    );
    for required in [
        "fremont_sim_events_processed_total",
        "fremont_module_packets_sent_total",
        "fremont_journal_observations_applied",
        "fremont_sim_queue_depth_hwm",
    ] {
        assert!(expo_a.contains(required), "exposition missing {required}");
    }
}

#[test]
fn trace_is_wellformed_jsonl_keyed_to_sim_time() {
    let mut cfg = CampusConfig::small();
    cfg.cs_traffic = true;
    let (trace, _, _) = instrumented(&cfg, 1);
    let mut spans = 0usize;
    let mut last_at = 0u64;
    for line in trace.lines() {
        let ev: TraceEvent = serde_json::from_str(line).expect("each line parses");
        assert!(ev.at >= last_at, "trace timestamps are monotone sim time");
        last_at = ev.at;
        if ev.kind == "span_start" {
            spans += 1;
        }
    }
    assert!(spans > 0, "driver pumps must open spans");
}
