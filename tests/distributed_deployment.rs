//! Integration: the distributed-architecture claims.
//!
//! "Because all modules communicate via BSD sockets, there are no
//! restrictions about the physical location of individual modules.
//! Moreover, the system can be replicated at multiple sites, exploring
//! different networks, and sharing information among the replicated
//! components."

use std::net::Ipv4Addr;

use fremont::core::correlate::correlate;
use fremont::explorers::{ArpWatch, ArpWatchConfig, SeqPing, SeqPingConfig};
use fremont::journal::client::RemoteJournal;
use fremont::journal::{InterfaceQuery, JournalAccess, JournalServer, SharedJournal, Source};
use fremont::net::{IpRange, MacAddr, SubnetMask};
use fremont::netsim::builder::TopologyBuilder;
use fremont::netsim::node::{Iface, Node, NodeKind};
use fremont::netsim::time::SimDuration;
use fremont::netsim::traffic::{Flow, TrafficModel};

/// Explorer observations travel to the Journal Server over real TCP, and
/// queries from a "presentation program" connection see them.
#[test]
fn modules_report_through_the_tcp_journal_server() {
    let shared = SharedJournal::new();
    let server = JournalServer::start(shared, "127.0.0.1:0", None).expect("bind");
    let module_conn = RemoteJournal::connect(&server.addr().to_string()).expect("connect");
    let viewer_conn = RemoteJournal::connect(&server.addr().to_string()).expect("connect");

    // A small LAN swept by SeqPing.
    let mut b = TopologyBuilder::new();
    let lan = b.segment("lan", "10.50.0.0/24");
    for i in 0..5 {
        b.host(&format!("h{i}"), lan, 10 + i);
    }
    let (mut sim, topo) = b.build(3);
    let range = IpRange::new(
        "10.50.0.10".parse().expect("ip"),
        "10.50.0.14".parse().expect("ip"),
    );
    sim.spawn(
        topo.hosts[0],
        Box::new(SeqPing::new(SeqPingConfig::over(range))),
    );
    sim.run_for(SimDuration::from_mins(3));

    // Forward the module's observations over the socket, stamped with the
    // simulation clock — the Journal Server serializes and records them.
    for (_, at, obs) in sim.drain_observations() {
        module_conn
            .store(at.to_jtime(), std::slice::from_ref(&obs))
            .expect("store over tcp");
    }

    let seen = viewer_conn
        .interfaces(&InterfaceQuery::all())
        .expect("query over tcp");
    assert_eq!(seen.len(), 4, "four live neighbors recorded");
    assert!(seen.iter().all(|r| r.sources.contains(Source::SeqPing)));
    server.shutdown();
}

/// Two ARPwatch vantage points on different subnets, one shared Journal:
/// a DECnet-style box that uses the same MAC on both its interfaces is
/// only recognizable as a gateway once both watchers' records meet in the
/// Journal.
#[test]
fn replicated_watchers_discover_a_gateway_together() {
    let mut b = TopologyBuilder::new();
    let net_a = b.segment("net-a", "10.60.1.0/24");
    let net_b = b.segment("net-b", "10.60.2.0/24");
    b.host("watcher-a", net_a, 10);
    b.host("watcher-b", net_b, 10);
    b.host("talker-a", net_a, 20);
    b.host("talker-b", net_b, 20);
    let (mut sim, topo) = b.build(8);

    // The multi-homed box: one MAC, two interfaces (as DECnet hosts and
    // some bridging gear genuinely did).
    let shared_mac = MacAddr::new([0xaa, 0x00, 0x04, 0x00, 0x12, 0x34]);
    let mask = SubnetMask::from_prefix_len(24).expect("valid");
    let mut gw = Node::new(
        "decbox",
        NodeKind::Router,
        vec![
            Iface {
                mac: shared_mac,
                ip: "10.60.1.1".parse().expect("ip"),
                mask,
                segment: sim.nodes[topo.hosts[0].0].ifaces[0].segment,
            },
            Iface {
                mac: shared_mac,
                ip: "10.60.2.1".parse().expect("ip"),
                mask,
                segment: sim.nodes[topo.hosts[1].0].ifaces[0].segment,
            },
        ],
    );
    gw.routes.add(fremont::netsim::routing::Route {
        dest: "10.60.1.0/24".parse().expect("subnet"),
        gateway: None,
        iface: 0,
        metric: 0,
    });
    gw.routes.add(fremont::netsim::routing::Route {
        dest: "10.60.2.0/24".parse().expect("subnet"),
        gateway: None,
        iface: 1,
        metric: 0,
    });
    sim.add_node(gw);

    // Watchers on both segments; talkers ping the gateway so it ARPs.
    let wa = sim.spawn(
        topo.nodes_by_name["watcher-a"],
        Box::new(ArpWatch::new(ArpWatchConfig::default())),
    );
    let wb = sim.spawn(
        topo.nodes_by_name["watcher-b"],
        Box::new(ArpWatch::new(ArpWatchConfig::default())),
    );
    let _ = (wa, wb);
    sim.set_traffic(TrafficModel::new(
        vec![
            Flow {
                src: topo.nodes_by_name["talker-a"],
                dst: "10.60.1.1".parse().expect("ip"),
                weight: 1.0,
            },
            Flow {
                src: topo.nodes_by_name["talker-b"],
                dst: "10.60.2.1".parse().expect("ip"),
                weight: 1.0,
            },
        ],
        SimDuration::from_secs(10),
        1,
    ));
    sim.run_for(SimDuration::from_mins(5));

    // Both watchers' observations land in ONE shared journal. Each watcher
    // also needs the mask knowledge (normally from the mask module).
    let journal = SharedJournal::new();
    let obs: Vec<_> = sim.drain_observations();
    assert!(
        obs.iter()
            .any(|(h, _, _)| h.node == topo.nodes_by_name["watcher-a"]),
        "watcher A reported"
    );
    assert!(
        obs.iter()
            .any(|(h, _, _)| h.node == topo.nodes_by_name["watcher-b"]),
        "watcher B reported"
    );
    for (_, at, o) in &obs {
        journal
            .store(at.to_jtime(), std::slice::from_ref(o))
            .expect("store");
    }
    for ip in ["10.60.1.1", "10.60.2.1"] {
        journal
            .store(
                fremont::journal::JTime(400),
                &[fremont::journal::Observation::mask(
                    Source::SubnetMasks,
                    ip.parse::<Ipv4Addr>().expect("ip"),
                    mask,
                )],
            )
            .expect("store");
    }

    // Before correlation: no gateway. After: the shared MAC gives it away.
    assert!(journal.gateways().expect("query").is_empty());
    let derived = journal.read(correlate);
    assert!(
        !derived.is_empty(),
        "same MAC on two subnets must correlate into a gateway"
    );
    journal
        .store(fremont::journal::JTime(500), &derived)
        .expect("store");
    let gws = journal.gateways().expect("query");
    assert_eq!(gws.len(), 1);
    assert_eq!(gws[0].subnets.len(), 2);
    assert_eq!(gws[0].interfaces.len(), 2);
}
