//! End-to-end causal tracing across the process boundary.
//!
//! A Discovery Driver writes through to a durable Journal Server over
//! TCP; each side records its own trace ring. Stitching the two JSONL
//! files must reassemble one rooted causal tree — a driver
//! `client.store_batch` span parenting the server's per-RPC
//! decode/apply/reply children, with WAL append/fsync spans nested
//! under apply — and because every timestamp is the driver's sim
//! clock, two same-seed runs must produce byte-identical stitched
//! traces and folded-stack profiles.

use std::collections::HashMap;
use std::path::Path;

use fremont::core::{DiscoveryDriver, DriverConfig};
use fremont::journal::JournalServer;
use fremont::netsim::builder::TopologyBuilder;
use fremont::netsim::time::SimDuration;
use fremont::obs::{fold_events, parse_jsonl, stitch_jsonl, validate, TraceEvent};
use fremont::storage::{DurableJournal, WalConfig};
use fremont::telemetry::Telemetry;

/// Runs a driver writing through to an in-process durable Journal
/// Server and returns the stitched trace of both processes.
fn traced_run(seed: u64, dir: &Path) -> String {
    let _ = std::fs::remove_dir_all(dir);
    let (driver_tel, driver_rec) = Telemetry::recording();
    let (server_tel, server_rec) = Telemetry::recording();
    let (durable, _report) =
        DurableJournal::open_with_telemetry(WalConfig::new(dir), server_tel.clone()).unwrap();
    let server =
        JournalServer::start_with_telemetry(durable, "127.0.0.1:0", None, server_tel).unwrap();

    let mut b = TopologyBuilder::new();
    let a = b.segment("net-a", "10.5.1.0/26");
    let c = b.segment("net-c", "10.5.2.0/26");
    b.host("probe", a, 10);
    b.host("other", a, 11);
    b.host("far", c, 10);
    b.router("gw", &[(a, 1), (c, 1)]);
    let (sim, topo) = b.build(seed);
    let home = topo.nodes_by_name["probe"];

    let mut cfg = DriverConfig::full("10.5.0.0/16".parse().unwrap(), None);
    cfg.telemetry = driver_tel;
    cfg.remote_journal = Some(server.addr().to_string());
    cfg.trace_id = 7;
    let mut driver = DiscoveryDriver::open(sim, home, cfg).unwrap();
    driver.run_for(SimDuration::from_mins(10)).unwrap();
    drop(driver); // clean EOF, not an aborted RPC
    server.shutdown();

    let _ = std::fs::remove_dir_all(dir);
    stitch_jsonl(&[driver_rec.trace_jsonl(), server_rec.trace_jsonl()]).expect("stitch")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("fremont-stitch-{name}"))
}

/// Index span_start events by id.
fn starts(events: &[TraceEvent]) -> HashMap<u64, &TraceEvent> {
    events
        .iter()
        .filter(|e| e.kind == "span_start")
        .map(|e| (e.id, e))
        .collect()
}

#[test]
fn stitched_deployment_trace_is_one_causal_tree() {
    let stitched = traced_run(1993, &tmp("tree"));
    let events = parse_jsonl(&stitched).expect("stitched trace parses");
    let summary = validate(&events).expect("stitched trace validates");
    assert!(summary.spans > 10, "expected a real run, got {summary:?}");

    let by_id = starts(&events);
    // Exactly one root: the synthetic stitch span.
    let roots: Vec<_> = by_id.values().filter(|e| e.parent == 0).collect();
    assert_eq!(roots.len(), 1, "one rooted tree");
    assert_eq!(roots[0].name, "stitch");

    // No cross-process plumbing survives into the stitched output.
    for e in &events {
        assert_eq!(e.trace_id, 0, "stitched events carry no trace_id: {e:?}");
        assert_eq!(e.remote_parent, 0, "no remote_parent survives: {e:?}");
    }

    // A driver-side client.store_batch span parents the server's RPC
    // span, which parents decode/apply/reply; WAL work nests under
    // apply. Check the first store RPC end to end.
    let rpc = by_id
        .values()
        .find(|e| e.name == "server.rpc")
        .expect("server.rpc span in stitched trace");
    let client = &by_id[&rpc.parent];
    assert_eq!(client.name, "client.store_batch");

    let children: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == "span_start" && e.parent == rpc.id)
        .map(|e| e.name.as_str())
        .collect();
    assert_eq!(children, ["server.decode", "server.apply", "server.reply"]);

    let apply = by_id
        .values()
        .find(|e| e.name == "server.apply" && e.parent == rpc.id)
        .unwrap();
    let wal_children: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == "span_start" && e.parent == apply.id)
        .map(|e| e.name.as_str())
        .collect();
    assert!(
        wal_children.contains(&"wal.append"),
        "WAL append must nest under server.apply, got {wal_children:?}"
    );
}

#[test]
fn same_seed_runs_stitch_and_fold_byte_identically() {
    let stitched_a = traced_run(20717, &tmp("det-a"));
    let stitched_b = traced_run(20717, &tmp("det-b"));
    assert!(!stitched_a.is_empty());
    assert_eq!(
        stitched_a, stitched_b,
        "same-seed stitched traces must be byte-identical"
    );

    let events = parse_jsonl(&stitched_a).unwrap();
    let folded_a = fold_events(&events);
    let folded_b = fold_events(&parse_jsonl(&stitched_b).unwrap());
    assert_eq!(folded_a, folded_b, "folded profiles must be byte-identical");
    // The profile is keyed by logical work, and the write path shows up.
    assert!(folded_a.contains("bytes;stitch;"), "{folded_a}");
    assert!(
        folded_a.contains("client.store_batch;server.rpc;server.apply;wal.append"),
        "profile must show the cross-process write path:\n{folded_a}"
    );
}
