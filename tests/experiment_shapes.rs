//! Regression tests over the experiment harness: the *shapes* of Tables 5
//! and 6 must hold for the default seed — who wins, roughly by what
//! factor, and where the losses come from.
//!
//! These run the full-size campus and take a few seconds each; they are
//! the reproduction's primary guarantee.

use fremont::netsim::campus::CampusConfig;
use fremont_bench::exp_discovery::{table5_runs, table6_runs};

#[test]
fn table5_shape_holds() {
    let cfg = CampusConfig::default();
    let (rows, total) = table5_runs(&cfg);
    let find = |m: &str| {
        rows.iter()
            .find(|r| r.module.starts_with(m))
            .unwrap_or_else(|| panic!("row {m}"))
            .found
    };
    let arp30 = find("ARPwatch (30 min)");
    let arp24 = find("ARPwatch (24 hours)");
    let ehp = find("EtherHostProbe");
    let bp = find("BrdcastPing");
    let sp = find("SeqPing");
    let dns = find("DNS");

    // DNS is the reference total (the paper's 100% row).
    assert_eq!(dns, total, "DNS sees everything registered");

    // 30 minutes of passive watching sees roughly half-to-two-thirds;
    // 24 hours sees almost everything (paper: 61% → 89%).
    let f30 = arp30 as f64 / total as f64;
    let f24 = arp24 as f64 / total as f64;
    assert!((0.40..=0.80).contains(&f30), "ARPwatch@30min {f30}");
    assert!((0.80..=1.00).contains(&f24), "ARPwatch@24h {f24}");
    assert!(arp24 > arp30 + 5, "long watching pays: {arp30} -> {arp24}");

    // Active probes lose hosts that are down (paper: 68-86%).
    for (name, v) in [("EtherHostProbe", ehp), ("SeqPing", sp)] {
        let f = v as f64 / total as f64;
        assert!((0.60..=0.95).contains(&f), "{name} fraction {f}");
    }

    // Broadcast ping loses additional replies to collisions: strictly
    // below the sweeping probes (paper: 75% vs 86%).
    assert!(bp < ehp, "collisions cost broadcast ping: {bp} vs {ehp}");
    let fbp = bp as f64 / total as f64;
    assert!((0.50..=0.85).contains(&fbp), "BrdcastPing fraction {fbp}");

    // Everything loses to the DNS reference, which includes ghosts.
    for v in [arp30, arp24, ehp, bp, sp] {
        assert!(v < dns);
    }
}

#[test]
fn table6_shape_holds() {
    let cfg = CampusConfig::default();
    let (rows, total) = table6_runs(&cfg);
    assert_eq!(total, 111, "campus has the paper's 111 connected subnets");
    let find = |m: &str| {
        rows.iter()
            .find(|r| r.module.starts_with(m))
            .unwrap_or_else(|| panic!("row {m}"))
            .found
    };
    let traceroute = find("Traceroute");
    let ripwatch = find("RIPwatch");
    let dns = find("DNS");
    let dns_gw = rows
        .iter()
        .find(|r| r.module.contains("gateways identified"))
        .expect("gateway row")
        .found;

    // RIPwatch is complete (the paper treats 111 as exact).
    assert_eq!(ripwatch, 111);

    // Traceroute loses subnets to gateway software problems (paper: 77%).
    let ft = traceroute as f64 / total as f64;
    assert!((0.65..=0.90).contains(&ft), "traceroute fraction {ft}");
    assert!(traceroute < ripwatch);

    // DNS covers ~84%.
    let fd = dns as f64 / total as f64;
    assert!((0.75..=0.92).contains(&fd), "dns fraction {fd}");

    // Gateways identified attribute a strict minority of subnets (43%).
    let fg = dns_gw as f64 / total as f64;
    assert!((0.30..=0.60).contains(&fg), "dns gateway fraction {fg}");
    assert!(dns_gw < dns);

    // Overall ordering: RIPwatch > DNS > Traceroute > DNS-gateways.
    assert!(ripwatch > dns && dns > dns_gw);
}
