//! Integration: the Table 8 fault inventory is detected end-to-end on a
//! small campus (the scaled-down version of the `table8_problems`
//! experiment, fast enough for CI).

use fremont::core::Fremont;
use fremont::netsim::campus::CampusConfig;
use fremont::netsim::time::SimDuration;

#[test]
fn all_five_problem_classes_detected() {
    let mut cfg = CampusConfig::small();
    cfg.seed = 77;
    let mut system = Fremont::over_campus(&cfg);
    let faults = system.truth.faults.clone();

    // Healthy start.
    system.explore(SimDuration::from_hours(6)).unwrap();

    // Activate the mid-life faults.
    {
        let sim = &mut system.driver.sim;
        let (_, clone) = faults.duplicate_ip_pair.clone().expect("injected");
        let clone_id = sim.node_by_name(&clone).expect("exists");
        sim.set_node_up(clone_id, true);
        let (old, new) = faults.hardware_change.clone().expect("injected");
        let old_id = sim.node_by_name(&old).expect("exists");
        let new_id = sim.node_by_name(&new).expect("exists");
        sim.set_node_up(old_id, false);
        sim.set_node_up(new_id, true);
    }

    // Keep exploring long enough for re-sweeps.
    system.explore(SimDuration::from_days(3)).unwrap();

    let report = system.problems(2 * 86400, 3600);

    // 1. Duplicate address (bruno + rogue-clone share one IP).
    assert!(
        !report.duplicates.is_empty(),
        "duplicate assignment detected: {report}"
    );
    assert!(report.duplicates.iter().all(|c| c.macs.len() >= 2));

    // 2. Hardware change (piper replaced by piper-new).
    assert!(
        !report.hardware_changes.is_empty(),
        "hardware change detected: {report}"
    );

    // 3. Inconsistent masks (badmask claims /16 on the /24 wire).
    assert_eq!(report.mask_conflicts.len(), 1, "{report}");
    assert_eq!(
        report.mask_conflicts[0].subnet, system.truth.cs_subnet,
        "conflict anchored at the right wire"
    );

    // 4. Promiscuous RIP host (chatty).
    assert!(!report.promiscuous.is_empty(), "promiscuous host flagged");

    // 5. Stale address (ghostly exists only in the DNS).
    let ghost_fqdn = format!(
        "{}.colorado.edu",
        faults.removed_host.clone().expect("injected")
    );
    assert!(
        report
            .stale
            .iter()
            .any(|s| s.name.as_deref() == Some(&ghost_fqdn)),
        "ghost flagged among: {:?}",
        report.stale
    );
    // And the ghost was never seen on the wire.
    let ghost = report
        .stale
        .iter()
        .find(|s| s.name.as_deref() == Some(&ghost_fqdn))
        .expect("present");
    assert!(ghost.last_live.is_none());
}

#[test]
fn healthy_network_reports_almost_nothing() {
    let mut cfg = CampusConfig::small();
    cfg.inject_faults = false;
    cfg.cs_ghost_entries = 0;
    cfg.seed = 99;
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(8)).unwrap();
    let report = system.problems(4 * 86400, 3600);
    assert!(report.duplicates.is_empty(), "{report}");
    assert!(report.mask_conflicts.is_empty(), "{report}");
    assert!(report.promiscuous.is_empty(), "{report}");
    assert!(report.hardware_changes.is_empty(), "{report}");
    // No host that was ever seen alive may be reported as removed (the
    // 4-day horizon has not elapsed). Hosts that only ever appeared in
    // the DNS and have not been probed yet MAY legitimately show up as
    // "never seen alive" — that is information, not a false positive.
    assert!(
        report.stale.iter().all(|s| s.last_live.is_none()),
        "{report}"
    );
}
