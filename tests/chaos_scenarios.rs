//! Chaos suite: every `FaultKind` the simulator can inject must be
//! *rediscovered* by the analysis layer — the injected ground truth comes
//! back out as the corresponding Journal problem finding (Table 8 and §5
//! of the paper). A no-fault control run closes the loop: a quiet campus
//! must stay quiet through the same detectors.
//!
//! Scenarios install a [`FaultPlan`] either through
//! [`CampusConfig::fault_plan`] (fixture-style, scheduled from t=0) or
//! mid-run via [`Sim::install_fault_plan`] once ground truth has been
//! inspected (e.g. which leaf subnet has enough live hosts to report
//! silence for).

use fremont::core::Fremont;
use fremont::journal::{InterfaceQuery, JournalAccess};
use fremont::netsim::campus::CampusConfig;
use fremont::netsim::faults::{FaultKind, FaultPlan};
use fremont::netsim::time::{SimDuration, SimTime};
use fremont::telemetry::trace::{parse_jsonl, validate};
use fremont::telemetry::Telemetry;

#[test]
fn faulted_run_trace_stays_structurally_valid() {
    // Faults kill nodes and gateways mid-exploration — module runs are
    // forcibly retired, stores fail, probes time out. None of that may
    // unbalance the span stream: every span that opens still closes,
    // ids stay strictly increasing, parents outlive children.
    let mut cfg = CampusConfig::quiet_small(7);
    cfg.fault_plan = FaultPlan::new()
        .at(
            SimTime::from_hours(1),
            FaultKind::GatewayDeath {
                gateway: "cs-gw".to_owned(),
            },
        )
        .at(
            SimTime::from_hours(2),
            FaultKind::NodeCrash {
                node: "piper".to_owned(),
            },
        );
    let (telemetry, rec) = Telemetry::recording();
    let mut system = Fremont::over_campus_with_telemetry(&cfg, telemetry);
    system
        .driver
        .set_max_module_runtime(Some(SimDuration::from_hours(1)));
    system.explore(SimDuration::from_hours(4)).unwrap();
    assert!(system.driver.sim.fault_stats.total() >= 2);

    let events = parse_jsonl(&rec.trace_jsonl()).expect("trace parses");
    let summary = validate(&events).expect("faulted run's trace must validate");
    assert!(summary.spans > 0, "driver pumps must open spans");
}

#[test]
fn control_run_with_empty_plan_reports_nothing() {
    let mut cfg = CampusConfig::quiet_small(99);
    cfg.fault_plan = FaultPlan::default(); // explicit: the no-fault control
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(12)).unwrap();
    let report = system.problems(4 * 86400, 3600);
    assert!(report.duplicates.is_empty(), "{report}");
    assert!(report.mask_conflicts.is_empty(), "{report}");
    assert!(report.promiscuous.is_empty(), "{report}");
    assert!(report.hardware_changes.is_empty(), "{report}");
    assert!(report.stale_routes.is_empty(), "{report}");
    assert!(report.silent_subnets.is_empty(), "{report}");
    assert!(report.clock_skew.is_empty(), "{report}");
    // An empty plan must not even count as fault activity.
    let stats = system.driver.sim.fault_stats;
    assert_eq!(stats.total(), 0);
    assert_eq!(stats.unresolved, 0);
    assert_eq!(stats.frames_dropped, 0);
}

#[test]
fn injected_duplicate_ip_is_rediscovered() {
    let mut cfg = CampusConfig::quiet_small(42);
    // "piper" never churns and participates in CS traffic; two hours in,
    // it is cloned onto bruno's address (128.138.243.10).
    cfg.fault_plan = FaultPlan::new().at(
        SimTime::from_hours(2),
        FaultKind::DuplicateIp {
            node: "piper".to_owned(),
            ip: "128.138.243.10".parse().unwrap(),
        },
    );
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(14)).unwrap();
    assert_eq!(system.driver.sim.fault_stats.duplicate_ips, 1);
    let report = system.problems(4 * 86400, 3600);
    assert!(
        report.duplicates.iter().any(|c| c.ip
            == "128.138.243.10".parse::<std::net::Ipv4Addr>().unwrap()
            && c.macs.len() >= 2),
        "two MACs claim the cloned address: {report}"
    );
}

#[test]
fn dead_gateway_becomes_a_stale_route() {
    let mut cfg = CampusConfig::quiet_small(7);
    // Six healthy hours to discover and live-verify the CS gateway, then
    // it dies and stays dead.
    cfg.fault_plan = FaultPlan::new().at(
        SimTime::from_hours(6),
        FaultKind::GatewayDeath {
            gateway: "cs-gw".to_owned(),
        },
    );
    let mut system = Fremont::over_campus(&cfg);
    // Bound module runs: with the only uplink dead, probes of the wider
    // campus can only time out — discovery must degrade, not wedge.
    system
        .driver
        .set_max_module_runtime(Some(SimDuration::from_hours(2)));
    system.explore(SimDuration::from_hours(54)).unwrap();
    assert_eq!(system.driver.sim.fault_stats.gateway_deaths, 1);
    let report = system.problems(86400, 3600);
    let cs_gw_ip: std::net::Ipv4Addr = "128.138.243.1".parse().unwrap();
    assert!(
        report
            .stale_routes
            .iter()
            .any(|r| r.gateway_ips.contains(&cs_gw_ip)),
        "cs-gw flagged as a stale route: {report}"
    );
}

#[test]
fn partitioned_segment_goes_silent() {
    let mut cfg = CampusConfig::quiet_small(5);
    // Eighteen healthy hours verify the well-populated departmental
    // wire, then its cable is cut for good: every interface there stops
    // verifying at once, which is exactly the whole-subnet-silence
    // signature the detector looks for.
    cfg.fault_plan = FaultPlan::new().at(
        SimTime::from_hours(18),
        FaultKind::Partition {
            segment: "cs-net".to_owned(),
        },
    );
    let mut system = Fremont::over_campus(&cfg);
    // With its own wire dead, every probe a module sends is swallowed —
    // bound the runs so the schedule keeps cycling instead of wedging.
    system
        .driver
        .set_max_module_runtime(Some(SimDuration::from_hours(2)));
    system.explore(SimDuration::from_hours(48)).unwrap();

    let stats = system.driver.sim.fault_stats;
    assert_eq!(stats.partitions, 1);
    assert!(stats.frames_dropped > 0, "the cut wire swallowed frames");

    let report = system.problems(86400, 3600);
    assert!(
        report
            .silent_subnets
            .iter()
            .any(|s| s.subnet == system.truth.cs_subnet && s.once_live >= 3),
        "the partitioned CS wire reported silent: {report}"
    );
}

#[test]
fn healed_partition_recovers_and_is_not_silent() {
    let mut cfg = CampusConfig::quiet_small(5);
    // Same cut, but the cable is spliced six hours later: the local
    // sweeps re-verify the wire well inside the reporting window.
    cfg.fault_plan = FaultPlan::new().partition_between(
        "cs-net",
        SimTime::from_hours(18),
        SimDuration::from_hours(6),
    );
    let mut system = Fremont::over_campus(&cfg);
    system
        .driver
        .set_max_module_runtime(Some(SimDuration::from_hours(2)));
    system.explore(SimDuration::from_hours(48)).unwrap();

    let stats = system.driver.sim.fault_stats;
    assert_eq!(stats.partitions, 1);
    assert_eq!(stats.heals, 1);

    let report = system.problems(86400, 3600);
    assert!(
        !report
            .silent_subnets
            .iter()
            .any(|s| s.subnet == system.truth.cs_subnet),
        "the healed CS wire re-verified, not silent: {report}"
    );
}

#[test]
fn injected_wrong_mask_is_rediscovered() {
    let mut cfg = CampusConfig::quiet_small(42);
    // Fires one simulated second in — before the first SubnetMasks
    // sweep, which only ever queries interfaces the Journal is missing
    // a mask for (a host whose mask goes wrong *after* it answered once
    // is never re-asked; the paper's module had the same blind spot).
    cfg.fault_plan = FaultPlan::new().at(
        SimTime(1_000_000),
        FaultKind::WrongMask {
            node: "piper".to_owned(),
            prefix_len: 16,
        },
    );
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(14)).unwrap();
    assert_eq!(system.driver.sim.fault_stats.wrong_masks, 1);
    let report = system.problems(4 * 86400, 3600);
    assert!(
        report
            .mask_conflicts
            .iter()
            .any(|c| c.subnet == system.truth.cs_subnet),
        "mask conflict anchored at the CS wire: {report}"
    );
}

#[test]
fn clock_skewed_reporter_poisons_the_journal_and_is_flagged() {
    let mut cfg = CampusConfig::quiet_small(42);
    // The explorer host itself runs two days fast: everything it reports
    // from hour six onward carries future timestamps.
    cfg.fault_plan = FaultPlan::new().at(
        SimTime::from_hours(6),
        FaultKind::ClockSkew {
            node: "bruno".to_owned(),
            skew_micros: 48 * 3_600_000_000,
        },
    );
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(12)).unwrap();
    assert_eq!(system.driver.sim.fault_stats.clock_skews, 1);
    let report = system.problems(4 * 86400, 3600);
    assert!(
        !report.clock_skew.is_empty(),
        "future-stamped records flagged: {report}"
    );
    // The skew is visible in the findings: records sit far ahead of now.
    assert!(
        report.clock_skew.iter().any(|s| s.ahead_secs > 86400),
        "{report}"
    );
}

#[test]
fn crashed_host_goes_stale() {
    let mut cfg = CampusConfig::quiet_small(42);
    // "piper" is DNS-registered, never churns, and crashes for good four
    // hours in: past the reporting horizon it is an address no longer in
    // use that was once seen alive.
    cfg.fault_plan = FaultPlan::new().at(
        SimTime::from_hours(4),
        FaultKind::NodeCrash {
            node: "piper".to_owned(),
        },
    );
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(36)).unwrap();
    assert_eq!(system.driver.sim.fault_stats.node_crashes, 1);
    let report = system.problems(8 * 3600, 3600);
    let piper = report
        .stale
        .iter()
        .find(|s| s.name.as_deref() == Some("piper.colorado.edu"));
    match piper {
        Some(s) => assert!(
            s.last_live.is_some(),
            "piper was seen alive before the crash: {report}"
        ),
        None => panic!("piper reported stale after crashing: {report}"),
    }
}

#[test]
fn rebooted_host_recovers_and_is_not_stale() {
    let mut cfg = CampusConfig::quiet_small(42);
    // Same crash, but the machine is rebooted two hours later (cold
    // boot, empty ARP cache) — re-verification must clear it.
    cfg.fault_plan =
        FaultPlan::new().crash_between("piper", SimTime::from_hours(4), SimDuration::from_hours(2));
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(36)).unwrap();
    let stats = system.driver.sim.fault_stats;
    assert_eq!(stats.node_crashes, 1);
    assert_eq!(stats.node_reboots, 1);
    let report = system.problems(8 * 3600, 3600);
    assert!(
        !report
            .stale
            .iter()
            .any(|s| s.name.as_deref() == Some("piper.colorado.edu")),
        "rebooted piper re-verified: {report}"
    );
}

#[test]
fn degraded_segment_slows_discovery_but_never_wedges_it() {
    let mut cfg = CampusConfig::quiet_small(42);
    // A six-hour window of heavy loss and added latency on the CS wire.
    cfg.fault_plan = FaultPlan::new().degrade_window(
        "cs-net",
        SimTime::from_hours(2),
        SimDuration::from_hours(6),
        0.30,
        SimDuration::from_millis(25),
    );
    let mut system = Fremont::over_campus(&cfg);
    system
        .driver
        .set_max_module_runtime(Some(SimDuration::from_hours(2)));
    system.explore(SimDuration::from_hours(24)).unwrap();
    let stats = system.driver.sim.fault_stats;
    assert_eq!(stats.degrades, 1);
    assert_eq!(stats.degrade_clears, 1);
    // Discovery still produced a healthy map of the CS subnet...
    let cs = system
        .journal
        .interfaces(&InterfaceQuery::in_subnet(system.truth.cs_subnet))
        .unwrap();
    assert!(
        cs.len() >= system.truth.cs_interfaces.len() / 2,
        "{} of {} CS interfaces despite the lossy window",
        cs.len(),
        system.truth.cs_interfaces.len()
    );
    // ...and the lossy window produced no false problem findings.
    let report = system.problems(4 * 86400, 3600);
    assert!(report.duplicates.is_empty(), "{report}");
    assert!(report.mask_conflicts.is_empty(), "{report}");
    assert!(report.clock_skew.is_empty(), "{report}");
}

#[test]
fn unknown_fault_targets_are_counted_not_fatal() {
    let mut cfg = CampusConfig::quiet_small(42);
    cfg.fault_plan = FaultPlan::new()
        .at(
            SimTime::from_hours(1),
            FaultKind::NodeCrash {
                node: "no-such-host".to_owned(),
            },
        )
        .at(
            SimTime::from_hours(1),
            FaultKind::Partition {
                segment: "no-such-wire".to_owned(),
            },
        )
        .at(
            SimTime::from_hours(1),
            FaultKind::ClockSkew {
                node: "still-missing".to_owned(),
                skew_micros: 1,
            },
        );
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(3)).unwrap();
    let stats = system.driver.sim.fault_stats;
    assert_eq!(stats.unresolved, 3, "every bogus target counted");
    assert_eq!(stats.total(), 0, "nothing was actually applied");
}

#[test]
fn fault_inside_skipped_idle_window_fires_at_exact_micros() {
    // The scheduler jumps the clock over provably idle gaps. A fault
    // scheduled at an arbitrary odd microsecond *inside* such a gap must
    // still fire at exactly that instant — never rounded to a slot edge,
    // a tick boundary, or the skip's landing point.
    use fremont::netsim::builder::TopologyBuilder;
    let mut b = TopologyBuilder::new();
    let lan = b.segment("lan", "10.7.0.0/24");
    b.host("alpha", lan, 10);
    b.host("beta", lan, 11);
    let (mut sim, topo) = b.build(5);
    let beta = topo.hosts[1];
    let fault_at = SimTime(17 * 60_000_000 + 123_457); // odd µs, mid-gap
    sim.install_fault_plan(&FaultPlan::new().at(
        fault_at,
        FaultKind::NodeCrash {
            node: "beta".to_owned(),
        },
    ));
    sim.run_until(SimTime(fault_at.as_micros() - 1));
    assert!(
        sim.nodes[beta.0].up,
        "fault must not fire a microsecond early"
    );
    assert!(
        sim.stats.idle_skipped_micros > 0,
        "a quiet LAN's 17 minutes must be crossed by skip-ahead, not stepped"
    );
    sim.run_until(fault_at);
    assert!(
        !sim.nodes[beta.0].up,
        "crash fires at exactly its scheduled microsecond"
    );
    assert_eq!(sim.now(), fault_at);
    assert_eq!(sim.fault_stats.total(), 1);
}
