//! Fault-injection: kill the WAL at an arbitrary byte and assert that
//! recovery yields *exactly a prefix* of the pre-crash history.
//!
//! The durability contract of `fremont-storage` is prefix semantics:
//! whatever a crash (truncation) or media fault (bit flip) does to the
//! log, recovery must reconstruct the journal produced by applying the
//! first `k` observations for some `k`, never a state that mixes in
//! later or corrupted records. Because every frame is CRC32-framed and
//! sequence-numbered, `k` is exactly the number of frames lying fully
//! below the damaged byte.

use std::net::Ipv4Addr;
use std::path::PathBuf;

use fremont::journal::observation::{Observation, Source};
use fremont::journal::server::JournalAccess;
use fremont::journal::snapshot::JournalSnapshot;
use fremont::journal::store::Journal;
use fremont::journal::time::JTime;
use fremont::net::MacAddr;
use fremont::storage::wal::list_segments;
use fremont::storage::{DurableJournal, WalConfig};
use proptest::prelude::*;

/// A deterministic, varied observation stream: alternating liveness
/// reports and ARP sightings over distinct addresses.
fn observation(i: usize) -> Observation {
    let ip = Ipv4Addr::new(10, 9, (i / 200) as u8, (i % 200) as u8 + 1);
    if i.is_multiple_of(2) {
        Observation::ip_alive(Source::SeqPing, ip)
    } else {
        Observation::arp_pair(
            Source::ArpWatch,
            ip,
            MacAddr::new([8, 0, 0x20, 9, (i / 200) as u8, (i % 200) as u8]),
        )
    }
}

/// The journal state after applying the first `k` observations.
fn reference_state(k: usize) -> JournalSnapshot {
    let mut j = Journal::new();
    for i in 0..k {
        j.apply(&observation(i), JTime(i as u64 + 1));
    }
    JournalSnapshot::capture(&j)
}

/// Writes `n` observations through a fresh `DurableJournal`, then
/// "crashes" it and returns the WAL segment's bytes + path.
fn build_wal(dir: &PathBuf, n: usize) -> (PathBuf, Vec<u8>) {
    let _ = std::fs::remove_dir_all(dir);
    // Group commit keeps the many proptest cases fast; WalState's Drop
    // still syncs, so the "crash" leaves the full log on disk.
    let (dj, _) = DurableJournal::open(WalConfig::grouped(dir, 1_000_000)).expect("open");
    for i in 0..n {
        dj.store(JTime(i as u64 + 1), &[observation(i)])
            .expect("store");
    }
    drop(dj); // crash: no shutdown compaction
    let segs = list_segments(dir).expect("segments");
    assert_eq!(segs.len(), 1, "all records fit one segment");
    let bytes = std::fs::read(&segs[0].path).expect("read segment");
    (segs[0].path.clone(), bytes)
}

/// Byte offsets at which each frame of the segment ends.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        assert!(pos <= bytes.len(), "writer produced a torn frame");
        ends.push(pos);
    }
    ends
}

/// Recovery after damage at `offset` must equal the reference prefix of
/// exactly the frames below `offset`, and the directory must reopen to
/// the same state again (idempotence).
fn assert_prefix_recovery(dir: &PathBuf, offset: usize, ends: &[usize]) {
    let expected_k = ends.iter().filter(|&&e| e <= offset).count();
    let (dj, report) = DurableJournal::open(WalConfig::new(dir)).expect("recover");
    assert_eq!(
        report.records_replayed, expected_k as u64,
        "replayed record count != frames below the damage"
    );
    let recovered = dj.capture_snapshot().expect("capture");
    assert_eq!(
        recovered,
        reference_state(expected_k),
        "recovered state is not the {expected_k}-observation prefix"
    );
    dj.shared()
        .read(|j| j.check_invariants())
        .expect("invariants");
    drop(dj);
    let (dj2, report2) = DurableJournal::open(WalConfig::new(dir)).expect("re-recover");
    assert_eq!(
        report2.records_replayed, 0,
        "recovery compaction absorbed the tail"
    );
    assert_eq!(
        dj2.capture_snapshot().expect("capture"),
        reference_state(expected_k)
    );
}

proptest! {
    /// Crash mid-write: the file ends at an arbitrary byte.
    #[test]
    fn truncation_recovers_exact_prefix(n in 1usize..24, cut in 0u32..10_000) {
        let dir = std::env::temp_dir()
            .join("fremont-crash-tests")
            .join(format!("trunc-{n}-{cut}"));
        let (path, bytes) = build_wal(&dir, n);
        let ends = frame_ends(&bytes);
        let offset = (cut as usize * bytes.len()) / 10_000;
        std::fs::write(&path, &bytes[..offset]).expect("truncate");
        assert_prefix_recovery(&dir, offset, &ends);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Media fault: a single bit flips at an arbitrary byte. CRC32
    /// detects every single-bit error, so the damaged frame and all
    /// frames after it fall off; frames fully before it survive.
    #[test]
    fn bit_flip_recovers_exact_prefix(n in 1usize..24, at in 0u32..10_000, bit in 0u8..8) {
        let dir = std::env::temp_dir()
            .join("fremont-crash-tests")
            .join(format!("flip-{n}-{at}-{bit}"));
        let (path, mut bytes) = build_wal(&dir, n);
        let ends = frame_ends(&bytes);
        let offset = (at as usize * (bytes.len() - 1)) / 9_999;
        bytes[offset] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert_prefix_recovery(&dir, offset, &ends);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
