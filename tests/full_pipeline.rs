//! End-to-end integration: the whole Fremont stack over a synthetic
//! campus — Discovery Manager scheduling, all eight Explorer Modules, the
//! Journal's merge rules, cross-correlation, and topology extraction —
//! cross-checked against the generator's ground truth.

use fremont::core::Fremont;
use fremont::journal::{InterfaceQuery, JournalAccess, Source, SubnetQuery};
use fremont::netsim::campus::CampusConfig;
use fremont::netsim::time::SimDuration;

fn explored_small() -> Fremont {
    let mut cfg = CampusConfig::small();
    cfg.seed = 404;
    let mut system = Fremont::over_campus(&cfg);
    system.explore(SimDuration::from_hours(2)).unwrap();
    system
}

#[test]
fn discovers_most_of_the_ground_truth() {
    let system = explored_small();
    let truth = &system.truth;

    // Every connected subnet discovered.
    let subs = system
        .journal
        .subnets(&SubnetQuery::all())
        .expect("journal reachable");
    let found_connected = truth
        .connected_subnets
        .iter()
        .filter(|s| subs.iter().any(|r| r.subnet == **s))
        .count();
    assert_eq!(
        found_connected,
        truth.connected_subnets.len(),
        "RIP + traceroute + DNS cover every connected subnet"
    );

    // Most CS interfaces are in the journal with MACs.
    let cs_recs = system
        .journal
        .interfaces(&InterfaceQuery::in_subnet(truth.cs_subnet))
        .expect("journal reachable");
    assert!(
        cs_recs.len() as f64 >= truth.cs_interfaces.len() as f64 * 0.6,
        "{} of {} CS interfaces",
        cs_recs.len(),
        truth.cs_interfaces.len()
    );
    let with_mac = cs_recs.iter().filter(|r| r.mac.is_some()).count();
    assert!(
        with_mac >= cs_recs.len() / 2,
        "ARP evidence on most records"
    );

    // The CS gateway is known, with both interfaces merged into one record.
    let gws = system.journal.gateways().expect("journal reachable");
    assert!(!gws.is_empty());
    let cs_gw_subnets: Vec<_> = gws
        .iter()
        .filter(|g| g.subnets.contains(&truth.cs_subnet))
        .collect();
    assert!(
        !cs_gw_subnets.is_empty(),
        "cs subnet attributed to a gateway"
    );

    // Internal consistency after thousands of merges.
    system
        .journal
        .read(|j| j.check_invariants())
        .expect("journal invariants hold");
}

#[test]
fn every_module_contributed() {
    let system = explored_small();
    let recs = system
        .journal
        .interfaces(&InterfaceQuery::all())
        .expect("journal reachable");
    let subs = system
        .journal
        .subnets(&SubnetQuery::all())
        .expect("journal reachable");

    let iface_sources = |s: Source| recs.iter().filter(|r| r.sources.contains(s)).count();
    let subnet_sources = |s: Source| subs.iter().filter(|r| r.sources.contains(s)).count();

    assert!(iface_sources(Source::ArpWatch) > 0, "ARPwatch contributed");
    assert!(
        iface_sources(Source::EtherHostProbe) > 0,
        "EtherHostProbe contributed"
    );
    assert!(iface_sources(Source::SeqPing) > 0, "SeqPing contributed");
    assert!(
        iface_sources(Source::BrdcastPing) > 0,
        "BrdcastPing contributed"
    );
    assert!(
        iface_sources(Source::SubnetMasks) > 0,
        "SubnetMasks contributed"
    );
    assert!(iface_sources(Source::Dns) > 0, "DNS contributed");
    assert!(subnet_sources(Source::RipWatch) > 0, "RIPwatch contributed");
    assert!(
        subnet_sources(Source::Traceroute) > 0,
        "Traceroute contributed"
    );

    // Cross-correlation: at least one record was touched by 4+ modules.
    let best = recs.iter().map(|r| r.sources.len()).max().unwrap_or(0);
    assert!(best >= 4, "cross-correlated record with {best} sources");
}

#[test]
fn topology_matches_truth_shape() {
    let system = explored_small();
    let graph = system.topology();
    // Every router in truth corresponds to at least one discovered gateway
    // touching its subnets.
    let truth = &system.truth;
    for (name, ips) in &truth.gateways {
        let backbone_ip = ips[0];
        let subnet24 = fremont::net::Subnet::containing(
            backbone_ip,
            fremont::net::SubnetMask::from_prefix_len(24).expect("valid"),
        );
        let covered = graph
            .gateways
            .iter()
            .any(|(_, _, subs)| subs.contains(&subnet24));
        assert!(covered, "router {name} invisible in the topology graph");
    }
    // The SunNet dump round-trips the same counts.
    let sunnet = graph.to_sunnet();
    let element_count = sunnet.matches("element {").count();
    assert_eq!(element_count, graph.subnets.len() + graph.gateways.len());
}

#[test]
fn schedule_adapts_over_repeated_runs() {
    let mut cfg = CampusConfig::small();
    cfg.cs_traffic = false;
    let mut system = Fremont::over_campus(&cfg);
    // A week of simulated exploration: early eager runs back off as the
    // journal saturates.
    system.explore(SimDuration::from_days(7)).unwrap();
    let m = &system.driver.manager;
    let rip = m.schedule(Source::RipWatch).expect("scheduled");
    assert!(rip.runs >= 2, "RIPwatch re-ran over the week: {}", rip.runs);
    // A module that keeps finding nothing new has backed off beyond its
    // minimum interval.
    let min = fremont::core::registry::info_for(Source::RipWatch)
        .expect("registry entry")
        .min_interval
        .as_secs();
    assert!(
        rip.interval > min,
        "fruitless re-runs back off: {} vs min {min}",
        rip.interval
    );
}
