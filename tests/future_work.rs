//! Integration tests for the paper's Future Work items that this
//! reproduction implements:
//!
//! 1. **RIP Poll directed probes** — routed whole-table requests reaching
//!    routers on non-local subnets;
//! 2. **Traceroute from multiple points** — "Running this module from
//!    multiple locations in the network will acquire more complete
//!    information about the router interface addresses";
//! 3. **Initial-TTL optimization** — starting traces past the known
//!    shared prefix of the path.

use fremont::explorers::{RipProbe, RipProbeConfig, Traceroute, TracerouteConfig};
use fremont::journal::{JournalAccess, SharedJournal, Source, SubnetQuery};
use fremont::netsim::builder::TopologyBuilder;
use fremont::netsim::process::Process as _;
use fremont::netsim::time::SimDuration;

/// Four subnets in a line so the two vantage points see different "near
/// sides" of the middle routers.
fn line4() -> (
    fremont::netsim::engine::Sim,
    fremont::netsim::builder::Topology,
) {
    let mut b = TopologyBuilder::new();
    let a = b.segment("net-a", "10.2.1.0/24");
    let m1 = b.segment("net-m1", "10.2.2.0/24");
    let m2 = b.segment("net-m2", "10.2.3.0/24");
    let d = b.segment("net-d", "10.2.4.0/24");
    b.host("west", a, 10);
    b.host("east", d, 10);
    b.router("r1", &[(a, 1), (m1, 1)]);
    b.router("r2", &[(m1, 2), (m2, 1)]);
    b.router("r3", &[(m2, 2), (d, 1)]);
    b.build(0x4AC3)
}

#[test]
fn multi_vantage_traceroute_sees_both_interface_halves() {
    let (mut sim, topo) = line4();
    let west = topo.nodes_by_name["west"];
    let east = topo.nodes_by_name["east"];

    // One run each, from opposite ends, toward the middle subnets.
    let targets = vec![
        "10.2.2.0/24".parse().unwrap(),
        "10.2.3.0/24".parse().unwrap(),
    ];
    let hw = sim.spawn(
        west,
        Box::new(Traceroute::new(TracerouteConfig::over(targets.clone()))),
    );
    let he = sim.spawn(
        east,
        Box::new(Traceroute::new(TracerouteConfig::over(targets))),
    );
    sim.run_for(SimDuration::from_mins(10));

    // Both runs' observations flow into one shared Journal.
    let journal = SharedJournal::new();
    for (_, at, o) in sim.drain_observations() {
        journal
            .store(at.to_jtime(), std::slice::from_ref(&o))
            .expect("store");
    }
    let _ = (hw, he);

    // r2 has interfaces 10.2.2.2 (west-facing) and 10.2.3.1 (east-facing).
    // A single vantage sees only its near side; together, both halves.
    let all: Vec<_> = journal
        .interfaces(&fremont::journal::InterfaceQuery::all())
        .expect("query")
        .iter()
        .filter_map(|r| r.ip_addr())
        .collect();
    assert!(
        all.contains(&"10.2.2.2".parse().unwrap()),
        "west vantage found r2's west side: {all:?}"
    );
    assert!(
        all.contains(&"10.2.3.1".parse().unwrap()),
        "east vantage found r2's east side: {all:?}"
    );
}

#[test]
fn rip_poll_reaches_across_routers_and_feeds_the_journal() {
    let (mut sim, topo) = line4();
    let west = topo.nodes_by_name["west"];
    // Poll r3 — three hops away — by its far-side attachment address.
    let h = sim.spawn(
        west,
        Box::new(RipProbe::new(RipProbeConfig::over(vec!["10.2.3.2"
            .parse()
            .unwrap()]))),
    );
    sim.run_for(SimDuration::from_mins(2));
    assert!(sim.process_done(h));

    let journal = SharedJournal::new();
    for (_, at, o) in sim.drain_observations() {
        journal
            .store(at.to_jtime(), std::slice::from_ref(&o))
            .expect("store");
    }
    // One routed poll learned every subnet r3 can reach.
    let subs = journal.subnets(&SubnetQuery::all()).expect("query");
    assert!(subs.len() >= 4, "r3's full table arrived: {}", subs.len());
    // The responder is flagged as a RIP source.
    let q = fremont::journal::InterfaceQuery {
        rip_source: Some(true),
        ..Default::default()
    };
    let sources = journal.interfaces(&q).expect("query");
    assert_eq!(sources.len(), 1);
    assert!(sources[0].sources.contains(Source::RipWatch));
}

#[test]
fn initial_ttl_optimization_halves_probe_cost() {
    // Both configurations reach the far subnet; the optimized one skips
    // re-tracing the shared 2-hop prefix.
    let count_probes = |start_ttl: u8| {
        let (mut sim, topo) = line4();
        let west = topo.nodes_by_name["west"];
        let mut cfg = TracerouteConfig::over(vec!["10.2.4.0/24".parse().unwrap()]);
        cfg.start_ttl = start_ttl;
        let h = sim.spawn(west, Box::new(Traceroute::new(cfg)));
        sim.run_for(SimDuration::from_mins(10));
        let p = sim.process_mut::<Traceroute>(h).expect("alive");
        assert!(p.done());
        assert!(
            p.traces()
                .iter()
                .any(|t| matches!(t.status, fremont::explorers::TraceStatus::Reached(_))),
            "ttl {start_ttl} still reaches"
        );
        p.probes_sent()
    };
    let naive = count_probes(1);
    let optimized = count_probes(3);
    assert!(
        optimized < naive,
        "H+1 start saves probes: {optimized} vs {naive}"
    );
}
