//! fremont-storage: durable persistence for the Fremont Journal.
//!
//! The paper's Journal Server "maintains an in-memory representation of
//! the Journal data, which it writes to disk periodically and at
//! termination" — a scheme that loses everything since the last write
//! on a crash. This crate upgrades that story with a storage engine:
//!
//! * a binary **write-ahead log** of observations ([`wal`]): length- and
//!   CRC32-framed records, fsync'd per a configurable [`SyncPolicy`]
//!   (always / group-commit / never);
//! * **crash recovery** ([`DurableJournal::open`]): load the latest
//!   snapshot, replay the WAL tail above its watermark, tolerate a torn
//!   final record;
//! * **segment rotation + compaction**: when the live segment passes a
//!   size threshold it is sealed, a fresh [`JournalSnapshot`] is written
//!   durably, and obsolete segments are deleted.
//!
//! [`DurableJournal`] implements the journal's `JournalAccess` trait, so
//! it drops into the Journal Server and the discovery driver wherever a
//! `SharedJournal` is used today; [`PersistencePolicy`] selects between
//! in-memory, snapshot-only, and WAL deployments.
//!
//! [`JournalSnapshot`]: fremont_journal::snapshot::JournalSnapshot

pub mod crc32;
pub mod durable;
pub mod wal;

pub use durable::{publish_recovery, DurableJournal, PersistencePolicy, RecoveryReport, WalConfig};
pub use wal::{SyncPolicy, WalRecord};
