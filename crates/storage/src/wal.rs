//! The write-ahead log: record framing, segment files, and scanning.
//!
//! ## On-disk format
//!
//! A WAL directory holds numbered segment files plus a snapshot:
//!
//! ```text
//! journal-dir/
//!   snapshot.json            durable JournalSnapshot (compaction floor)
//!   wal-0000000000000042.log segment whose first record has seq 42
//!   wal-0000000000017311.log current (open) segment
//! ```
//!
//! Each segment is a sequence of frames:
//!
//! ```text
//! +----------------+----------------+----------------------+
//! | len: u32 LE    | crc: u32 LE    | payload (len bytes)  |
//! +----------------+----------------+----------------------+
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload; the payload is the JSON
//! encoding of a [`WalRecord`]. A record is valid only if the frame is
//! complete, the CRC matches, and the JSON parses — anything else ends
//! the valid prefix of the segment (a *torn tail*, expected after a
//! crash mid-append).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use fremont_journal::observation::Observation;
use fremont_journal::time::JTime;

use crate::crc32::crc32;

/// Upper bound on a single record's payload; larger lengths in a frame
/// header are treated as corruption.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

/// Bytes of framing overhead per record (length + checksum).
pub const FRAME_HEADER_BYTES: u64 = 8;

/// One logged journal mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Value of the journal's observation counter once this record is
    /// applied; recovery replays records with `seq` above the snapshot
    /// watermark.
    pub seq: u64,
    /// Journal timestamp the observation was stored at.
    pub at: JTime,
    /// The observation itself.
    pub obs: Observation,
}

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append: no acknowledged record is ever lost.
    Always,
    /// Group commit: fsync once per `n` appends (and on rotation or
    /// shutdown). A crash can lose up to the last `n - 1` records.
    EveryN(usize),
    /// Never fsync explicitly; the OS flushes when it pleases. Fastest,
    /// loses an unbounded tail on power failure. Still torn-tail-safe.
    Never,
}

/// Builds a segment file name from its first sequence number.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016}.log")
}

/// Parses a segment file name back to its first sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A discovered segment file.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Sequence number of the first record the segment was opened for.
    pub first_seq: u64,
    pub path: PathBuf,
}

/// Lists the WAL segments in `dir`, ordered by first sequence number.
pub fn list_segments(dir: &Path) -> io::Result<Vec<Segment>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(first_seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push(Segment {
                first_seq,
                path: entry.path(),
            });
        }
    }
    out.sort_by_key(|s| s.first_seq);
    Ok(out)
}

/// Opens `dir` itself and fsyncs it, persisting entry creation/removal.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Appends framed records to one segment file.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    first_seq: u64,
    bytes: u64,
    sync: SyncPolicy,
    /// Appends not yet covered by an fsync.
    unsynced: usize,
}

impl WalWriter {
    /// Creates (or truncates) the segment for `first_seq` in `dir` and
    /// fsyncs the directory so the new entry survives a crash.
    pub fn create(dir: &Path, first_seq: u64, sync: SyncPolicy) -> io::Result<WalWriter> {
        let path = dir.join(segment_file_name(first_seq));
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.sync_all()?;
        sync_dir(dir)?;
        Ok(WalWriter {
            file,
            path,
            first_seq,
            bytes: 0,
            sync,
            unsynced: 0,
        })
    }

    /// Reopens an existing segment for appending, first truncating it
    /// to `valid_bytes` to shed a torn tail.
    pub fn open_end(path: &Path, valid_bytes: u64, sync: SyncPolicy) -> io::Result<WalWriter> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len != valid_bytes {
            file.set_len(valid_bytes)?;
            file.sync_all()?;
        }
        let first_seq = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_segment_name)
            .unwrap_or(0);
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            first_seq,
            bytes: valid_bytes,
            sync,
            unsynced: 0,
        };
        io::Seek::seek(&mut w.file, io::SeekFrom::Start(valid_bytes))?;
        Ok(w)
    }

    /// Appends one record (a single `write` of the assembled frame),
    /// then applies the sync policy. Returns whether this append
    /// triggered an fsync (so callers can count real disk syncs).
    pub fn append(&mut self, record: &WalRecord) -> io::Result<bool> {
        let payload = serde_json::to_vec(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("WAL record of {} bytes exceeds limit", payload.len()),
            ));
        }
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER_BYTES as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        let synced = match self.sync {
            SyncPolicy::Always => self.sync_now()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync_now()?
                } else {
                    false
                }
            }
            SyncPolicy::Never => false,
        };
        Ok(synced)
    }

    /// Appends a run of records as one group: every frame is assembled
    /// into a single buffer, written with one `write` call, and the sync
    /// policy is applied once at the end — so the group costs at most
    /// one fsync regardless of its length. Returns whether that fsync
    /// happened.
    ///
    /// Under [`SyncPolicy::Always`] the group is synced once after the
    /// write (the policy guarantees acknowledged records are on disk,
    /// and the whole group is acknowledged together). Under
    /// [`SyncPolicy::EveryN`] the group counts as `records.len()`
    /// pending appends.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> io::Result<bool> {
        if records.is_empty() {
            return Ok(false);
        }
        let mut frame = Vec::new();
        for record in records {
            let payload = serde_json::to_vec(record)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("WAL record of {} bytes exceeds limit", payload.len()),
                ));
            }
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
        }
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.unsynced += records.len();
        let synced = match self.sync {
            SyncPolicy::Always => self.sync_now()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync_now()?
                } else {
                    false
                }
            }
            SyncPolicy::Never => false,
        };
        Ok(synced)
    }

    /// Forces everything appended so far onto disk. Returns whether an
    /// fsync was actually issued (`false` when nothing was pending).
    pub fn sync_now(&mut self) -> io::Result<bool> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
            return Ok(true);
        }
        Ok(false)
    }

    /// Bytes written to this segment (including framing).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Sequence number the segment was opened for (0 when the name of
    /// a reopened segment did not parse).
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// The segment file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------

/// How a segment scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte belonged to a valid frame.
    Clean,
    /// The valid prefix ended early (truncated frame, bad CRC, or
    /// unparseable payload); `dropped_bytes` did not decode.
    Torn { dropped_bytes: u64 },
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Records of the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (where appending may resume).
    pub valid_bytes: u64,
    pub tail: TailStatus,
}

/// Reads a little-endian `u32` at `offset`, if all four bytes exist.
fn le_u32(data: &[u8], offset: usize) -> Option<u32> {
    let bytes: [u8; 4] = data.get(offset..offset + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// Reads the valid prefix of the segment at `path`.
///
/// Never fails on corruption — corruption just ends the prefix. An
/// `Err` means the file could not be read at all.
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let remaining = data.len() - offset;
        if remaining == 0 {
            return Ok(SegmentScan {
                records,
                valid_bytes: offset as u64,
                tail: TailStatus::Clean,
            });
        }
        if remaining < FRAME_HEADER_BYTES as usize {
            break; // torn header
        }
        let (Some(len), Some(crc)) = (le_u32(&data, offset), le_u32(&data, offset + 4)) else {
            break; // torn header (length checked above; belt and braces)
        };
        if len > MAX_RECORD_BYTES {
            break; // corrupt length field
        }
        let start = offset + FRAME_HEADER_BYTES as usize;
        let end = start + len as usize;
        if end > data.len() {
            break; // torn payload
        }
        let payload = &data[start..end];
        if crc32(payload) != crc {
            break; // bit rot or torn overwrite
        }
        match serde_json::from_slice::<WalRecord>(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break, // CRC matched but the payload is foreign
        }
        offset = end;
    }
    Ok(SegmentScan {
        records,
        valid_bytes: offset as u64,
        tail: TailStatus::Torn {
            dropped_bytes: (data.len() - offset) as u64,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_journal::observation::Source;
    use std::net::Ipv4Addr;

    fn rec(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            at: JTime(seq * 10),
            obs: Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 0, seq as u8)),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fremont-wal-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::Always).unwrap();
        for seq in 1..=5 {
            w.append(&rec(seq)).unwrap();
        }
        let scan = scan_segment(w.path()).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.records[4], rec(5));
        assert_eq!(scan.valid_bytes, w.bytes());
    }

    #[test]
    fn torn_tail_is_dropped_and_writable_over() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::Always).unwrap();
        for seq in 1..=3 {
            w.append(&rec(seq)).unwrap();
        }
        let path = w.path().to_path_buf();
        let full = w.bytes();
        drop(w);
        // Simulate a crash mid-append: chop the last record in half.
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 20]).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(matches!(scan.tail, TailStatus::Torn { dropped_bytes } if dropped_bytes > 0));
        assert!(scan.valid_bytes < full);
        // Recovery resumes appending over the torn bytes.
        let mut w = WalWriter::open_end(&path, scan.valid_bytes, SyncPolicy::Always).unwrap();
        w.append(&rec(3)).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn bit_flip_ends_prefix() {
        let dir = tmp_dir("bitflip");
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::Always).unwrap();
        for seq in 1..=4 {
            w.append(&rec(seq)).unwrap();
        }
        let path = w.path().to_path_buf();
        drop(w);
        let mut data = fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x10;
        fs::write(&path, &data).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.records.len() < 4, "flip at byte {mid} undetected");
        // Whatever survived is a strict prefix with consecutive seqs.
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
    }

    #[test]
    fn segment_names_sort_and_parse() {
        assert_eq!(segment_file_name(42), "wal-0000000000000042.log");
        assert_eq!(parse_segment_name("wal-0000000000000042.log"), Some(42));
        assert_eq!(parse_segment_name("wal-42.log"), None);
        assert_eq!(parse_segment_name("snapshot.json"), None);
        let dir = tmp_dir("listing");
        for seq in [30u64, 2, 117] {
            WalWriter::create(&dir, seq, SyncPolicy::Never).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert_eq!(
            segs.iter().map(|s| s.first_seq).collect::<Vec<_>>(),
            vec![2, 30, 117]
        );
    }

    #[test]
    fn append_batch_writes_once_and_scans_back() {
        let dir = tmp_dir("batch");
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::EveryN(4)).unwrap();
        let records: Vec<WalRecord> = (1..=10).map(rec).collect();
        // Ten records, policy EveryN(4): the batch still costs at most
        // one fsync because the policy is applied once at the end.
        let synced = w.append_batch(&records).unwrap();
        assert!(synced);
        assert_eq!(w.unsynced, 0);
        // An under-threshold batch defers entirely.
        let synced = w.append_batch(&records[..2]).unwrap();
        assert!(!synced);
        assert_eq!(w.unsynced, 2);
        let scan = scan_segment(w.path()).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.records.len(), 12);
        assert_eq!(scan.records[9], rec(10));
        // Batched frames are byte-identical to one-at-a-time frames.
        let mut one = WalWriter::create(&dir, 100, SyncPolicy::Never).unwrap();
        for r in &records {
            one.append(r).unwrap();
        }
        assert_eq!(one.bytes(), {
            let mut b = WalWriter::create(&dir, 200, SyncPolicy::Never).unwrap();
            b.append_batch(&records).unwrap();
            b.bytes()
        });
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let dir = tmp_dir("batch-empty");
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::Always).unwrap();
        assert!(!w.append_batch(&[]).unwrap());
        assert_eq!(w.bytes(), 0);
    }

    #[test]
    fn group_commit_defers_sync() {
        let dir = tmp_dir("group");
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::EveryN(8)).unwrap();
        for seq in 1..=20 {
            w.append(&rec(seq)).unwrap();
        }
        // 20 appends with n=8: syncs at 8 and 16, leaving 4 pending.
        assert_eq!(w.unsynced, 4);
        w.sync_now().unwrap();
        assert_eq!(w.unsynced, 0);
    }
}
