//! [`DurableJournal`]: a crash-safe journal backend.
//!
//! Wraps a [`SharedJournal`] and mirrors every stored observation into
//! a write-ahead log before applying it, so the in-memory state can
//! always be rebuilt: load the latest snapshot, then replay the WAL
//! tail above the snapshot's observation watermark.
//!
//! ## Recovery algorithm
//!
//! 1. Load `snapshot.json` if present; its `observations_applied`
//!    counter is the watermark `W`.
//! 2. Scan segments in ascending first-seq order. Apply records with
//!    `seq == next expected` (starting at `W + 1`); skip records at or
//!    below `W` (already folded into the snapshot). Stop at the first
//!    torn/corrupt frame or sequence gap — everything after it is an
//!    unusable suffix.
//! 3. Compact: write a fresh durable snapshot of the recovered state,
//!    open a new segment, delete the old ones. This makes recovery
//!    idempotent — a crash at *any* point leaves a directory that
//!    recovers to the same state.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use fremont_telemetry::{SpanId, TelTime, Telemetry};
use parking_lot::Mutex;

use fremont_journal::observation::Observation;
use fremont_journal::proto::{ProtoError, StoreBatchItem, WalStateReport};
use fremont_journal::query::{InterfaceQuery, SubnetQuery};
use fremont_journal::records::{GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
use fremont_journal::server::{JournalAccess, SharedJournal};
use fremont_journal::snapshot::JournalSnapshot;
use fremont_journal::store::{Journal, JournalStats, StoreSummary};
use fremont_journal::time::JTime;

use crate::wal::{
    list_segments, scan_segment, sync_dir, SyncPolicy, TailStatus, WalRecord, WalWriter,
};

/// How (and whether) a journal persists across restarts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PersistencePolicy {
    /// No disk at all; state dies with the process.
    #[default]
    InMemory,
    /// The paper's scheme: periodic + at-termination JSON snapshots.
    /// Everything since the last snapshot is lost on a crash.
    SnapshotOnly { path: PathBuf },
    /// Snapshot + write-ahead log: acknowledged observations survive
    /// crashes (bounded by the [`SyncPolicy`]).
    Wal(WalConfig),
}

/// Configuration of a WAL-backed journal directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Directory holding `snapshot.json` and `wal-*.log` segments.
    pub dir: PathBuf,
    /// fsync cadence for appends.
    pub sync: SyncPolicy,
    /// Segment size that triggers rotation + compaction.
    pub max_segment_bytes: u64,
}

impl WalConfig {
    /// Durable defaults: fsync every append, 4 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            sync: SyncPolicy::Always,
            max_segment_bytes: 4 * 1024 * 1024,
        }
    }

    /// Group-commit variant (fsync once per `n` appends).
    pub fn grouped(dir: impl Into<PathBuf>, n: usize) -> Self {
        WalConfig {
            sync: SyncPolicy::EveryN(n),
            ..WalConfig::new(dir)
        }
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.json")
    }
}

/// What recovery found in a journal directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot existed and was loaded.
    pub snapshot_loaded: bool,
    /// Observation counter covered by the snapshot.
    pub watermark: u64,
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// WAL records re-applied on top of the snapshot.
    pub records_replayed: u64,
    /// Records skipped because the snapshot already covered them.
    pub records_skipped: u64,
    /// Bytes dropped from torn/corrupt segment tails.
    pub torn_bytes_dropped: u64,
}

/// Publishes a [`RecoveryReport`] into a telemetry sink: one counter
/// per field plus a `storage.recovery` trace event (at time zero —
/// recovery happens before the exploration clock starts).
pub fn publish_recovery(telemetry: &Telemetry, report: &RecoveryReport) {
    if !telemetry.enabled() {
        return;
    }
    telemetry.gauge_set(
        "fremont_wal_recovery_snapshot_loaded",
        "",
        u64::from(report.snapshot_loaded),
    );
    telemetry.gauge_set("fremont_wal_recovery_watermark", "", report.watermark);
    telemetry.counter_set(
        "fremont_wal_recovery_segments_scanned",
        "",
        report.segments_scanned as u64,
    );
    telemetry.counter_set(
        "fremont_wal_recovery_records_replayed",
        "",
        report.records_replayed,
    );
    telemetry.counter_set(
        "fremont_wal_recovery_records_skipped",
        "",
        report.records_skipped,
    );
    telemetry.counter_set(
        "fremont_wal_recovery_torn_bytes_dropped",
        "",
        report.torn_bytes_dropped,
    );
    let detail = format!(
        "snapshot_loaded={} watermark={} segments={} replayed={} skipped={} torn_bytes={}",
        report.snapshot_loaded,
        report.watermark,
        report.segments_scanned,
        report.records_replayed,
        report.records_skipped,
        report.torn_bytes_dropped,
    );
    telemetry.event("storage.recovery", &detail, SpanId::NONE, TelTime(0));
}

struct WalState {
    cfg: WalConfig,
    writer: WalWriter,
}

impl Drop for WalState {
    fn drop(&mut self) {
        // Last-gasp durability for group-commit/never policies.
        // fremont-lint: allow(ignored-io) -- Drop cannot propagate; callers wanting the error use sync() first
        let _ = self.writer.sync_now();
    }
}

/// A cheaply-cloneable handle to a WAL-backed journal.
///
/// All mutations ([`JournalAccess::store`], [`JournalAccess::delete`])
/// are serialized through the WAL lock; reads go straight to the
/// underlying [`SharedJournal`].
#[derive(Clone)]
pub struct DurableJournal {
    shared: SharedJournal,
    wal: Arc<Mutex<WalState>>,
    telemetry: Telemetry,
}

impl DurableJournal {
    /// Opens (creating if needed) a journal directory, running crash
    /// recovery and an initial compaction.
    pub fn open(cfg: WalConfig) -> io::Result<(DurableJournal, RecoveryReport)> {
        Self::open_with_telemetry(cfg, Telemetry::noop())
    }

    /// Like [`DurableJournal::open`], with a telemetry handle: the
    /// recovery report is published at startup and WAL activity
    /// (appends, fsyncs, rotations) is counted from then on.
    pub fn open_with_telemetry(
        cfg: WalConfig,
        telemetry: Telemetry,
    ) -> io::Result<(DurableJournal, RecoveryReport)> {
        std::fs::create_dir_all(&cfg.dir)?;
        let (journal, report) = recover(&cfg)?;
        publish_recovery(&telemetry, &report);
        let shared = SharedJournal::from_journal(journal);
        // Compact immediately: snapshot the recovered state and start a
        // fresh segment, so stale segments can't accumulate and a
        // half-written pre-crash directory is normalized.
        // fremont-lint: allow(lock-order) -- rotation snapshots under the read lock so no write can slip between capture and segment switch
        let writer = shared.read(|j| write_snapshot_and_rotate(&cfg, j))?;
        let durable = DurableJournal {
            shared,
            wal: Arc::new(Mutex::labeled("storage.wal", WalState { cfg, writer })),
            telemetry,
        };
        Ok((durable, report))
    }

    /// The in-process journal handle (for read paths and correlation).
    pub fn shared(&self) -> &SharedJournal {
        &self.shared
    }

    /// Forces buffered WAL appends to disk (group-commit flush point).
    pub fn sync(&self) -> io::Result<()> {
        // fremont-lint: allow(lock-order) -- the WAL mutex exists to serialize exactly this fsync against appends
        if self.wal.lock().writer.sync_now()? {
            self.telemetry
                .counter_add("fremont_wal_fsyncs_total", "", 1);
        }
        Ok(())
    }

    /// Writes a durable snapshot, rotates to a fresh segment, and
    /// deletes segments the snapshot made obsolete.
    pub fn compact(&self) -> io::Result<()> {
        // fremont-lint: allow(lock-order) -- compaction must hold the WAL lock across its IO to keep appends out of the rotating segment
        let mut wal = self.wal.lock();
        self.compact_locked(&mut wal)
    }

    fn compact_locked(&self, wal: &mut WalState) -> io::Result<()> {
        if wal.writer.sync_now()? {
            self.telemetry
                .counter_add("fremont_wal_fsyncs_total", "", 1);
        }
        wal.writer = self
            .shared
            // fremont-lint: allow(lock-order) -- see open(): the snapshot must be captured under the read lock
            .read(|j| write_snapshot_and_rotate(&wal.cfg, j))?;
        self.telemetry
            .counter_add("fremont_wal_segment_rotations_total", "", 1);
        Ok(())
    }
}

/// Phase 1 + 2 of recovery: snapshot load and WAL replay.
fn recover(cfg: &WalConfig) -> io::Result<(Journal, RecoveryReport)> {
    let mut report = RecoveryReport::default();
    let snap_path = cfg.snapshot_path();
    let mut journal = if snap_path.exists() {
        let snap = JournalSnapshot::load(&snap_path)?;
        report.snapshot_loaded = true;
        report.watermark = snap.observations_applied;
        snap.restore()
    } else {
        Journal::new()
    };

    let mut expected = report.watermark + 1;
    'segments: for seg in list_segments(&cfg.dir)? {
        report.segments_scanned += 1;
        let scan = scan_segment(&seg.path)?;
        if let TailStatus::Torn { dropped_bytes } = scan.tail {
            report.torn_bytes_dropped += dropped_bytes;
        }
        for rec in scan.records {
            if rec.seq < expected {
                report.records_skipped += 1;
                continue;
            }
            if rec.seq > expected {
                // Sequence gap: a lost middle. Nothing after it can be
                // trusted to produce the pre-crash state.
                break 'segments;
            }
            journal.apply(&rec.obs, rec.at);
            report.records_replayed += 1;
            expected += 1;
        }
        if scan.tail != TailStatus::Clean {
            // A torn segment ends the trustworthy prefix even if later
            // segments exist (they would open a gap anyway).
            break;
        }
    }

    debug_assert_eq!(
        journal.stats().observations_applied,
        expected - 1,
        "replay must land the observation counter on the last applied seq"
    );
    debug_assert!(journal.check_invariants().is_ok());
    Ok((journal, report))
}

/// Phase 3 of recovery, also the rotation path: durable snapshot, new
/// segment, prune. Returns the writer for the fresh segment.
fn write_snapshot_and_rotate(cfg: &WalConfig, journal: &Journal) -> io::Result<WalWriter> {
    let snap = journal.to_snapshot();
    let next_seq = snap.observations_applied + 1;
    snap.save(&cfg.snapshot_path())?;
    let writer = WalWriter::create(&cfg.dir, next_seq, cfg.sync)?;
    for seg in list_segments(&cfg.dir)? {
        if seg.path != writer.path() {
            std::fs::remove_file(&seg.path)?;
        }
    }
    sync_dir(&cfg.dir)?;
    Ok(writer)
}

fn io_err(e: io::Error) -> ProtoError {
    ProtoError::Io(e)
}

impl DurableJournal {
    /// The one write path: logs every observation in `runs` ahead of
    /// applying it, as a single group — one WAL lock acquisition, one
    /// buffered segment write, and at most one fsync for the whole
    /// call (the sync policy is applied once, after the group).
    ///
    /// With a real `parent` span and an enabled sink, the call also
    /// emits the storage leg of the causal trace: a `wal.append` child
    /// span attributing appended bytes and observations, plus a
    /// `wal.fsync` child when the sync policy fired. Both are logical
    /// (same `at` for start and end) and are pushed only after the WAL
    /// lock is released.
    fn store_runs(
        &self,
        runs: &[(JTime, &[Observation])],
        parent: SpanId,
        at: TelTime,
    ) -> Result<StoreSummary, ProtoError> {
        let total: usize = runs.iter().map(|(_, obs)| obs.len()).sum();
        if total == 0 {
            return Ok(StoreSummary::default());
        }
        // fremont-lint: allow(lock-order) -- WAL-before-journal is the crate's one lock order; store/compact/delete all follow it
        let mut wal = self.wal.lock();
        let bytes_before = wal.writer.bytes();
        let mut fsyncs = 0u64;
        let summary = self
            .shared
            // fremont-lint: allow(lock-order) -- write-ahead logging: append and apply must be atomic under the write lock
            .write(|j| -> io::Result<StoreSummary> {
                // Log ahead of apply: each record carries the seq the
                // counter will reach once that observation is applied.
                let mut seq = j.stats().observations_applied;
                let mut records = Vec::with_capacity(total);
                for (now, observations) in runs {
                    for obs in *observations {
                        seq += 1;
                        records.push(WalRecord {
                            seq,
                            at: *now,
                            obs: obs.clone(),
                        });
                    }
                }
                let synced = wal.writer.append_batch(&records)?;
                fsyncs += u64::from(synced);
                Ok(j.apply_batch(
                    runs.iter()
                        .flat_map(|(now, observations)| observations.iter().map(|o| (o, *now))),
                ))
            })
            .map_err(io_err)?;
        // Captured before the rotation check: rotation resets bytes().
        let appended = wal.writer.bytes().saturating_sub(bytes_before);
        self.telemetry
            .counter_add("fremont_wal_appends_total", "", total as u64);
        if fsyncs > 0 {
            self.telemetry
                .counter_add("fremont_wal_fsyncs_total", "", fsyncs);
        }
        if wal.writer.bytes() >= wal.cfg.max_segment_bytes {
            self.compact_locked(&mut wal).map_err(io_err)?;
        }
        drop(wal);
        if parent.is_real() && self.telemetry.enabled() {
            let span = self.telemetry.span_start("wal.append", "", parent, at);
            self.telemetry.work(span, "bytes", appended, at);
            self.telemetry.work(span, "observations", total as u64, at);
            self.telemetry
                .span_end(span, &format!("records={total} bytes={appended}"), at);
            if fsyncs > 0 {
                let span = self.telemetry.span_start("wal.fsync", "", parent, at);
                self.telemetry.work(span, "fsyncs", fsyncs, at);
                self.telemetry.span_end(span, "synced", at);
            }
        }
        Ok(summary)
    }
}

impl JournalAccess for DurableJournal {
    fn store(&self, now: JTime, observations: &[Observation]) -> Result<StoreSummary, ProtoError> {
        self.store_runs(&[(now, observations)], SpanId::NONE, TelTime(0))
    }

    fn store_batch(&self, batches: &[StoreBatchItem]) -> Result<StoreSummary, ProtoError> {
        self.store_batch_traced(batches, SpanId::NONE, TelTime(0))
    }

    fn store_batch_traced(
        &self,
        batches: &[StoreBatchItem],
        parent: SpanId,
        at: TelTime,
    ) -> Result<StoreSummary, ProtoError> {
        let runs: Vec<(JTime, &[Observation])> = batches
            .iter()
            .map(|b| (b.now, b.observations.as_slice()))
            .collect();
        self.store_runs(&runs, parent, at)
    }

    fn wal_state(&self) -> Option<WalStateReport> {
        let (segment_first_seq, segment_bytes, sync_policy) = {
            let wal = self.wal.lock();
            (
                wal.writer.first_seq(),
                wal.writer.bytes(),
                format!("{:?}", wal.cfg.sync),
            )
        };
        let next_seq = self.shared.stats().ok()?.observations_applied + 1;
        Some(WalStateReport {
            segment_first_seq,
            next_seq,
            segment_bytes,
            sync_policy,
        })
    }

    fn interfaces(&self, q: &InterfaceQuery) -> Result<Vec<InterfaceRecord>, ProtoError> {
        self.shared.interfaces(q)
    }

    fn gateways(&self) -> Result<Vec<GatewayRecord>, ProtoError> {
        self.shared.gateways()
    }

    fn subnets(&self, q: &SubnetQuery) -> Result<Vec<SubnetRecord>, ProtoError> {
        self.shared.subnets(q)
    }

    fn delete(&self, id: InterfaceId) -> Result<bool, ProtoError> {
        // Deletions are not observations, so they can't ride the WAL;
        // persist them by snapshotting the post-delete state.
        // fremont-lint: allow(lock-order) -- same WAL-before-journal order as store(); held across the compaction IO
        let mut wal = self.wal.lock();
        let existed = self.shared.write(|j| j.delete_interface_shared(id));
        if existed {
            self.compact_locked(&mut wal).map_err(io_err)?;
        }
        Ok(existed)
    }

    fn stats(&self) -> Result<JournalStats, ProtoError> {
        self.shared.stats()
    }

    fn capture_snapshot(&self) -> Result<JournalSnapshot, ProtoError> {
        self.shared.capture_snapshot()
    }

    fn flush(&self) -> Result<bool, ProtoError> {
        self.compact().map_err(io_err)?;
        Ok(true)
    }

    fn batch_groups_total(&self) -> Option<u64> {
        self.shared.batch_groups_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_journal::observation::Source;
    use std::net::Ipv4Addr;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("fremont-durable-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn obs(i: u8) -> Observation {
        Observation::arp_pair(
            Source::ArpWatch,
            Ipv4Addr::new(10, 1, 0, i),
            fremont_net::MacAddr::new([8, 0, 0x20, 0, 1, i]),
        )
    }

    #[test]
    fn fresh_dir_round_trips_across_reopen() {
        let dir = tmp("reopen");
        let cfg = WalConfig::new(&dir);
        {
            let (dj, report) = DurableJournal::open(cfg.clone()).unwrap();
            assert!(!report.snapshot_loaded);
            for i in 1..=10 {
                dj.store(JTime(i as u64), &[obs(i)]).unwrap();
            }
            assert_eq!(dj.stats().unwrap().interfaces, 10);
            // No shutdown snapshot: drop without compacting.
        }
        let (dj, report) = DurableJournal::open(cfg).unwrap();
        assert_eq!(report.records_replayed, 10);
        assert_eq!(dj.stats().unwrap().interfaces, 10);
        assert_eq!(dj.stats().unwrap().observations_applied, 10);
        dj.shared().read(|j| j.check_invariants()).unwrap();
    }

    #[test]
    fn rotation_compacts_and_prunes() {
        let dir = tmp("rotate");
        let mut cfg = WalConfig::new(&dir);
        cfg.max_segment_bytes = 512; // force frequent rotation
        let (dj, _) = DurableJournal::open(cfg.clone()).unwrap();
        for i in 1..=40 {
            dj.store(JTime(i as u64), &[obs((i % 200) as u8)]).unwrap();
        }
        // Rotation keeps exactly one (current) segment alive.
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert!(cfg.snapshot_path().exists());
        // And the snapshot+tail still reproduces the full state.
        drop(dj);
        let (dj, _) = DurableJournal::open(cfg).unwrap();
        assert_eq!(dj.stats().unwrap().observations_applied, 40);
    }

    #[test]
    fn torn_tail_loses_only_the_tail() {
        let dir = tmp("torn");
        let cfg = WalConfig::new(&dir);
        {
            let (dj, _) = DurableJournal::open(cfg.clone()).unwrap();
            for i in 1..=6 {
                dj.store(JTime(i as u64), &[obs(i)]).unwrap();
            }
        }
        // Crash simulation: truncate the live segment mid-record.
        let seg = &list_segments(&dir).unwrap()[0];
        let data = std::fs::read(&seg.path).unwrap();
        std::fs::write(&seg.path, &data[..data.len() - 11]).unwrap();
        let (dj, report) = DurableJournal::open(cfg).unwrap();
        assert_eq!(report.records_replayed, 5);
        assert!(report.torn_bytes_dropped > 0);
        assert_eq!(dj.stats().unwrap().interfaces, 5);
        dj.shared().read(|j| j.check_invariants()).unwrap();
    }

    #[test]
    fn delete_survives_restart() {
        let dir = tmp("delete");
        let cfg = WalConfig::new(&dir);
        {
            let (dj, _) = DurableJournal::open(cfg.clone()).unwrap();
            for i in 1..=4 {
                dj.store(JTime(i as u64), &[obs(i)]).unwrap();
            }
            let recs = dj.interfaces(&InterfaceQuery::all()).unwrap();
            assert!(dj.delete(recs[0].id).unwrap());
            assert_eq!(dj.stats().unwrap().interfaces, 3);
        }
        let (dj, _) = DurableJournal::open(cfg).unwrap();
        assert_eq!(dj.stats().unwrap().interfaces, 3, "deletion resurrected");
    }

    #[test]
    fn store_batch_costs_one_fsync_and_survives_restart() {
        let dir = tmp("batch-fsync");
        let (tel, rec) = fremont_telemetry::Telemetry::recording();
        let cfg = WalConfig::grouped(&dir, 8);
        {
            let (dj, _) = DurableJournal::open_with_telemetry(cfg.clone(), tel).unwrap();
            // 64 observations across 4 timestamped items, group commit
            // every 8 appends: the batched path pays ONE fsync where
            // the one-at-a-time path would have paid 8.
            let batches: Vec<StoreBatchItem> = (0..4)
                .map(|b| StoreBatchItem {
                    now: JTime(b + 1),
                    observations: (0..16).map(|h| obs((b * 16 + h) as u8 + 1)).collect(),
                })
                .collect();
            let summary = dj.store_batch(&batches).unwrap();
            assert_eq!(summary.created, 64);
            assert_eq!(rec.counter("fremont_wal_appends_total", ""), 64);
            assert_eq!(
                rec.counter("fremont_wal_fsyncs_total", ""),
                1,
                "one group, one fsync"
            );
            assert_eq!(dj.stats().unwrap().observations_applied, 64);
        }
        // Every observation of the batch was logged ahead of apply.
        let (dj, report) = DurableJournal::open(cfg).unwrap();
        assert!(report.records_replayed + report.watermark >= 64);
        assert_eq!(dj.stats().unwrap().observations_applied, 64);
        dj.shared().read(|j| j.check_invariants()).unwrap();
    }

    #[test]
    fn flush_makes_group_commit_durable() {
        let dir = tmp("flush");
        let cfg = WalConfig::grouped(&dir, 64);
        {
            let (dj, _) = DurableJournal::open(cfg.clone()).unwrap();
            for i in 1..=5 {
                dj.store(JTime(i as u64), &[obs(i)]).unwrap();
            }
            assert!(dj.flush().unwrap());
        }
        let (dj, report) = DurableJournal::open(cfg).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(dj.stats().unwrap().interfaces, 5);
    }

    #[test]
    fn traced_store_emits_balanced_wal_spans() {
        let dir = tmp("traced-spans");
        let (tel, rec) = fremont_telemetry::Telemetry::recording();
        let (dj, _) =
            DurableJournal::open_with_telemetry(WalConfig::new(&dir), tel.clone()).unwrap();
        let parent = tel.span_start("driver.drain", "", SpanId::NONE, TelTime(5));
        let batches = vec![StoreBatchItem {
            now: JTime(1),
            observations: vec![obs(1), obs(2)],
        }];
        dj.store_batch_traced(&batches, parent, TelTime(5)).unwrap();
        tel.span_end(parent, "", TelTime(5));
        let events = fremont_telemetry::trace::parse_jsonl(&rec.trace_jsonl()).unwrap();
        fremont_telemetry::trace::validate(&events).unwrap();
        let append = events
            .iter()
            .find(|e| e.kind == "span_start" && e.name == "wal.append")
            .expect("wal.append span");
        assert_eq!(append.parent, parent.0);
        let fsync = events
            .iter()
            .find(|e| e.kind == "span_start" && e.name == "wal.fsync")
            .expect("wal.fsync span (SyncPolicy::Always)");
        assert_eq!(fsync.parent, parent.0);
        let bytes = events
            .iter()
            .find(|e| e.kind == "work" && e.name == "bytes" && e.id == append.id)
            .expect("bytes work attribution");
        assert!(bytes.detail.parse::<u64>().unwrap() > 0);
        let observations = events
            .iter()
            .find(|e| e.kind == "work" && e.name == "observations" && e.id == append.id)
            .expect("observations work attribution");
        assert_eq!(observations.detail, "2");
    }

    #[test]
    fn untraced_store_emits_no_spans() {
        let dir = tmp("untraced");
        let (tel, rec) = fremont_telemetry::Telemetry::recording();
        let (dj, _) = DurableJournal::open_with_telemetry(WalConfig::new(&dir), tel).unwrap();
        let after_open = rec.trace_len(); // recovery emits one event
        dj.store(JTime(1), &[obs(1)]).unwrap();
        assert_eq!(
            rec.trace_len(),
            after_open,
            "untraced writes stay span-free"
        );
        assert_eq!(rec.counter("fremont_wal_appends_total", ""), 1);
    }

    #[test]
    fn wal_state_reflects_segment_and_seq() {
        let dir = tmp("wal-state");
        let (dj, _) = DurableJournal::open(WalConfig::new(&dir)).unwrap();
        let st = dj.wal_state().unwrap();
        assert_eq!(st.segment_first_seq, 1);
        assert_eq!(st.next_seq, 1);
        assert_eq!(st.segment_bytes, 0);
        assert_eq!(st.sync_policy, "Always");
        for i in 1..=3 {
            dj.store(JTime(i), &[obs(i as u8)]).unwrap();
        }
        let st = dj.wal_state().unwrap();
        assert_eq!(st.segment_first_seq, 1);
        assert_eq!(st.next_seq, 4);
        assert!(st.segment_bytes > 0);
        dj.compact().unwrap();
        let st = dj.wal_state().unwrap();
        assert_eq!(st.segment_first_seq, 4, "rotation starts a fresh segment");
        assert_eq!(st.segment_bytes, 0);
    }

    #[test]
    fn snapshot_watermark_skips_replayed_records() {
        let dir = tmp("watermark");
        let cfg = WalConfig::new(&dir);
        {
            let (dj, _) = DurableJournal::open(cfg.clone()).unwrap();
            for i in 1..=3 {
                dj.store(JTime(i as u64), &[obs(i)]).unwrap();
            }
            dj.compact().unwrap(); // snapshot covers 1..=3
            for i in 4..=6 {
                dj.store(JTime(i as u64), &[obs(i)]).unwrap();
            }
        }
        let (dj, report) = DurableJournal::open(cfg).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.watermark, 3);
        assert_eq!(report.records_replayed, 3);
        assert_eq!(dj.stats().unwrap().observations_applied, 6);
    }
}
