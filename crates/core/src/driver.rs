//! The Discovery Manager driver: runs Explorer Modules on the simulated
//! network, pumps their observations into the Journal, and adapts the
//! schedule.
//!
//! In the paper's deployment the Discovery Manager forks module processes
//! on UNIX hosts and they talk to the Journal Server over BSD sockets;
//! here the driver spawns module [`fremont_netsim::process::Process`]es on a simulated host and
//! forwards their observations to a [`SharedJournal`], preserving the
//! architecture's roles: modules only observe, the Journal stores and
//! timestamps, and the manager decides what runs next based on Journal
//! contents.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::path::PathBuf;

use fremont_explorers::{
    ArpWatch, ArpWatchConfig, BrdcastPing, BrdcastPingConfig, DnsExplorer, DnsExplorerConfig,
    EtherHostProbe, EtherHostProbeConfig, RipWatch, RipWatchConfig, SeqPing, SeqPingConfig,
    SubnetMasks, SubnetMasksConfig, Traceroute, TracerouteConfig,
};
use fremont_journal::client::RemoteJournal;
use fremont_journal::observation::{Observation, Source};
use fremont_journal::proto::StoreBatchItem;
use fremont_journal::query::{InterfaceQuery, SubnetQuery};
use fremont_journal::server::{JournalAccess, SharedJournal};
use fremont_journal::snapshot::JournalSnapshot;
use fremont_journal::store::StoreSummary;
use fremont_net::Subnet;
use fremont_netsim::engine::Sim;
use fremont_netsim::process::ProcHandle;
use fremont_netsim::segment::NodeId;
use fremont_netsim::time::{SimDuration, SimTime};
use fremont_storage::{DurableJournal, PersistencePolicy, RecoveryReport};
use fremont_telemetry::{SpanId, TelTime, Telemetry};

use crate::correlate::correlate;
use crate::load::{ModuleLoad, ModuleLoadReport};
use crate::manager::{DiscoveryManager, RunOutcome};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Modules the manager may run (default: all eight).
    pub enabled: Vec<Source>,
    /// The network under exploration (bounds traceroute and DNS).
    pub network: Subnet,
    /// The campus name server (for the DNS module).
    pub dns_server: Option<Ipv4Addr>,
    /// How often the driver pumps observations and re-plans, in sim time.
    pub pump_interval: SimDuration,
    /// Run the cross-correlation pass after each pump.
    pub correlate: bool,
    /// How the Journal persists across restarts (see
    /// [`DiscoveryDriver::open`]; `new` always runs in memory).
    pub persistence: PersistencePolicy,
    /// Telemetry sink handle, threaded into the simulator and the
    /// persistence backend (default: no-op).
    pub telemetry: Telemetry,
    /// Hard cap on a single module run in sim time. A module still
    /// running past this is forcibly retired at the next pump — its
    /// observations so far are kept — so a wedged probe (dead gateway,
    /// partitioned segment) degrades discovery instead of stopping it.
    /// `None` (the default) never times out.
    pub max_module_runtime: Option<SimDuration>,
    /// Address of a remote Journal Server (`host:port`). When set,
    /// [`DiscoveryDriver::open`] writes through: every batch is applied
    /// to the local in-memory journal (the authoritative, deterministic
    /// replica the manager plans from) *and* shipped over TCP, with the
    /// driver's trace context propagated in each frame. Overrides
    /// `persistence`.
    pub remote_journal: Option<String>,
    /// Distributed trace id stamped on remote stores (0 disables
    /// propagation). Only meaningful with `remote_journal`.
    pub trace_id: u64,
}

impl DriverConfig {
    /// All modules over a network.
    pub fn full(network: Subnet, dns_server: Option<Ipv4Addr>) -> Self {
        DriverConfig {
            enabled: Source::EXPLORERS.to_vec(),
            network,
            dns_server,
            pump_interval: SimDuration::from_secs(30),
            correlate: true,
            persistence: PersistencePolicy::InMemory,
            telemetry: Telemetry::noop(),
            max_module_runtime: None,
            remote_journal: None,
            trace_id: 1,
        }
    }
}

/// The persistence backend behind the driver's journal handle.
enum Backend {
    /// State dies with the process.
    InMemory,
    /// The paper's scheme: a JSON snapshot written at flush points.
    Snapshot { path: PathBuf },
    /// WAL-backed: every stored observation is logged ahead of apply.
    Wal(DurableJournal),
    /// Write-through to a remote Journal Server: the local journal is
    /// the deterministic replica, the server gets a traced copy.
    Remote(RemoteJournal),
}

/// The running deployment: simulator + journal + manager.
pub struct DiscoveryDriver {
    /// The simulated network.
    pub sim: Sim,
    /// The shared Journal.
    pub journal: SharedJournal,
    /// The scheduling state.
    pub manager: DiscoveryManager,
    /// What recovery found when the driver was [`DiscoveryDriver::open`]ed
    /// over a WAL directory (`None` for in-memory/snapshot deployments).
    pub recovery: Option<RecoveryReport>,
    cfg: DriverConfig,
    home: NodeId,
    backend: Backend,
    running: HashMap<Source, RunningModule>,
    loads: BTreeMap<Source, ModuleLoad>,
    pump_cycle: u64,
    module_timeouts: u64,
}

/// Book-keeping for one in-flight module run.
struct RunningModule {
    handle: ProcHandle,
    stored: StoreSummary,
    started: SimTime,
}

impl DiscoveryDriver {
    /// Creates a driver running modules on `home`, storing into the
    /// given in-memory journal (ignores `cfg.persistence`; use
    /// [`DiscoveryDriver::open`] for durable deployments).
    pub fn new(mut sim: Sim, journal: SharedJournal, home: NodeId, cfg: DriverConfig) -> Self {
        sim.set_telemetry(cfg.telemetry.clone());
        let driver = DiscoveryDriver {
            sim,
            journal,
            manager: DiscoveryManager::new(),
            recovery: None,
            cfg,
            home,
            backend: Backend::InMemory,
            running: HashMap::new(),
            loads: BTreeMap::new(),
            pump_cycle: 0,
            module_timeouts: 0,
        };
        driver.publish_startup();
        driver
    }

    /// Creates a driver whose journal persists per `cfg.persistence`:
    /// a WAL directory is recovered (snapshot + log replay) and every
    /// subsequent observation is logged before it is applied; a
    /// snapshot path is loaded if present and rewritten at flush
    /// points; in-memory starts empty.
    pub fn open(mut sim: Sim, home: NodeId, cfg: DriverConfig) -> std::io::Result<Self> {
        sim.set_telemetry(cfg.telemetry.clone());
        if let Some(addr) = &cfg.remote_journal {
            let client = RemoteJournal::connect_traced(addr, cfg.telemetry.clone(), cfg.trace_id)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            let driver = DiscoveryDriver {
                sim,
                journal: SharedJournal::new(),
                manager: DiscoveryManager::new(),
                recovery: None,
                cfg,
                home,
                backend: Backend::Remote(client),
                running: HashMap::new(),
                loads: BTreeMap::new(),
                pump_cycle: 0,
                module_timeouts: 0,
            };
            driver.publish_startup();
            return Ok(driver);
        }
        let (journal, backend, recovery) = match &cfg.persistence {
            PersistencePolicy::InMemory => (SharedJournal::new(), Backend::InMemory, None),
            PersistencePolicy::SnapshotOnly { path } => {
                let journal = if path.exists() {
                    SharedJournal::from_journal(JournalSnapshot::load(path)?.restore())
                } else {
                    SharedJournal::new()
                };
                (journal, Backend::Snapshot { path: path.clone() }, None)
            }
            PersistencePolicy::Wal(wal_cfg) => {
                // Recovery publishes its report into the sink itself.
                let (durable, report) =
                    DurableJournal::open_with_telemetry(wal_cfg.clone(), cfg.telemetry.clone())?;
                let journal = durable.shared().clone();
                (journal, Backend::Wal(durable), Some(report))
            }
        };
        let driver = DiscoveryDriver {
            sim,
            journal,
            manager: DiscoveryManager::new(),
            recovery,
            cfg,
            home,
            backend,
            running: HashMap::new(),
            loads: BTreeMap::new(),
            pump_cycle: 0,
            module_timeouts: 0,
        };
        driver.publish_startup();
        Ok(driver)
    }

    /// Startup telemetry dump: the journal's opening statistics (what
    /// persistence restored) plus, for WAL deployments, the recovery
    /// report — previously these were constructed and dropped silently.
    fn publish_startup(&self) {
        let tel = &self.cfg.telemetry;
        if !tel.enabled() {
            return;
        }
        if let Ok(stats) = self.journal.stats() {
            fremont_journal::server::publish_journal_stats(tel, &stats);
            let detail = format!(
                "interfaces={} gateways={} subnets={} observations_applied={}",
                stats.interfaces, stats.gateways, stats.subnets, stats.observations_applied
            );
            tel.event(
                "driver.startup",
                &detail,
                SpanId::NONE,
                TelTime(self.sim.now().as_micros()),
            );
        }
        if let Some(report) = &self.recovery {
            // Re-publish through the shared helper so in-memory sinks
            // attached after `DurableJournal::open` still see it.
            fremont_storage::publish_recovery(tel, report);
        }
    }

    /// Stores a batched request through the persistence backend: the
    /// in-memory journal applies the whole group under one write-lock
    /// acquisition, and WAL deployments log the whole group ahead of
    /// apply with at most one fsync.
    ///
    /// With a real `parent` span, the backend's leg of the work joins
    /// the pump's trace: WAL deployments emit `wal.append`/`wal.fsync`
    /// children, remote deployments open a `client.store_batch` span
    /// whose context rides in the frame to the server.
    fn store_batched(
        &self,
        batches: &[StoreBatchItem],
        parent: SpanId,
        at: TelTime,
    ) -> StoreSummary {
        match &self.backend {
            Backend::Wal(durable) => durable
                .store_batch_traced(batches, parent, at)
                .unwrap_or_default(),
            Backend::Remote(client) => {
                // The local replica is authoritative: its summary (and
                // the planning reads against it) stay deterministic even
                // if the remote side drops the connection mid-batch.
                let summary = self.journal.store_batch(batches).unwrap_or_default();
                if client.store_batch_traced(batches, parent, at).is_err() {
                    self.cfg
                        .telemetry
                        .counter_add("fremont_driver_remote_errors_total", "", 1);
                }
                summary
            }
            _ => self.journal.store_batch(batches).unwrap_or_default(),
        }
    }

    /// Makes the journal durable at the configured persistence level:
    /// WAL deployments compact (durable snapshot + fresh segment),
    /// snapshot deployments rewrite their snapshot file, in-memory is a
    /// no-op. Called automatically at the end of [`Self::run_for`].
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.backend {
            Backend::InMemory => Ok(()),
            Backend::Snapshot { path } => self.journal.read(JournalSnapshot::capture).save(path),
            Backend::Wal(durable) => durable.compact(),
            Backend::Remote(client) => client
                .flush()
                .map_err(|e| std::io::Error::other(e.to_string())),
        }
    }

    /// Runs the deployment for a span of simulated time, then flushes
    /// the journal to disk (for durable persistence policies). The error
    /// is the flush failing: exploration itself has already happened and
    /// its results are in memory, but durability was not achieved.
    pub fn run_for(&mut self, duration: SimDuration) -> std::io::Result<()> {
        let deadline = self.sim.now() + duration;
        // Plan immediately so due modules start at the beginning of the
        // span rather than one pump interval in.
        self.pump();
        while self.sim.now() < deadline {
            let slice = self.cfg.pump_interval.min(deadline - self.sim.now());
            self.sim.run_for(slice);
            self.pump();
        }
        self.flush()
    }

    /// One pump: drain observations, retire finished modules, start due
    /// ones, cross-correlate. With telemetry attached, each pump emits
    /// a span tree (`driver.pump` with one child per phase); all spans
    /// carry the same sim timestamp — a pump is instantaneous in
    /// simulated time — so phase "timing" is reported as logical work
    /// counts in the span end details.
    pub fn pump(&mut self) {
        self.pump_cycle += 1;
        let tel = self.cfg.telemetry.clone();
        let at = TelTime(self.sim.now().as_micros());
        let root = if tel.enabled() {
            tel.span_start(
                "driver.pump",
                &format!("cycle={}", self.pump_cycle),
                SpanId::NONE,
                at,
            )
        } else {
            SpanId::NONE
        };

        // 1. Observations → Journal, attributed to their emitting module.
        // Consecutive observations from the same module travel as one
        // batched store (one write-lock acquisition, at most one fsync)
        // while keeping the exact drain order and per-module summary
        // attribution of the one-at-a-time path.
        let drain_span = tel.span_start("driver.drain", "", root, at);
        let drained = self.sim.drain_observations();
        let had_news = !drained.is_empty();
        let drained_count = drained.len();
        let groups = group_drained(drained);
        let batch_count = groups.len();
        let mut merged = 0u64;
        for (handle, batches) in &groups {
            let summary = self.store_batched(batches, drain_span, at);
            merged += (summary.created + summary.updated + summary.verified) as u64;
            if let Some(m) = self.running.values_mut().find(|m| m.handle == *handle) {
                m.stored.absorb(summary);
            }
        }
        if tel.enabled() {
            tel.work(drain_span, "observations", drained_count as u64, at);
            tel.work(drain_span, "merge_ops", merged, at);
            tel.span_end(
                drain_span,
                &format!("observations={drained_count} batches={batch_count}"),
                at,
            );
        }

        // 2. Retire finished modules — and, when a runtime cap is set,
        // forcibly retire wedged ones so one unreachable target cannot
        // stall the whole schedule (graceful degradation under faults).
        let retire_span = tel.span_start("driver.retire", "", root, at);
        // Sort: `running` is a HashMap, and retirement order is visible
        // in the trace — it must not depend on hasher seeds.
        let now_sim = self.sim.now();
        let mut finished: Vec<(Source, bool)> = self
            .running
            .iter()
            .filter_map(|(s, m)| {
                if self.sim.process_done(m.handle) {
                    Some((*s, false))
                } else if self
                    .cfg
                    .max_module_runtime
                    .is_some_and(|cap| now_sim.since(m.started) > cap)
                {
                    Some((*s, true))
                } else {
                    None
                }
            })
            .collect();
        finished.sort();
        let retired_count = finished.len();
        for (source, timed_out) in finished {
            if timed_out {
                self.module_timeouts += 1;
                if tel.enabled() {
                    tel.event("module.timeout", source.name(), root, at);
                }
            }
            self.retire(source, at, root);
        }
        if tel.enabled() {
            tel.work(retire_span, "module_runs", retired_count as u64, at);
            tel.span_end(retire_span, &format!("retired={retired_count}"), at);
        }

        // 3. Start due modules.
        let start_span = tel.span_start("driver.schedule", "", root, at);
        let now = self.sim.now().to_jtime();
        let mut started_count = 0usize;
        for source in self.manager.due(now) {
            if !self.cfg.enabled.contains(&source) || self.running.contains_key(&source) {
                continue;
            }
            if let Some(handle) = self.spawn_module(source) {
                self.manager
                    .mark_started(source, now, self.deficit_for(source));
                self.track_start(source, handle);
                started_count += 1;
                if tel.enabled() {
                    tel.event("module.start", source.name(), root, at);
                }
            }
        }
        if tel.enabled() {
            tel.span_end(start_span, &format!("started={started_count}"), at);
        }

        // 4. Cross-correlate — only when the journal actually changed.
        if self.cfg.correlate && had_news {
            let corr_span = tel.span_start("driver.correlate", "", root, at);
            let derived = self.journal.read(correlate);
            let derived_count = derived.len();
            if !derived.is_empty() {
                let _ = self.store_batched(
                    &[StoreBatchItem {
                        now,
                        observations: derived,
                    }],
                    corr_span,
                    at,
                );
            }
            if tel.enabled() {
                tel.work(corr_span, "observations", derived_count as u64, at);
                tel.span_end(corr_span, &format!("derived={derived_count}"), at);
            }
        }

        if tel.enabled() {
            tel.span_end(root, "ok", at);
            self.publish_metrics();
        }
    }

    /// Starts load tracking for a freshly spawned module run.
    fn track_start(&mut self, source: Source, handle: ProcHandle) {
        self.loads.entry(source).or_default().runs += 1;
        self.running.insert(
            source,
            RunningModule {
                handle,
                stored: StoreSummary::default(),
                started: self.sim.now(),
            },
        );
    }

    /// Retires one running module: folds its per-process packet
    /// counters into the load table, kills the process, and records
    /// the run with the manager.
    fn retire(&mut self, source: Source, at: TelTime, parent: SpanId) {
        let Some(m) = self.running.remove(&source) else {
            return; // Listed from this very map; cannot miss.
        };
        let stats = self.sim.proc_stats(m.handle);
        let elapsed = self.sim.now().since(m.started);
        let load = self.loads.entry(source).or_default();
        load.completed_runs += 1;
        load.packets_sent += stats.packets_sent;
        load.packets_received += stats.packets_received;
        load.frames_tapped += stats.frames_tapped;
        load.busy = load.busy + elapsed;
        load.last_completion = Some(elapsed);
        self.sim.kill_process(m.handle);
        let tel = &self.cfg.telemetry;
        if tel.enabled() {
            let detail = format!(
                "{} sent={} recv={} tapped={} secs={:.0}",
                source.name(),
                stats.packets_sent,
                stats.packets_received,
                stats.frames_tapped,
                elapsed.as_secs_f64()
            );
            tel.event("module.retire", &detail, parent, at);
        }
        let deficit_after = self.deficit_for(source);
        self.manager.record_run(
            source,
            RunOutcome {
                stored: m.stored,
                deficit_after,
            },
        );
    }

    /// The Table 4 reproduction: measured per-module load, including
    /// still-running modules' live counters.
    pub fn load_report(&self) -> ModuleLoadReport {
        let mut loads = self.loads.clone();
        for (source, m) in &self.running {
            let stats = self.sim.proc_stats(m.handle);
            let elapsed = self.sim.now().since(m.started);
            let load = loads.entry(*source).or_default();
            load.packets_sent += stats.packets_sent;
            load.packets_received += stats.packets_received;
            load.frames_tapped += stats.frames_tapped;
            load.busy = load.busy + elapsed;
        }
        ModuleLoadReport::new(&loads)
    }

    /// Publishes sim counters, journal gauges, and per-module packet
    /// counters into the telemetry sink.
    pub fn publish_metrics(&self) {
        let tel = &self.cfg.telemetry;
        if !tel.enabled() {
            return;
        }
        self.sim.publish_metrics();
        if let Ok(stats) = self.journal.stats() {
            fremont_journal::server::publish_journal_stats(tel, &stats);
        }
        if let Some(sharding) = self.journal.sharding_metrics() {
            fremont_journal::server::publish_sharding_metrics(tel, &sharding);
        }
        if let Some(groups) = self.journal.batch_groups_total() {
            tel.counter_set("fremont_journal_shard_batch_groups_total", "", groups);
        }
        let report = self.load_report();
        for row in &report.rows {
            let label = format!("module=\"{}\"", row.source.name());
            tel.counter_set(
                "fremont_module_packets_sent_total",
                &label,
                row.load.packets_sent,
            );
            tel.counter_set(
                "fremont_module_packets_received_total",
                &label,
                row.load.packets_received,
            );
            tel.counter_set(
                "fremont_module_frames_tapped_total",
                &label,
                row.load.frames_tapped,
            );
            tel.counter_set("fremont_module_runs_total", &label, row.load.runs);
        }
        // Gated on the cap being configured so deployments that never
        // opt in keep a byte-identical exposition.
        if self.cfg.max_module_runtime.is_some() {
            tel.counter_set("fremont_module_timeouts_total", "", self.module_timeouts);
        }
    }

    /// How many module runs the driver has forcibly retired for
    /// exceeding [`DriverConfig::max_module_runtime`].
    pub fn module_timeouts(&self) -> u64 {
        self.module_timeouts
    }

    /// Sets the module runtime cap after construction — chaos tests and
    /// deployments built through [`crate::fremont::Fremont`] (whose
    /// config is assembled internally) opt in here.
    pub fn set_max_module_runtime(&mut self, cap: Option<SimDuration>) {
        self.cfg.max_module_runtime = cap;
    }

    /// The unmet-need metric the manager tracks per module.
    fn deficit_for(&self, source: Source) -> Option<u64> {
        match source {
            Source::SubnetMasks => {
                let q = InterfaceQuery {
                    missing_mask: Some(true),
                    ..Default::default()
                };
                Some(
                    self.journal
                        .interfaces(&q)
                        .map(|v| v.len() as u64)
                        .unwrap_or(0),
                )
            }
            Source::Traceroute => {
                // Subnets with no known gateway.
                let q = SubnetQuery {
                    has_gateway: Some(false),
                    within: Some(self.cfg.network),
                    ..Default::default()
                };
                Some(
                    self.journal
                        .subnets(&q)
                        .map(|v| v.len() as u64)
                        .unwrap_or(0),
                )
            }
            _ => None,
        }
    }

    /// The local subnet of the module host.
    fn home_subnet(&self) -> Subnet {
        self.sim.nodes[self.home.0].ifaces[0].subnet()
    }

    /// Known subnets inside the explored network — "the data collected
    /// from RIP packets provide strong indications about the existence of
    /// specific other networks and subnets. This information is used by
    /// the traceroute Explorer Module."
    fn known_subnets(&self) -> Vec<Subnet> {
        let q = SubnetQuery {
            within: Some(self.cfg.network),
            ..Default::default()
        };
        self.journal
            .subnets(&q)
            .map(|v| v.into_iter().map(|r| r.subnet).collect())
            .unwrap_or_default()
    }

    fn spawn_module(&mut self, source: Source) -> Option<ProcHandle> {
        let home = self.home;
        let local = self.home_subnet();
        let handle = match source {
            Source::ArpWatch => self
                .sim
                .spawn(home, Box::new(ArpWatch::new(ArpWatchConfig::default()))),
            Source::EtherHostProbe => self.sim.spawn(
                home,
                Box::new(EtherHostProbe::new(EtherHostProbeConfig::over(
                    local.host_range(),
                ))),
            ),
            Source::SeqPing => self.sim.spawn(
                home,
                Box::new(SeqPing::new(SeqPingConfig::over(local.host_range()))),
            ),
            Source::BrdcastPing => {
                let mut subnets = self.known_subnets();
                if subnets.is_empty() {
                    subnets.push(local);
                }
                self.sim.spawn(
                    home,
                    Box::new(BrdcastPing::new(BrdcastPingConfig::over(subnets))),
                )
            }
            Source::SubnetMasks => {
                let q = InterfaceQuery {
                    missing_mask: Some(true),
                    ..Default::default()
                };
                let targets: Vec<Ipv4Addr> = self
                    .journal
                    .interfaces(&q)
                    .unwrap_or_default()
                    .into_iter()
                    .filter_map(|r| r.ip_addr())
                    .collect();
                if targets.is_empty() {
                    return None; // Nothing to ask yet.
                }
                self.sim.spawn(
                    home,
                    Box::new(SubnetMasks::new(SubnetMasksConfig::over(targets))),
                )
            }
            Source::Traceroute => {
                let mut subnets = self.known_subnets();
                subnets.retain(|s| *s != local);
                if subnets.is_empty() {
                    return None; // No clues yet; RIPwatch/DNS go first.
                }
                let mut cfg = TracerouteConfig::over(subnets);
                cfg.boundary = Some(self.cfg.network);
                self.sim.spawn(home, Box::new(Traceroute::new(cfg)))
            }
            Source::RipWatch => self
                .sim
                .spawn(home, Box::new(RipWatch::new(RipWatchConfig::default()))),
            Source::Dns => {
                let server = self.cfg.dns_server?;
                self.sim.spawn(
                    home,
                    Box::new(DnsExplorer::new(DnsExplorerConfig::new(
                        self.cfg.network,
                        server,
                    ))),
                )
            }
            Source::Manager => return None,
        };
        Some(handle)
    }

    /// Convenience access for experiments: run one specific module to
    /// completion (or until `timeout`), pumping observations; other
    /// scheduling is suspended. Returns the accumulated store summary.
    pub fn run_single(
        &mut self,
        source: Source,
        timeout: SimDuration,
    ) -> Option<(ProcHandle, StoreSummary)> {
        let handle = self.spawn_module(source)?;
        self.track_start(source, handle);
        self.manager
            .mark_started(source, self.sim.now().to_jtime(), None);
        let deadline = self.sim.now() + timeout;
        while self.sim.now() < deadline {
            let slice = self.cfg.pump_interval.min(deadline - self.sim.now());
            self.sim.run_for(slice);
            // Pump observations only (no new spawns), batched like pump().
            let at = TelTime(self.sim.now().as_micros());
            let groups = group_drained(self.sim.drain_observations());
            for (h, batches) in &groups {
                let s = self.store_batched(batches, SpanId::NONE, at);
                if *h == handle {
                    if let Some(m) = self.running.get_mut(&source) {
                        m.stored.absorb(s);
                    }
                }
            }
            if self.sim.process_done(handle) {
                break;
            }
        }
        let stored = self.running.get(&source).map(|m| m.stored)?;
        // Retire the process like pump() does, so its taps and timer chain
        // do not linger in the simulator.
        let at = TelTime(self.sim.now().as_micros());
        self.retire(source, at, SpanId::NONE);
        if self.cfg.telemetry.enabled() {
            self.publish_metrics();
        }
        Some((handle, stored))
    }
}

/// Groups a drain in order: consecutive observations from the same
/// module form one store group, and within a group consecutive
/// observations at the same sim time share one [`StoreBatchItem`].
/// Apply order and per-module attribution are exactly those of
/// storing one observation at a time.
fn group_drained(
    drained: Vec<(ProcHandle, SimTime, Observation)>,
) -> Vec<(ProcHandle, Vec<StoreBatchItem>)> {
    let mut groups: Vec<(ProcHandle, Vec<StoreBatchItem>)> = Vec::new();
    for (handle, obs_at, obs) in drained {
        let now = obs_at.to_jtime();
        match groups.last_mut() {
            Some((h, batches)) if *h == handle => match batches.last_mut() {
                Some(b) if b.now == now => b.observations.push(obs),
                _ => batches.push(StoreBatchItem {
                    now,
                    observations: vec![obs],
                }),
            },
            _ => groups.push((
                handle,
                vec![StoreBatchItem {
                    now,
                    observations: vec![obs],
                }],
            )),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_netsim::builder::TopologyBuilder;

    fn small_world() -> (Sim, NodeId, Subnet) {
        let mut b = TopologyBuilder::new();
        let a = b.segment("net-a", "10.5.1.0/26");
        let c = b.segment("net-c", "10.5.2.0/26");
        b.host("probe", a, 10);
        b.host("other", a, 11);
        b.host("far", c, 10);
        b.router("gw", &[(a, 1), (c, 1)]);
        let (sim, topo) = b.build(77);
        let home = topo.nodes_by_name["probe"];
        (sim, home, "10.5.0.0/16".parse().unwrap())
    }

    #[test]
    fn run_single_seqping_populates_journal() {
        let (sim, home, network) = small_world();
        let journal = SharedJournal::new();
        let mut driver = DiscoveryDriver::new(
            sim,
            journal.clone(),
            home,
            DriverConfig::full(network, None),
        );
        let (_, stored) = driver
            .run_single(Source::SeqPing, SimDuration::from_mins(20))
            .unwrap();
        assert!(stored.created >= 2, "{stored:?}");
        let stats = journal.stats().unwrap();
        assert!(stats.interfaces >= 2);
    }

    #[test]
    fn full_cycle_discovers_and_correlates() {
        let (sim, home, network) = small_world();
        let journal = SharedJournal::new();
        let mut driver = DiscoveryDriver::new(
            sim,
            journal.clone(),
            home,
            DriverConfig::full(network, None),
        );
        // One simulated hour: RIPwatch hears the router, traceroute maps
        // the far subnet, pings find hosts, masks arrive, correlation
        // builds the gateway.
        driver.run_for(SimDuration::from_hours(1)).unwrap();
        let stats = journal.stats().unwrap();
        assert!(stats.interfaces >= 3, "{stats:?}");
        assert!(stats.subnets >= 2, "{stats:?}");
        let gws = journal.gateways().unwrap();
        assert!(!gws.is_empty(), "gateway discovered through correlation");
        // Both subnets are known.
        let subs = journal.subnets(&SubnetQuery::all()).unwrap();
        let names: Vec<String> = subs.iter().map(|s| s.subnet.to_string()).collect();
        assert!(names.contains(&"10.5.1.0/26".to_owned()), "{names:?}");
        assert!(names.contains(&"10.5.2.0/26".to_owned()), "{names:?}");
        // The schedule recorded completed runs.
        assert!(driver.manager.schedule(Source::SeqPing).unwrap().runs >= 1);
        assert!(driver.manager.schedule(Source::RipWatch).unwrap().runs >= 1);
        journal.read(|j| j.check_invariants()).unwrap();
    }

    #[test]
    fn traceroute_waits_for_clues() {
        let (sim, home, network) = small_world();
        let journal = SharedJournal::new();
        let mut driver = DiscoveryDriver::new(
            sim,
            journal.clone(),
            home,
            DriverConfig {
                enabled: vec![Source::Traceroute],
                ..DriverConfig::full(network, None)
            },
        );
        driver.pump();
        // With an empty journal there are no target subnets: nothing runs.
        assert!(!driver.manager.is_running(Source::Traceroute));
    }

    #[test]
    fn wal_persistence_survives_restart() {
        let dir = std::env::temp_dir().join("fremont-driver-wal-test");
        let _ = std::fs::remove_dir_all(&dir);
        let (sim, home, network) = small_world();
        let mut cfg = DriverConfig::full(network, None);
        cfg.persistence = PersistencePolicy::Wal(fremont_storage::WalConfig::new(&dir));
        let mut driver = DiscoveryDriver::open(sim, home, cfg.clone()).unwrap();
        assert_eq!(driver.recovery.as_ref().unwrap().records_replayed, 0);
        driver.run_for(SimDuration::from_hours(1)).unwrap();
        let before = driver.journal.stats().unwrap();
        assert!(before.interfaces >= 3, "{before:?}");
        drop(driver);

        // Restart over the same directory with a fresh simulator: the
        // recovered journal must report the same discovered world.
        let (sim2, home2, _) = small_world();
        let driver2 = DiscoveryDriver::open(sim2, home2, cfg).unwrap();
        let after = driver2.journal.stats().unwrap();
        assert_eq!(before.interfaces, after.interfaces);
        assert_eq!(before.gateways, after.gateways);
        assert_eq!(before.subnets, after.subnets);
        assert_eq!(before.observations_applied, after.observations_applied);
        driver2.journal.read(|j| j.check_invariants()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_only_persistence_loads_at_open() {
        let dir = std::env::temp_dir().join("fremont-driver-snap-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.json");
        let (sim, home, network) = small_world();
        let mut cfg = DriverConfig::full(network, None);
        cfg.persistence = PersistencePolicy::SnapshotOnly { path: path.clone() };
        let mut driver = DiscoveryDriver::open(sim, home, cfg.clone()).unwrap();
        driver.run_for(SimDuration::from_mins(10)).unwrap();
        let before = driver.journal.stats().unwrap();
        drop(driver);
        assert!(path.exists(), "run_for flushes the snapshot");

        let (sim2, home2, _) = small_world();
        let driver2 = DiscoveryDriver::open(sim2, home2, cfg).unwrap();
        assert_eq!(driver2.journal.stats().unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
