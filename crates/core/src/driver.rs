//! The Discovery Manager driver: runs Explorer Modules on the simulated
//! network, pumps their observations into the Journal, and adapts the
//! schedule.
//!
//! In the paper's deployment the Discovery Manager forks module processes
//! on UNIX hosts and they talk to the Journal Server over BSD sockets;
//! here the driver spawns module [`fremont_netsim::process::Process`]es on a simulated host and
//! forwards their observations to a [`SharedJournal`], preserving the
//! architecture's roles: modules only observe, the Journal stores and
//! timestamps, and the manager decides what runs next based on Journal
//! contents.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::path::PathBuf;

use fremont_explorers::{
    ArpWatch, ArpWatchConfig, BrdcastPing, BrdcastPingConfig, DnsExplorer, DnsExplorerConfig,
    EtherHostProbe, EtherHostProbeConfig, RipWatch, RipWatchConfig, SeqPing, SeqPingConfig,
    SubnetMasks, SubnetMasksConfig, Traceroute, TracerouteConfig,
};
use fremont_journal::observation::{Observation, Source};
use fremont_journal::query::{InterfaceQuery, SubnetQuery};
use fremont_journal::server::{JournalAccess, SharedJournal};
use fremont_journal::snapshot::JournalSnapshot;
use fremont_journal::store::StoreSummary;
use fremont_net::Subnet;
use fremont_netsim::engine::Sim;
use fremont_netsim::process::ProcHandle;
use fremont_netsim::segment::NodeId;
use fremont_netsim::time::SimDuration;
use fremont_storage::{DurableJournal, PersistencePolicy, RecoveryReport};

use crate::correlate::correlate;
use crate::manager::{DiscoveryManager, RunOutcome};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Modules the manager may run (default: all eight).
    pub enabled: Vec<Source>,
    /// The network under exploration (bounds traceroute and DNS).
    pub network: Subnet,
    /// The campus name server (for the DNS module).
    pub dns_server: Option<Ipv4Addr>,
    /// How often the driver pumps observations and re-plans, in sim time.
    pub pump_interval: SimDuration,
    /// Run the cross-correlation pass after each pump.
    pub correlate: bool,
    /// How the Journal persists across restarts (see
    /// [`DiscoveryDriver::open`]; `new` always runs in memory).
    pub persistence: PersistencePolicy,
}

impl DriverConfig {
    /// All modules over a network.
    pub fn full(network: Subnet, dns_server: Option<Ipv4Addr>) -> Self {
        DriverConfig {
            enabled: Source::EXPLORERS.to_vec(),
            network,
            dns_server,
            pump_interval: SimDuration::from_secs(30),
            correlate: true,
            persistence: PersistencePolicy::InMemory,
        }
    }
}

/// The persistence backend behind the driver's journal handle.
enum Backend {
    /// State dies with the process.
    InMemory,
    /// The paper's scheme: a JSON snapshot written at flush points.
    Snapshot { path: PathBuf },
    /// WAL-backed: every stored observation is logged ahead of apply.
    Wal(DurableJournal),
}

/// The running deployment: simulator + journal + manager.
pub struct DiscoveryDriver {
    /// The simulated network.
    pub sim: Sim,
    /// The shared Journal.
    pub journal: SharedJournal,
    /// The scheduling state.
    pub manager: DiscoveryManager,
    /// What recovery found when the driver was [`DiscoveryDriver::open`]ed
    /// over a WAL directory (`None` for in-memory/snapshot deployments).
    pub recovery: Option<RecoveryReport>,
    cfg: DriverConfig,
    home: NodeId,
    backend: Backend,
    running: HashMap<Source, (ProcHandle, StoreSummary)>,
}

impl DiscoveryDriver {
    /// Creates a driver running modules on `home`, storing into the
    /// given in-memory journal (ignores `cfg.persistence`; use
    /// [`DiscoveryDriver::open`] for durable deployments).
    pub fn new(sim: Sim, journal: SharedJournal, home: NodeId, cfg: DriverConfig) -> Self {
        DiscoveryDriver {
            sim,
            journal,
            manager: DiscoveryManager::new(),
            recovery: None,
            cfg,
            home,
            backend: Backend::InMemory,
            running: HashMap::new(),
        }
    }

    /// Creates a driver whose journal persists per `cfg.persistence`:
    /// a WAL directory is recovered (snapshot + log replay) and every
    /// subsequent observation is logged before it is applied; a
    /// snapshot path is loaded if present and rewritten at flush
    /// points; in-memory starts empty.
    pub fn open(sim: Sim, home: NodeId, cfg: DriverConfig) -> std::io::Result<Self> {
        let (journal, backend, recovery) = match &cfg.persistence {
            PersistencePolicy::InMemory => (SharedJournal::new(), Backend::InMemory, None),
            PersistencePolicy::SnapshotOnly { path } => {
                let journal = if path.exists() {
                    SharedJournal::from_journal(JournalSnapshot::load(path)?.restore())
                } else {
                    SharedJournal::new()
                };
                (journal, Backend::Snapshot { path: path.clone() }, None)
            }
            PersistencePolicy::Wal(wal_cfg) => {
                let (durable, report) = DurableJournal::open(wal_cfg.clone())?;
                let journal = durable.shared().clone();
                (journal, Backend::Wal(durable), Some(report))
            }
        };
        Ok(DiscoveryDriver {
            sim,
            journal,
            manager: DiscoveryManager::new(),
            recovery,
            cfg,
            home,
            backend,
            running: HashMap::new(),
        })
    }

    /// Stores through the persistence backend, so WAL deployments log
    /// each observation before it reaches the in-memory journal.
    fn store(&self, now: fremont_journal::time::JTime, obs: &[Observation]) -> StoreSummary {
        match &self.backend {
            Backend::Wal(durable) => durable.store(now, obs).unwrap_or_default(),
            _ => self.journal.store(now, obs).unwrap_or_default(),
        }
    }

    /// Makes the journal durable at the configured persistence level:
    /// WAL deployments compact (durable snapshot + fresh segment),
    /// snapshot deployments rewrite their snapshot file, in-memory is a
    /// no-op. Called automatically at the end of [`Self::run_for`].
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.backend {
            Backend::InMemory => Ok(()),
            Backend::Snapshot { path } => self.journal.read(JournalSnapshot::capture).save(path),
            Backend::Wal(durable) => durable.compact(),
        }
    }

    /// Runs the deployment for a span of simulated time, then flushes
    /// the journal to disk (for durable persistence policies). The error
    /// is the flush failing: exploration itself has already happened and
    /// its results are in memory, but durability was not achieved.
    pub fn run_for(&mut self, duration: SimDuration) -> std::io::Result<()> {
        let deadline = self.sim.now() + duration;
        // Plan immediately so due modules start at the beginning of the
        // span rather than one pump interval in.
        self.pump();
        while self.sim.now() < deadline {
            let slice = self.cfg.pump_interval.min(deadline - self.sim.now());
            self.sim.run_for(slice);
            self.pump();
        }
        self.flush()
    }

    /// One pump: drain observations, retire finished modules, start due
    /// ones, cross-correlate.
    pub fn pump(&mut self) {
        // 1. Observations → Journal, attributed to their emitting module.
        let drained = self.sim.drain_observations();
        let had_news = !drained.is_empty();
        for (handle, at, obs) in drained {
            let summary = self.store(at.to_jtime(), std::slice::from_ref(&obs));
            if let Some((_, acc)) = self.running.values_mut().find(|(h, _)| *h == handle) {
                acc.absorb(summary);
            }
        }

        // 2. Retire finished modules.
        let finished: Vec<Source> = self
            .running
            .iter()
            .filter(|(_, (h, _))| self.sim.process_done(*h))
            .map(|(s, _)| *s)
            .collect();
        for source in finished {
            let Some((handle, stored)) = self.running.remove(&source) else {
                continue; // Listed from this very map; cannot miss.
            };
            self.sim.kill_process(handle);
            let deficit_after = self.deficit_for(source);
            self.manager.record_run(
                source,
                RunOutcome {
                    stored,
                    deficit_after,
                },
            );
        }

        // 3. Start due modules.
        let now = self.sim.now().to_jtime();
        for source in self.manager.due(now) {
            if !self.cfg.enabled.contains(&source) || self.running.contains_key(&source) {
                continue;
            }
            if let Some(handle) = self.spawn_module(source) {
                self.manager
                    .mark_started(source, now, self.deficit_for(source));
                self.running
                    .insert(source, (handle, StoreSummary::default()));
            }
        }

        // 4. Cross-correlate — only when the journal actually changed.
        if self.cfg.correlate && had_news {
            let derived = self.journal.read(correlate);
            if !derived.is_empty() {
                let _ = self.store(now, &derived);
            }
        }
    }

    /// The unmet-need metric the manager tracks per module.
    fn deficit_for(&self, source: Source) -> Option<u64> {
        match source {
            Source::SubnetMasks => {
                let q = InterfaceQuery {
                    missing_mask: Some(true),
                    ..Default::default()
                };
                Some(
                    self.journal
                        .interfaces(&q)
                        .map(|v| v.len() as u64)
                        .unwrap_or(0),
                )
            }
            Source::Traceroute => {
                // Subnets with no known gateway.
                let q = SubnetQuery {
                    has_gateway: Some(false),
                    within: Some(self.cfg.network),
                    ..Default::default()
                };
                Some(
                    self.journal
                        .subnets(&q)
                        .map(|v| v.len() as u64)
                        .unwrap_or(0),
                )
            }
            _ => None,
        }
    }

    /// The local subnet of the module host.
    fn home_subnet(&self) -> Subnet {
        self.sim.nodes[self.home.0].ifaces[0].subnet()
    }

    /// Known subnets inside the explored network — "the data collected
    /// from RIP packets provide strong indications about the existence of
    /// specific other networks and subnets. This information is used by
    /// the traceroute Explorer Module."
    fn known_subnets(&self) -> Vec<Subnet> {
        let q = SubnetQuery {
            within: Some(self.cfg.network),
            ..Default::default()
        };
        self.journal
            .subnets(&q)
            .map(|v| v.into_iter().map(|r| r.subnet).collect())
            .unwrap_or_default()
    }

    fn spawn_module(&mut self, source: Source) -> Option<ProcHandle> {
        let home = self.home;
        let local = self.home_subnet();
        let handle = match source {
            Source::ArpWatch => self
                .sim
                .spawn(home, Box::new(ArpWatch::new(ArpWatchConfig::default()))),
            Source::EtherHostProbe => self.sim.spawn(
                home,
                Box::new(EtherHostProbe::new(EtherHostProbeConfig::over(
                    local.host_range(),
                ))),
            ),
            Source::SeqPing => self.sim.spawn(
                home,
                Box::new(SeqPing::new(SeqPingConfig::over(local.host_range()))),
            ),
            Source::BrdcastPing => {
                let mut subnets = self.known_subnets();
                if subnets.is_empty() {
                    subnets.push(local);
                }
                self.sim.spawn(
                    home,
                    Box::new(BrdcastPing::new(BrdcastPingConfig::over(subnets))),
                )
            }
            Source::SubnetMasks => {
                let q = InterfaceQuery {
                    missing_mask: Some(true),
                    ..Default::default()
                };
                let targets: Vec<Ipv4Addr> = self
                    .journal
                    .interfaces(&q)
                    .unwrap_or_default()
                    .into_iter()
                    .filter_map(|r| r.ip_addr())
                    .collect();
                if targets.is_empty() {
                    return None; // Nothing to ask yet.
                }
                self.sim.spawn(
                    home,
                    Box::new(SubnetMasks::new(SubnetMasksConfig::over(targets))),
                )
            }
            Source::Traceroute => {
                let mut subnets = self.known_subnets();
                subnets.retain(|s| *s != local);
                if subnets.is_empty() {
                    return None; // No clues yet; RIPwatch/DNS go first.
                }
                let mut cfg = TracerouteConfig::over(subnets);
                cfg.boundary = Some(self.cfg.network);
                self.sim.spawn(home, Box::new(Traceroute::new(cfg)))
            }
            Source::RipWatch => self
                .sim
                .spawn(home, Box::new(RipWatch::new(RipWatchConfig::default()))),
            Source::Dns => {
                let server = self.cfg.dns_server?;
                self.sim.spawn(
                    home,
                    Box::new(DnsExplorer::new(DnsExplorerConfig::new(
                        self.cfg.network,
                        server,
                    ))),
                )
            }
            Source::Manager => return None,
        };
        Some(handle)
    }

    /// Convenience access for experiments: run one specific module to
    /// completion (or until `timeout`), pumping observations; other
    /// scheduling is suspended. Returns the accumulated store summary.
    pub fn run_single(
        &mut self,
        source: Source,
        timeout: SimDuration,
    ) -> Option<(ProcHandle, StoreSummary)> {
        let handle = self.spawn_module(source)?;
        self.running
            .insert(source, (handle, StoreSummary::default()));
        self.manager
            .mark_started(source, self.sim.now().to_jtime(), None);
        let deadline = self.sim.now() + timeout;
        while self.sim.now() < deadline {
            let slice = self.cfg.pump_interval.min(deadline - self.sim.now());
            self.sim.run_for(slice);
            // Pump observations only (no new spawns).
            let drained = self.sim.drain_observations();
            for (h, at, obs) in drained {
                let s = self.store(at.to_jtime(), std::slice::from_ref(&obs));
                if h == handle {
                    if let Some((_, acc)) = self.running.get_mut(&source) {
                        acc.absorb(s);
                    }
                }
            }
            if self.sim.process_done(handle) {
                break;
            }
        }
        let (h, stored) = self.running.remove(&source)?;
        // Retire the process like pump() does, so its taps and timer chain
        // do not linger in the simulator.
        self.sim.kill_process(h);
        let deficit_after = self.deficit_for(source);
        self.manager.record_run(
            source,
            RunOutcome {
                stored,
                deficit_after,
            },
        );
        Some((h, stored))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_netsim::builder::TopologyBuilder;

    fn small_world() -> (Sim, NodeId, Subnet) {
        let mut b = TopologyBuilder::new();
        let a = b.segment("net-a", "10.5.1.0/26");
        let c = b.segment("net-c", "10.5.2.0/26");
        b.host("probe", a, 10);
        b.host("other", a, 11);
        b.host("far", c, 10);
        b.router("gw", &[(a, 1), (c, 1)]);
        let (sim, topo) = b.build(77);
        let home = topo.nodes_by_name["probe"];
        (sim, home, "10.5.0.0/16".parse().unwrap())
    }

    #[test]
    fn run_single_seqping_populates_journal() {
        let (sim, home, network) = small_world();
        let journal = SharedJournal::new();
        let mut driver = DiscoveryDriver::new(
            sim,
            journal.clone(),
            home,
            DriverConfig::full(network, None),
        );
        let (_, stored) = driver
            .run_single(Source::SeqPing, SimDuration::from_mins(20))
            .unwrap();
        assert!(stored.created >= 2, "{stored:?}");
        let stats = journal.stats().unwrap();
        assert!(stats.interfaces >= 2);
    }

    #[test]
    fn full_cycle_discovers_and_correlates() {
        let (sim, home, network) = small_world();
        let journal = SharedJournal::new();
        let mut driver = DiscoveryDriver::new(
            sim,
            journal.clone(),
            home,
            DriverConfig::full(network, None),
        );
        // One simulated hour: RIPwatch hears the router, traceroute maps
        // the far subnet, pings find hosts, masks arrive, correlation
        // builds the gateway.
        driver.run_for(SimDuration::from_hours(1)).unwrap();
        let stats = journal.stats().unwrap();
        assert!(stats.interfaces >= 3, "{stats:?}");
        assert!(stats.subnets >= 2, "{stats:?}");
        let gws = journal.gateways().unwrap();
        assert!(!gws.is_empty(), "gateway discovered through correlation");
        // Both subnets are known.
        let subs = journal.subnets(&SubnetQuery::all()).unwrap();
        let names: Vec<String> = subs.iter().map(|s| s.subnet.to_string()).collect();
        assert!(names.contains(&"10.5.1.0/26".to_owned()), "{names:?}");
        assert!(names.contains(&"10.5.2.0/26".to_owned()), "{names:?}");
        // The schedule recorded completed runs.
        assert!(driver.manager.schedule(Source::SeqPing).unwrap().runs >= 1);
        assert!(driver.manager.schedule(Source::RipWatch).unwrap().runs >= 1);
        journal.read(|j| j.check_invariants()).unwrap();
    }

    #[test]
    fn traceroute_waits_for_clues() {
        let (sim, home, network) = small_world();
        let journal = SharedJournal::new();
        let mut driver = DiscoveryDriver::new(
            sim,
            journal.clone(),
            home,
            DriverConfig {
                enabled: vec![Source::Traceroute],
                ..DriverConfig::full(network, None)
            },
        );
        driver.pump();
        // With an empty journal there are no target subnets: nothing runs.
        assert!(!driver.manager.is_running(Source::Traceroute));
    }

    #[test]
    fn wal_persistence_survives_restart() {
        let dir = std::env::temp_dir().join("fremont-driver-wal-test");
        let _ = std::fs::remove_dir_all(&dir);
        let (sim, home, network) = small_world();
        let mut cfg = DriverConfig::full(network, None);
        cfg.persistence = PersistencePolicy::Wal(fremont_storage::WalConfig::new(&dir));
        let mut driver = DiscoveryDriver::open(sim, home, cfg.clone()).unwrap();
        assert_eq!(driver.recovery.as_ref().unwrap().records_replayed, 0);
        driver.run_for(SimDuration::from_hours(1)).unwrap();
        let before = driver.journal.stats().unwrap();
        assert!(before.interfaces >= 3, "{before:?}");
        drop(driver);

        // Restart over the same directory with a fresh simulator: the
        // recovered journal must report the same discovered world.
        let (sim2, home2, _) = small_world();
        let driver2 = DiscoveryDriver::open(sim2, home2, cfg).unwrap();
        let after = driver2.journal.stats().unwrap();
        assert_eq!(before.interfaces, after.interfaces);
        assert_eq!(before.gateways, after.gateways);
        assert_eq!(before.subnets, after.subnets);
        assert_eq!(before.observations_applied, after.observations_applied);
        driver2.journal.read(|j| j.check_invariants()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_only_persistence_loads_at_open() {
        let dir = std::env::temp_dir().join("fremont-driver-snap-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.json");
        let (sim, home, network) = small_world();
        let mut cfg = DriverConfig::full(network, None);
        cfg.persistence = PersistencePolicy::SnapshotOnly { path: path.clone() };
        let mut driver = DiscoveryDriver::open(sim, home, cfg.clone()).unwrap();
        driver.run_for(SimDuration::from_mins(10)).unwrap();
        let before = driver.journal.stats().unwrap();
        drop(driver);
        assert!(path.exists(), "run_for flushes the snapshot");

        let (sim2, home2, _) = small_world();
        let driver2 = DiscoveryDriver::open(sim2, home2, cfg).unwrap();
        assert_eq!(driver2.journal.stats().unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
