//! The Discovery Manager's scheduling state.
//!
//! "The purpose of the Discovery Manager is to decide what information
//! needs to be collected and what Explorer Modules should be invoked to
//! collect those data." It keeps a startup/history file with "the command
//! name, invocation frequency, and information about recent runs for each
//! Explorer Module", and adjusts the schedule by fruitfulness: "if the
//! Discovery Manager sees that 20 of 400 interfaces recorded in the
//! Journal do not have subnet masks recorded and that this was true before
//! the 'subnet mask' module was last invoked, then the Discovery Manager
//! will not shorten the interval until the next invocation of that
//! module."

use std::path::Path;

use serde::{Deserialize, Serialize};

use fremont_journal::observation::Source;
use fremont_journal::store::StoreSummary;
use fremont_journal::time::JTime;

use crate::registry::{info_for, registry};

/// Per-module scheduling state (one startup/history file entry).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleSchedule {
    /// Which module.
    pub source: Source,
    /// The adaptive re-invocation interval, seconds. Always within the
    /// registry's `[min_interval, max_interval]`.
    pub interval: u64,
    /// When the module last started.
    pub last_run: Option<JTime>,
    /// Completed runs.
    pub runs: u32,
    /// The unmet-need metric (e.g. missing masks) observed before the last
    /// run, for the fruitfulness rule.
    pub deficit_before_last: Option<u64>,
    /// Whether the module is currently running.
    #[serde(skip)]
    pub running: bool,
}

/// Outcome of one module run, as the manager sees it.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOutcome {
    /// Journal store summary accumulated over the run.
    pub stored: StoreSummary,
    /// The unmet-need metric after the run (module-specific; e.g. number
    /// of interfaces still missing masks).
    pub deficit_after: Option<u64>,
}

/// The Discovery Manager's schedule table.
#[derive(Debug, Clone)]
pub struct DiscoveryManager {
    schedules: Vec<ModuleSchedule>,
}

/// The on-disk startup/history file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryFile {
    /// Where the Journal Server lives (informational; the driver wires the
    /// actual connection).
    pub journal_server: String,
    /// Per-module state.
    pub modules: Vec<ModuleSchedule>,
}

impl Default for DiscoveryManager {
    fn default() -> Self {
        Self::new()
    }
}

impl DiscoveryManager {
    /// Fresh state: every module starts at its minimum interval so the
    /// first exploration is eager.
    pub fn new() -> Self {
        DiscoveryManager {
            schedules: registry()
                .into_iter()
                .map(|m| ModuleSchedule {
                    source: m.source,
                    interval: m.min_interval.as_secs(),
                    last_run: None,
                    runs: 0,
                    deficit_before_last: None,
                    running: false,
                })
                .collect(),
        }
    }

    /// Restores state from a history file (clamping intervals to the
    /// registry bounds in case the file was edited).
    pub fn from_history(h: &HistoryFile) -> Self {
        let mut m = Self::new();
        for entry in &h.modules {
            if let Some(s) = m.schedules.iter_mut().find(|s| s.source == entry.source) {
                let info = info_for(entry.source).expect("registry covers sources");
                *s = entry.clone();
                s.interval = s
                    .interval
                    .clamp(info.min_interval.as_secs(), info.max_interval.as_secs());
                s.running = false;
            }
        }
        m
    }

    /// Exports the history file.
    pub fn to_history(&self, journal_server: &str) -> HistoryFile {
        HistoryFile {
            journal_server: journal_server.to_owned(),
            modules: self.schedules.clone(),
        }
    }

    /// Saves the history file as JSON.
    pub fn save(&self, path: &Path, journal_server: &str) -> std::io::Result<()> {
        let h = self.to_history(journal_server);
        let body = serde_json::to_vec_pretty(&h)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, body)
    }

    /// Loads a history file saved by [`DiscoveryManager::save`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let body = std::fs::read(path)?;
        let h: HistoryFile = serde_json::from_slice(&body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(Self::from_history(&h))
    }

    /// The schedule entry for a module.
    pub fn schedule(&self, source: Source) -> Option<&ModuleSchedule> {
        self.schedules.iter().find(|s| s.source == source)
    }

    /// Modules due to run at `now` (not running, interval elapsed).
    pub fn due(&self, now: JTime) -> Vec<Source> {
        self.schedules
            .iter()
            .filter(|s| !s.running)
            .filter(|s| match s.last_run {
                None => true,
                Some(last) => now.secs_since(last) >= s.interval,
            })
            .map(|s| s.source)
            .collect()
    }

    /// Marks a module started; `deficit` records the unmet need it was
    /// launched to address.
    pub fn mark_started(&mut self, source: Source, now: JTime, deficit: Option<u64>) {
        if let Some(s) = self.schedules.iter_mut().find(|s| s.source == source) {
            s.running = true;
            s.last_run = Some(now);
            s.deficit_before_last = deficit;
        }
    }

    /// Records a completed run and adapts the interval.
    ///
    /// Fruitful (new or changed records, or the deficit shrank): halve the
    /// interval toward the minimum. Fruitless, or a deficit that did not
    /// move: double it toward the maximum — the paper's "will not shorten
    /// the interval" rule, generalized to back off.
    pub fn record_run(&mut self, source: Source, outcome: RunOutcome) {
        let Some(info) = info_for(source) else {
            return;
        };
        let Some(s) = self.schedules.iter_mut().find(|s| s.source == source) else {
            return;
        };
        s.running = false;
        s.runs += 1;
        let deficit_unmoved = match (s.deficit_before_last, outcome.deficit_after) {
            (Some(before), Some(after)) => after >= before,
            _ => false,
        };
        let fruitful = (outcome.stored.created + outcome.stored.updated) > 0 && !deficit_unmoved;
        let (min, max) = (info.min_interval.as_secs(), info.max_interval.as_secs());
        s.interval = if fruitful {
            (s.interval / 2).max(min)
        } else {
            (s.interval * 2).min(max)
        };
    }

    /// Returns `true` while the module is marked running.
    pub fn is_running(&self, source: Source) -> bool {
        self.schedule(source).map(|s| s.running).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(created: usize, updated: usize, verified: usize) -> StoreSummary {
        StoreSummary {
            created,
            updated,
            verified,
        }
    }

    #[test]
    fn everything_due_at_start() {
        let m = DiscoveryManager::new();
        assert_eq!(m.due(JTime(0)).len(), 8);
    }

    #[test]
    fn running_module_not_due() {
        let mut m = DiscoveryManager::new();
        m.mark_started(Source::SeqPing, JTime(0), None);
        assert!(!m.due(JTime(0)).contains(&Source::SeqPing));
        assert!(m.is_running(Source::SeqPing));
    }

    #[test]
    fn interval_elapses() {
        let mut m = DiscoveryManager::new();
        m.mark_started(Source::SeqPing, JTime(0), None);
        m.record_run(
            Source::SeqPing,
            RunOutcome {
                stored: summary(10, 0, 0),
                deficit_after: None,
            },
        );
        // Fruitful run: interval stays at the 2-day minimum.
        let s = m.schedule(Source::SeqPing).unwrap();
        assert_eq!(s.interval, JTime::from_days(2).as_secs());
        assert!(!m.due(JTime::from_days(1)).contains(&Source::SeqPing));
        assert!(m.due(JTime::from_days(2)).contains(&Source::SeqPing));
    }

    #[test]
    fn fruitless_run_backs_off() {
        let mut m = DiscoveryManager::new();
        let before = m.schedule(Source::SeqPing).unwrap().interval;
        m.mark_started(Source::SeqPing, JTime(0), None);
        m.record_run(
            Source::SeqPing,
            RunOutcome {
                stored: summary(0, 0, 50),
                deficit_after: None,
            },
        );
        let after = m.schedule(Source::SeqPing).unwrap().interval;
        assert_eq!(after, before * 2);
        // Repeated fruitless runs saturate at the maximum.
        for _ in 0..10 {
            m.mark_started(Source::SeqPing, JTime(0), None);
            m.record_run(
                Source::SeqPing,
                RunOutcome {
                    stored: summary(0, 0, 1),
                    deficit_after: None,
                },
            );
        }
        assert_eq!(
            m.schedule(Source::SeqPing).unwrap().interval,
            JTime::from_days(14).as_secs()
        );
    }

    #[test]
    fn unmoved_deficit_is_fruitless_even_with_updates() {
        // The paper's example: 20 of 400 interfaces still lack masks after
        // the mask module ran — do not shorten the interval.
        let mut m = DiscoveryManager::new();
        let before = m.schedule(Source::SubnetMasks).unwrap().interval;
        m.mark_started(Source::SubnetMasks, JTime(0), Some(20));
        m.record_run(
            Source::SubnetMasks,
            RunOutcome {
                stored: summary(0, 5, 100),
                deficit_after: Some(20),
            },
        );
        assert!(m.schedule(Source::SubnetMasks).unwrap().interval >= before);
    }

    #[test]
    fn shrinking_deficit_is_fruitful() {
        let mut m = DiscoveryManager::new();
        // Push the interval up first.
        m.mark_started(Source::SubnetMasks, JTime(0), None);
        m.record_run(
            Source::SubnetMasks,
            RunOutcome {
                stored: summary(0, 0, 0),
                deficit_after: None,
            },
        );
        let inflated = m.schedule(Source::SubnetMasks).unwrap().interval;
        m.mark_started(Source::SubnetMasks, JTime(0), Some(20));
        m.record_run(
            Source::SubnetMasks,
            RunOutcome {
                stored: summary(0, 18, 0),
                deficit_after: Some(2),
            },
        );
        assert!(m.schedule(Source::SubnetMasks).unwrap().interval < inflated);
    }

    #[test]
    fn history_roundtrip() {
        let mut m = DiscoveryManager::new();
        m.mark_started(Source::Dns, JTime(500), Some(3));
        m.record_run(
            Source::Dns,
            RunOutcome {
                stored: summary(40, 2, 0),
                deficit_after: Some(0),
            },
        );
        let h = m.to_history("127.0.0.1:7000");
        let m2 = DiscoveryManager::from_history(&h);
        let s = m2.schedule(Source::Dns).unwrap();
        assert_eq!(s.runs, 1);
        assert_eq!(s.last_run, Some(JTime(500)));
        assert!(!s.running, "restored modules are never 'running'");
    }

    #[test]
    fn history_file_on_disk() {
        let m = DiscoveryManager::new();
        let dir = std::env::temp_dir().join("fremont-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.json");
        m.save(&path, "journal:7000").unwrap();
        let m2 = DiscoveryManager::load(&path).unwrap();
        assert_eq!(m2.due(JTime(0)).len(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clamps_edited_history() {
        let mut h = DiscoveryManager::new().to_history("x");
        for e in &mut h.modules {
            e.interval = 1; // Below every minimum.
        }
        let m = DiscoveryManager::from_history(&h);
        for s in registry() {
            assert_eq!(
                m.schedule(s.source).unwrap().interval,
                s.min_interval.as_secs()
            );
        }
    }
}
