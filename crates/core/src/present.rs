//! The presentation programs: viewing Journal contents.
//!
//! The paper ships three: a raw dump ("We used this for early debugging"),
//! a three-level interface viewer, and a topology exporter (see
//! [`crate::topology`]). The X-window displays are rendered here as text
//! tables with the same columns.

use std::fmt::Write as _;

use fremont_journal::query::{InterfaceQuery, SubnetQuery};
use fremont_journal::records::InterfaceId;
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::Subnet;

/// Program 1: the raw Journal dump.
pub fn dump(journal: &Journal) -> String {
    let mut out = String::new();
    let stats = journal.stats();
    let _ = writeln!(
        out,
        "JOURNAL DUMP: {} interfaces, {} gateways, {} subnets ({} observations applied)",
        stats.interfaces, stats.gateways, stats.subnets, stats.observations_applied
    );
    for r in journal.get_interfaces(&InterfaceQuery::all()) {
        let _ = writeln!(out, "interface {:?}: {r:?}", r.id);
    }
    for g in journal.get_gateways() {
        let _ = writeln!(out, "gateway {:?}: {g:?}", g.id);
    }
    for s in journal.get_subnets(&SubnetQuery::all()) {
        let _ = writeln!(out, "subnet {}: {s:?}", s.subnet);
    }
    out
}

fn age(now: JTime, then: Option<JTime>) -> String {
    match then {
        None => "never".to_owned(),
        Some(t) => {
            let secs = now.secs_since(t);
            if secs < 120 {
                format!("{secs}s ago")
            } else if secs < 7200 {
                format!("{}m ago", secs / 60)
            } else if secs < 2 * 86400 {
                format!("{}h ago", secs / 3600)
            } else {
                format!("{}d ago", secs / 86400)
            }
        }
    }
}

/// Viewer level 1: "all interfaces in a particular network, including the
/// network layer address, DNS name, and time since last verification of
/// existence (ignoring time of last DNS verification)".
pub fn level1_network(journal: &Journal, network: Subnet, now: JTime) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Interfaces in {network}");
    let _ = writeln!(out, "{:<18} {:<28} LAST SEEN ALIVE", "ADDRESS", "NAME");
    let mut recs = journal.get_interfaces(&InterfaceQuery::in_subnet(network));
    recs.sort_by_key(|r| r.ip_addr().map(u32::from));
    for r in recs {
        let _ = writeln!(
            out,
            "{:<18} {:<28} {}",
            r.ip_addr().map(|i| i.to_string()).unwrap_or_default(),
            r.dns_name().unwrap_or("-"),
            age(now, r.live_verified),
        );
    }
    out
}

/// Viewer level 2: "all subnet interfaces, including the MAC layer address
/// (if available), an indication of whether or not this is a source of RIP
/// packets, and an indication of whether this is one interface of a
/// gateway".
pub fn level2_subnet(journal: &Journal, subnet: Subnet, now: JTime) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Subnet {subnet}");
    let _ = writeln!(
        out,
        "{:<18} {:<19} {:<22} {:<4} {:<8} LAST SEEN",
        "ADDRESS", "ETHERNET", "VENDOR", "RIP", "GATEWAY"
    );
    let mut recs = journal.get_interfaces(&InterfaceQuery::in_subnet(subnet));
    recs.sort_by_key(|r| r.ip_addr().map(u32::from));
    for r in recs {
        let _ = writeln!(
            out,
            "{:<18} {:<19} {:<22} {:<4} {:<8} {}",
            r.ip_addr().map(|i| i.to_string()).unwrap_or_default(),
            r.mac_addr()
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".into()),
            r.mac_addr().and_then(|m| m.vendor()).unwrap_or("-"),
            if r.rip_source { "yes" } else { "no" },
            if r.is_gateway_member() { "member" } else { "-" },
            age(now, r.live_verified),
        );
    }
    out
}

/// Viewer level 3: "all of the data items stored in the Journal for a
/// particular interface", with the three timestamps per field.
pub fn level3_interface(journal: &Journal, id: InterfaceId, now: JTime) -> String {
    let Some(r) = journal.interface(id) else {
        return format!("no interface record {id:?}\n");
    };
    let mut out = String::new();
    let _ = writeln!(out, "Interface record {:?}", r.id);
    let _ = writeln!(
        out,
        "  record: discovered {} / changed {} / verified {}",
        r.discovered, r.changed, r.verified
    );
    let fmt3 = |f: &mut String, label: &str, value: String, d: JTime, c: JTime, v: JTime| {
        let _ = writeln!(f, "  {label:<14} {value:<24} disc {d} / chg {c} / ver {v}");
    };
    if let Some(t) = &r.ip {
        fmt3(
            &mut out,
            "IP address",
            t.get().to_string(),
            t.discovered,
            t.changed,
            t.verified,
        );
    }
    if let Some(t) = &r.mac {
        let vendor = t.get().vendor().unwrap_or("unknown vendor");
        fmt3(
            &mut out,
            "Ethernet",
            format!("{} ({vendor})", t.get()),
            t.discovered,
            t.changed,
            t.verified,
        );
    }
    if let Some(t) = &r.name {
        fmt3(
            &mut out,
            "DNS name",
            t.get().clone(),
            t.discovered,
            t.changed,
            t.verified,
        );
    }
    if let Some(t) = &r.mask {
        fmt3(
            &mut out,
            "Subnet mask",
            t.get().to_string(),
            t.discovered,
            t.changed,
            t.verified,
        );
    }
    let _ = writeln!(
        out,
        "  gateway:       {}",
        r.gateway
            .map(|g| format!("{g:?}"))
            .unwrap_or_else(|| "-".into())
    );
    let _ = writeln!(
        out,
        "  rip source:    {}{}",
        r.rip_source,
        if r.rip_promiscuous {
            " (promiscuous)"
        } else {
            ""
        }
    );
    let sources: Vec<&str> = r.sources.iter().map(|s| s.name()).collect();
    let _ = writeln!(out, "  reported by:   {}", sources.join(", "));
    let _ = writeln!(out, "  last live:     {}", age(now, r.live_verified));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_journal::observation::{Observation, Source};
    use fremont_net::SubnetMask;
    use std::net::Ipv4Addr;

    fn populated() -> Journal {
        let mut j = Journal::new();
        j.apply(
            &Observation::arp_pair(
                Source::ArpWatch,
                Ipv4Addr::new(128, 138, 243, 18),
                "08:00:20:01:02:03".parse().unwrap(),
            ),
            JTime::from_mins(5),
        );
        j.apply(
            &Observation::named_ip(Source::Dns, Ipv4Addr::new(128, 138, 243, 18), "bruno"),
            JTime::from_mins(6),
        );
        j.apply(
            &Observation::mask(
                Source::SubnetMasks,
                Ipv4Addr::new(128, 138, 243, 18),
                SubnetMask::from_prefix_len(24).unwrap(),
            ),
            JTime::from_mins(7),
        );
        j.apply(
            &Observation::named_ip(Source::Dns, Ipv4Addr::new(128, 138, 243, 99), "ghost"),
            JTime::from_mins(8),
        );
        j
    }

    #[test]
    fn dump_mentions_counts() {
        let j = populated();
        let d = dump(&j);
        assert!(d.contains("2 interfaces"));
        assert!(d.contains("0 subnets"), "{d}");
    }

    #[test]
    fn level1_shows_dns_only_host_as_never_seen() {
        let j = populated();
        let v = level1_network(&j, "128.138.0.0/16".parse().unwrap(), JTime::from_hours(2));
        assert!(v.contains("bruno"));
        assert!(v.contains("ghost"));
        // bruno was ARP-verified; ghost only ever existed in the DNS.
        let ghost_line = v.lines().find(|l| l.contains("ghost")).unwrap();
        assert!(ghost_line.contains("never"), "{ghost_line}");
        let bruno_line = v.lines().find(|l| l.contains("bruno")).unwrap();
        assert!(!bruno_line.contains("never"), "{bruno_line}");
    }

    #[test]
    fn level2_shows_mac_and_vendor() {
        let j = populated();
        let v = level2_subnet(
            &j,
            "128.138.243.0/24".parse().unwrap(),
            JTime::from_hours(1),
        );
        assert!(v.contains("08:00:20:01:02:03"));
        assert!(v.contains("Sun Microsystems"));
    }

    #[test]
    fn level3_shows_three_timestamps_per_field() {
        let j = populated();
        let id = j.get_interfaces(&InterfaceQuery::by_ip(Ipv4Addr::new(128, 138, 243, 18)))[0].id;
        let v = level3_interface(&j, id, JTime::from_hours(1));
        assert!(v.contains("IP address"));
        assert!(v.contains("Ethernet"));
        assert!(v.contains("DNS name"));
        assert!(v.contains("Subnet mask"));
        assert!(v.matches("disc ").count() >= 4);
        assert!(v.contains("reported by:"));
        assert!(v.contains("ARPwatch"));
    }

    #[test]
    fn level3_missing_record() {
        let j = Journal::new();
        let v = level3_interface(&j, InterfaceId(99), JTime(0));
        assert!(v.contains("no interface record"));
    }

    #[test]
    fn age_formatting() {
        let now = JTime::from_days(10);
        assert_eq!(age(now, None), "never");
        assert_eq!(age(now, Some(now)), "0s ago");
        assert_eq!(age(now, Some(JTime(now.as_secs() - 600))), "10m ago");
        assert_eq!(age(now, Some(JTime::from_days(9))), "24h ago");
        assert_eq!(age(now, Some(JTime::from_days(1))), "9d ago");
    }
}
