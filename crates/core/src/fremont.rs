//! The Fremont facade: a ready-wired deployment over the synthetic campus.
//!
//! This is the "just run it" entry point the examples use: generate a
//! campus, start the Journal, let the Discovery Manager explore for a
//! simulated span, and hand back the journal plus analyses.

use fremont_journal::server::{JournalAccess, SharedJournal};
use fremont_journal::time::JTime;
use fremont_netsim::campus::{generate, CampusConfig, CampusTruth};
use fremont_netsim::time::SimDuration;
use fremont_telemetry::Telemetry;

use crate::analysis::ProblemReport;
use crate::driver::{DiscoveryDriver, DriverConfig};
use crate::load::ModuleLoadReport;
use crate::topology::TopologyGraph;

/// A Fremont deployment exploring a synthetic campus.
pub struct Fremont {
    /// The driver (simulator + manager + journal wiring).
    pub driver: DiscoveryDriver,
    /// The shared journal (also reachable as `driver.journal`).
    pub journal: SharedJournal,
    /// Ground truth about the generated campus, for evaluation.
    pub truth: CampusTruth,
}

impl Fremont {
    /// Builds a deployment over a campus generated from `cfg`, with the
    /// Explorer Modules running on a host of the departmental subnet.
    pub fn over_campus(cfg: &CampusConfig) -> Self {
        Self::over_campus_with_telemetry(cfg, Telemetry::noop())
    }

    /// Like [`Fremont::over_campus`], with a telemetry sink attached to
    /// the simulator and driver: same-seed runs produce byte-identical
    /// traces, because every timestamp is simulated time.
    pub fn over_campus_with_telemetry(cfg: &CampusConfig, telemetry: Telemetry) -> Self {
        let (sim, truth) = generate(cfg);
        let home = sim
            .node_by_name(&truth.explorer_host)
            .expect("campus generates its explorer host");
        let journal = SharedJournal::new();
        let mut driver_cfg = DriverConfig::full(cfg.network, Some(truth.dns_server));
        driver_cfg.telemetry = telemetry;
        let driver = DiscoveryDriver::new(sim, journal.clone(), home, driver_cfg);
        Fremont {
            driver,
            journal,
            truth,
        }
    }

    /// Explores for a span of simulated time. The error is the final
    /// journal flush failing (always `Ok` for in-memory deployments).
    pub fn explore(&mut self, duration: SimDuration) -> std::io::Result<()> {
        self.driver.run_for(duration)
    }

    /// Current journal time.
    pub fn now(&self) -> JTime {
        self.driver.sim.now().to_jtime()
    }

    /// Runs all Table 8 analyses at the current time.
    pub fn problems(&self, stale_after: u64, recent: u64) -> ProblemReport {
        let now = self.now();
        self.journal
            .read(|j| ProblemReport::generate(j, now, stale_after, recent))
    }

    /// Extracts the discovered topology graph (Figure 2 input).
    pub fn topology(&self) -> TopologyGraph {
        self.journal.read(TopologyGraph::from_journal)
    }

    /// Journal statistics.
    pub fn stats(&self) -> fremont_journal::store::JournalStats {
        self.journal.stats().unwrap_or_default()
    }

    /// Measured per-module load — the Table 4 reproduction.
    pub fn load_report(&self) -> ModuleLoadReport {
        self.driver.load_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_netsim::campus::CampusConfig;

    #[test]
    fn small_campus_exploration_end_to_end() {
        let mut cfg = CampusConfig::small();
        cfg.cs_traffic = false; // Keep the test fast.
        let mut f = Fremont::over_campus(&cfg);
        f.explore(SimDuration::from_mins(30)).unwrap();
        let stats = f.stats();
        assert!(stats.interfaces >= 5, "{stats:?}");
        assert!(stats.subnets >= 5, "{stats:?}");
        let topo = f.topology();
        assert!(!topo.gateways.is_empty());
    }
}
