//! The Fremont facade: a ready-wired deployment over the synthetic campus.
//!
//! This is the "just run it" entry point the examples use: generate a
//! campus, start the Journal, let the Discovery Manager explore for a
//! simulated span, and hand back the journal plus analyses.

use fremont_journal::server::{JournalAccess, SharedJournal};
use fremont_journal::time::JTime;
use fremont_netsim::campus::{generate, CampusConfig, CampusTruth};
use fremont_netsim::time::SimDuration;
use fremont_telemetry::Telemetry;

use crate::analysis::ProblemReport;
use crate::driver::{DiscoveryDriver, DriverConfig};
use crate::load::ModuleLoadReport;
use crate::topology::TopologyGraph;

/// A Fremont deployment exploring a synthetic campus.
pub struct Fremont {
    /// The driver (simulator + manager + journal wiring).
    pub driver: DiscoveryDriver,
    /// The shared journal (also reachable as `driver.journal`).
    pub journal: SharedJournal,
    /// Ground truth about the generated campus, for evaluation.
    pub truth: CampusTruth,
}

impl Fremont {
    /// Builds a deployment over a campus generated from `cfg`, with the
    /// Explorer Modules running on a host of the departmental subnet.
    pub fn over_campus(cfg: &CampusConfig) -> Self {
        Self::over_campus_with_telemetry(cfg, Telemetry::noop())
    }

    /// Like [`Fremont::over_campus`], with a telemetry sink attached to
    /// the simulator and driver: same-seed runs produce byte-identical
    /// traces, because every timestamp is simulated time.
    pub fn over_campus_with_telemetry(cfg: &CampusConfig, telemetry: Telemetry) -> Self {
        let (sim, truth) = generate(cfg);
        // The generator always creates the explorer host; fall back to
        // the first node rather than aborting a whole deployment if
        // that invariant ever breaks.
        let home = sim
            .node_by_name(&truth.explorer_host)
            .unwrap_or(fremont_netsim::segment::NodeId(0));
        let journal = SharedJournal::new();
        let mut driver_cfg = DriverConfig::full(cfg.network, Some(truth.dns_server));
        driver_cfg.telemetry = telemetry;
        let driver = DiscoveryDriver::new(sim, journal.clone(), home, driver_cfg);
        Fremont {
            driver,
            journal,
            truth,
        }
    }

    /// Explores for a span of simulated time. The error is the final
    /// journal flush failing (always `Ok` for in-memory deployments).
    pub fn explore(&mut self, duration: SimDuration) -> std::io::Result<()> {
        self.driver.run_for(duration)
    }

    /// Current journal time.
    pub fn now(&self) -> JTime {
        self.driver.sim.now().to_jtime()
    }

    /// Explores until discovery is *structurally quiescent*: the
    /// journal's interface/gateway/subnet counts have not changed for
    /// `idle` of simulated time (checked in `idle/4` slices), or `max`
    /// has elapsed. Returns the simulated instant at which the stable
    /// window began, or `None` if the run hit `max` still churning.
    ///
    /// "Quiescent" here means the topology census has converged —
    /// modules keep re-verifying on their Table 4 intervals, but they
    /// stop finding new objects. The chaos suite and the model checker
    /// use this to know a baseline has settled before judging findings.
    pub fn explore_until_quiescent(
        &mut self,
        max: SimDuration,
        idle: SimDuration,
    ) -> std::io::Result<Option<fremont_netsim::time::SimTime>> {
        let slice = SimDuration(idle.as_micros().div_ceil(4).max(1));
        let mut stable_since = self.driver.sim.now();
        let mut last = self.stats();
        let deadline = self.driver.sim.now() + max;
        while self.driver.sim.now() < deadline {
            let remaining = deadline.since(self.driver.sim.now());
            self.explore(if slice < remaining { slice } else { remaining })?;
            let cur = self.stats();
            let changed = (cur.interfaces, cur.gateways, cur.subnets)
                != (last.interfaces, last.gateways, last.subnets);
            if changed {
                stable_since = self.driver.sim.now();
                last = cur;
            } else if self.driver.sim.now().since(stable_since) >= idle {
                return Ok(Some(stable_since));
            }
        }
        Ok(None)
    }

    /// Runs all Table 8 analyses at the current time.
    pub fn problems(&self, stale_after: u64, recent: u64) -> ProblemReport {
        let now = self.now();
        self.journal
            .read(|j| ProblemReport::generate(j, now, stale_after, recent))
    }

    /// Extracts the discovered topology graph (Figure 2 input).
    pub fn topology(&self) -> TopologyGraph {
        self.journal.read(TopologyGraph::from_journal)
    }

    /// Journal statistics.
    pub fn stats(&self) -> fremont_journal::store::JournalStats {
        self.journal.stats().unwrap_or_default()
    }

    /// Measured per-module load — the Table 4 reproduction.
    pub fn load_report(&self) -> ModuleLoadReport {
        self.driver.load_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_netsim::campus::CampusConfig;

    #[test]
    fn small_campus_exploration_end_to_end() {
        let mut cfg = CampusConfig::small();
        cfg.cs_traffic = false; // Keep the test fast.
        let mut f = Fremont::over_campus(&cfg);
        f.explore(SimDuration::from_mins(30)).unwrap();
        let stats = f.stats();
        assert!(stats.interfaces >= 5, "{stats:?}");
        assert!(stats.subnets >= 5, "{stats:?}");
        let topo = f.topology();
        assert!(!topo.gateways.is_empty());
    }
}
