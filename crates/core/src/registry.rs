//! The Explorer Module registry.
//!
//! The Discovery Manager's "startup/history file records what each
//! Explorer Module needs for input, and what features it discovers" —
//! Table 3 of the paper. Table 4 adds the operational characteristics:
//! appropriate invocation intervals, completion time, and load. This
//! module is the static source of both tables.

use fremont_journal::observation::Source;
use fremont_journal::time::JTime;

/// What a module needs as input (Table 3 "Inputs" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Runs unattended on the attached segment.
    None,
    /// A range of IP addresses.
    IpRange,
    /// A list of subnets or networks.
    Subnets,
    /// A list of already-known interface addresses.
    KnownInterfaces,
    /// A network number (e.g. the campus class B).
    NetworkNumber,
}

/// One registry entry.
#[derive(Debug, Clone)]
pub struct ModuleInfo {
    /// The module's Journal source tag.
    pub source: Source,
    /// Information source family (Table 3 "Source" column).
    pub family: &'static str,
    /// Input requirement.
    pub input: InputKind,
    /// Input description (Table 3 "Inputs" column).
    pub inputs_text: &'static str,
    /// Output description (Table 3 "Outputs" column).
    pub outputs_text: &'static str,
    /// Minimum re-invocation interval (Table 4).
    pub min_interval: JTime,
    /// Maximum re-invocation interval (Table 4).
    pub max_interval: JTime,
    /// Completion-time description (Table 4).
    pub time_to_complete: &'static str,
    /// Network-load description (Table 4).
    pub network_load: &'static str,
    /// System-load description (Table 4).
    pub system_load: &'static str,
    /// Runs continuously rather than to completion.
    pub continuous: bool,
    /// Requires system privileges (taps the interface).
    pub needs_privileges: bool,
}

/// The eight modules, in the paper's Table 3 order.
pub fn registry() -> Vec<ModuleInfo> {
    vec![
        ModuleInfo {
            source: Source::ArpWatch,
            family: "ARP",
            input: InputKind::None,
            inputs_text: "none",
            outputs_text: "Enet. & IP address matches (over time)",
            min_interval: JTime::from_hours(2),
            max_interval: JTime::from_days(7),
            time_to_complete: "continuous",
            network_load: "none",
            system_load: "minimal",
            continuous: true,
            needs_privileges: true,
        },
        ModuleInfo {
            source: Source::EtherHostProbe,
            family: "ARP",
            input: InputKind::IpRange,
            inputs_text: "IP address range",
            outputs_text: "Enet. & IP address matches (immediately)",
            min_interval: JTime::from_days(1),
            max_interval: JTime::from_days(7),
            time_to_complete: "1 sec/address",
            network_load: "1 - 4 pkts/sec",
            system_load: "minimal",
            continuous: false,
            needs_privileges: false,
        },
        ModuleInfo {
            source: Source::SeqPing,
            family: "ICMP",
            input: InputKind::IpRange,
            inputs_text: "IP address range",
            outputs_text: "Intf. IP addr.",
            min_interval: JTime::from_days(2),
            max_interval: JTime::from_days(14),
            time_to_complete: "2 sec/address",
            network_load: ".5 pkts/sec",
            system_load: "minimal",
            continuous: false,
            needs_privileges: false,
        },
        ModuleInfo {
            source: Source::BrdcastPing,
            family: "ICMP",
            input: InputKind::Subnets,
            inputs_text: "Subnets or Nets",
            outputs_text: "Intf. IP addr.",
            min_interval: JTime::from_days(7),
            max_interval: JTime::from_days(28),
            time_to_complete: "30 sec/subnet",
            network_load: "short storm",
            system_load: "short high load",
            continuous: false,
            needs_privileges: false,
        },
        ModuleInfo {
            source: Source::SubnetMasks,
            family: "ICMP",
            input: InputKind::KnownInterfaces,
            inputs_text: "IP address",
            outputs_text: "Subnet Masks",
            min_interval: JTime::from_days(1),
            max_interval: JTime::from_days(7),
            time_to_complete: "2 sec/address",
            network_load: ".5 pkts/sec",
            system_load: "minimal",
            continuous: false,
            needs_privileges: false,
        },
        ModuleInfo {
            source: Source::Traceroute,
            family: "ICMP",
            input: InputKind::Subnets,
            inputs_text: "Subnets, Nets, or nothing",
            outputs_text: "Intfs. per gateway; gateway-subnet links",
            min_interval: JTime::from_days(2),
            max_interval: JTime::from_days(14),
            time_to_complete: "5 - 20 minutes",
            network_load: "4 - 8 pkts/sec",
            system_load: "moderate",
            continuous: false,
            needs_privileges: false,
        },
        ModuleInfo {
            source: Source::RipWatch,
            family: "RIP",
            input: InputKind::None,
            inputs_text: "none",
            outputs_text: "Subnets, Nets, Hosts",
            min_interval: JTime::from_hours(2),
            max_interval: JTime::from_days(7),
            time_to_complete: "2 minutes",
            network_load: "none",
            system_load: "minimal",
            continuous: false,
            needs_privileges: true,
        },
        ModuleInfo {
            source: Source::Dns,
            family: "DNS",
            input: InputKind::NetworkNumber,
            inputs_text: "Network number",
            outputs_text: "Intfs. per gateway",
            min_interval: JTime::from_days(2),
            max_interval: JTime::from_days(14),
            time_to_complete: "1 - 5 minutes",
            network_load: "10 pkts/sec",
            system_load: "high",
            continuous: false,
            needs_privileges: false,
        },
    ]
}

/// Looks up the registry entry for a source.
pub fn info_for(source: Source) -> Option<ModuleInfo> {
    registry().into_iter().find(|m| m.source == source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_modules_four_families() {
        let r = registry();
        assert_eq!(r.len(), 8);
        let mut families: Vec<&str> = r.iter().map(|m| m.family).collect();
        families.dedup();
        assert_eq!(families, vec!["ARP", "ICMP", "RIP", "DNS"]);
        assert_eq!(r.iter().filter(|m| m.family == "ICMP").count(), 4);
    }

    #[test]
    fn passive_modules_need_privileges() {
        for m in registry() {
            let passive = m.inputs_text == "none";
            assert_eq!(
                m.needs_privileges, passive,
                "{:?}: exactly the tap-based modules need privileges",
                m.source
            );
        }
    }

    #[test]
    fn intervals_are_ordered() {
        for m in registry() {
            assert!(m.min_interval < m.max_interval, "{:?}", m.source);
        }
    }

    #[test]
    fn lookup_by_source() {
        assert_eq!(
            info_for(Source::Traceroute).unwrap().outputs_text,
            "Intfs. per gateway; gateway-subnet links"
        );
        assert!(info_for(Source::Manager).is_none());
    }
}
