//! # fremont-core
//!
//! The integrated Fremont system: the Discovery Manager (scheduling +
//! module registry + startup/history file), the cross-correlation pass,
//! the analysis programs of Table 8, the presentation programs, and the
//! topology exporter that regenerates Figure 2.
//!
//! The crate sits on top of:
//! * [`fremont_net`] — addresses and wire formats,
//! * [`fremont_netsim`] — the simulated campus substrate,
//! * [`fremont_journal`] — the Journal and Journal Server,
//! * [`fremont_explorers`] — the eight Explorer Modules,
//!
//! and exposes [`Fremont`] as the one-call deployment facade.
//!
//! # Examples
//!
//! ```
//! use fremont_core::Fremont;
//! use fremont_netsim::campus::CampusConfig;
//! use fremont_netsim::time::SimDuration;
//!
//! let mut cfg = CampusConfig::small();
//! cfg.cs_traffic = false;
//! let mut fremont = Fremont::over_campus(&cfg);
//! fremont.explore(SimDuration::from_mins(10)).unwrap();
//! assert!(fremont.stats().interfaces > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod correlate;
pub mod driver;
pub mod fremont;
pub mod invariants;
pub mod load;
pub mod manager;
pub mod present;
pub mod registry;
pub mod topology;

pub use analysis::ProblemReport;
pub use driver::{DiscoveryDriver, DriverConfig};
pub use fremont::Fremont;
pub use manager::{DiscoveryManager, HistoryFile, ModuleSchedule, RunOutcome};
pub use registry::{registry, ModuleInfo};
pub use topology::TopologyGraph;
