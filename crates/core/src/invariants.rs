//! Analysis invariants over fault schedules, for the model checker.
//!
//! The paper's claim (§4–5, Table 8) is that Fremont's discovered
//! inconsistencies reliably surface real network problems. `fremont-mc`
//! stress-tests that claim by enumerating fault schedules and checking,
//! for every interleaving, that the analysis layer's findings are
//! *explained* by the injected faults and that injected faults
//! *surface* as findings of their expected class.
//!
//! # The differential method
//!
//! A finding count in isolation is meaningless: discovery has
//! structural artifacts (the explorer host is never re-ARPed after
//! startup, so it always eventually looks stale at tight windows).
//! Every invariant therefore compares a schedule's [`ProblemReport`]s
//! **per class against the same-seed empty-schedule baseline** at the
//! identical horizon. Two evaluations are taken per run:
//!
//! * **control** — `stale_after` of 4 days, `min_overlap` 1 hour: wide
//!   enough that a quiet baseline reports *zero* findings, so any
//!   positive control delta is unambiguous.
//! * **tight** — `stale_after` of 6 hours, `min_overlap` 30 minutes:
//!   narrow enough that liveness faults (crashes, dead gateways,
//!   partitions) surface within a 16-hour run, at the cost of baseline
//!   noise that the differential subtracts away.
//!
//! Negative deltas are always legal: a partition suppresses coverage,
//! which can *remove* baseline findings (the coverage-aware stale
//! detector folds individually-stale hosts into a silent subnet).

use std::fmt;
use std::net::Ipv4Addr;

use fremont_netsim::faults::{FaultKind, FaultPlan};
use fremont_netsim::time::{SimDuration, SimTime};

use crate::analysis::ProblemReport;

/// Number of finding classes in a [`ProblemReport`].
pub const CLASS_COUNT: usize = 8;

/// Class index: "IP Addresses No Longer in Use".
pub const STALE: usize = 0;
/// Class index: "Hardware Changes".
pub const HARDWARE_CHANGES: usize = 1;
/// Class index: "Inconsistent Network Masks".
pub const MASK_CONFLICTS: usize = 2;
/// Class index: "Duplicate Address Assignments".
pub const DUPLICATES: usize = 3;
/// Class index: "Promiscuous RIP Hosts".
pub const PROMISCUOUS: usize = 4;
/// Class index: gateways gone silent while still routed through.
pub const STALE_ROUTES: usize = 5;
/// Class index: subnets whose whole population stopped answering.
pub const SILENT_SUBNETS: usize = 6;
/// Class index: interfaces reported with future timestamps.
pub const CLOCK_SKEW: usize = 7;

/// Human names for the finding classes, indexed by the constants above.
pub const CLASS_NAMES: [&str; CLASS_COUNT] = [
    "stale",
    "hardware_changes",
    "mask_conflicts",
    "duplicates",
    "promiscuous",
    "stale_routes",
    "silent_subnets",
    "clock_skew",
];

/// Per-class finding counts of one report.
pub fn class_counts(report: &ProblemReport) -> [usize; CLASS_COUNT] {
    [
        report.stale.len(),
        report.hardware_changes.len(),
        report.mask_conflicts.len(),
        report.duplicates.len(),
        report.promiscuous.len(),
        report.stale_routes.len(),
        report.silent_subnets.len(),
        report.clock_skew.len(),
    ]
}

/// The two analysis evaluations taken at the end of one run, reduced
/// to per-class counts (all any invariant needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunEvaluation {
    /// Counts at the wide control window (clean on a quiet baseline).
    pub control: [usize; CLASS_COUNT],
    /// Counts at the tight liveness window (has structural noise).
    pub tight: [usize; CLASS_COUNT],
}

impl RunEvaluation {
    /// Reduces a pair of full reports.
    pub fn new(control: &ProblemReport, tight: &ProblemReport) -> Self {
        RunEvaluation {
            control: class_counts(control),
            tight: class_counts(tight),
        }
    }

    /// Signed per-class deltas `self - baseline` for (control, tight).
    pub fn deltas(&self, baseline: &RunEvaluation) -> [(i64, i64); CLASS_COUNT] {
        let mut d = [(0i64, 0i64); CLASS_COUNT];
        for (i, slot) in d.iter_mut().enumerate() {
            *slot = (
                self.control[i] as i64 - baseline.control[i] as i64,
                self.tight[i] as i64 - baseline.tight[i] as i64,
            );
        }
        d
    }
}

/// One invariant violation: which invariant, and what was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant identifier (fixture and minimization key).
    pub invariant: &'static str,
    /// Human-readable account of the observed discrepancy.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Invariant: a quiet baseline reports zero control-window findings.
pub const INV_CONTROL_CLEAN: &str = "control-clean-baseline";
/// Invariant: every positive delta is explained by an injected fault.
pub const INV_NO_UNEXPLAINED: &str = "no-unexplained-findings";
/// Invariant: an uncounteracted fault surfaces in its expected class.
pub const INV_EXPECT_SURFACE: &str = "injected-fault-surfaces";
/// Invariant: a healed partition leaves no permanent silent subnet.
pub const INV_HEALED_PARTITION: &str = "healed-partition-recovers";
/// The deliberately broken invariant (`--assert-quiet`): faults must
/// not change the findings at all. Any effective fault violates it —
/// it exists to prove the counterexample pipeline works end to end.
pub const INV_ASSERT_QUIET: &str = "assert-quiet";

/// Context the invariants need beyond the reports themselves.
#[derive(Debug, Clone)]
pub struct InvariantConfig {
    /// End of the run; expectations only apply to faults with enough
    /// remaining runway.
    pub horizon: SimTime,
    /// The node hosting the Explorer Modules. Clock skew only corrupts
    /// journal timestamps when injected here.
    pub explorer_host: String,
    /// Runway a fault needs before the horizon for its finding to be
    /// *expected* (module re-verification is bursty; 8 hours spans the
    /// tight `stale_after` plus an ARPwatch re-verification gap).
    pub surface_margin: SimDuration,
    /// A `WrongMask` is only expected to surface if injected before
    /// the first Subnet Mask sweep (the module queries only interfaces
    /// with no mask observation yet).
    pub mask_deadline: SimTime,
    /// Pristine node → primary-address map of the topology, captured
    /// *before* fault injection (a `DuplicateIp` fault rewrites the
    /// live address). Used to detect when a duplicate-address fault
    /// claims a crashed node's own address and masks its liveness
    /// signal. Empty is legal: masking detection is simply disabled.
    pub node_ips: Vec<(String, Ipv4Addr)>,
}

impl InvariantConfig {
    /// The configuration matched to the 16-hour micro-campus run.
    pub fn for_micro(explorer_host: &str) -> Self {
        InvariantConfig {
            horizon: SimTime::from_hours(16),
            explorer_host: explorer_host.to_owned(),
            surface_margin: SimDuration::from_hours(8),
            mask_deadline: SimTime(60_000_000),
            node_ips: Vec::new(),
        }
    }

    /// The pristine primary address of `node`, if known.
    pub fn ip_of(&self, node: &str) -> Option<Ipv4Addr> {
        self.node_ips
            .iter()
            .find(|(n, _)| n == node)
            .map(|&(_, ip)| ip)
    }
}

/// Which finding classes an injected fault may legitimately move
/// *upward*. Everything else moving up is an unexplained finding.
fn allowed_classes(kind: &FaultKind) -> [bool; CLASS_COUNT] {
    let mut a = [false; CLASS_COUNT];
    match kind {
        // Liveness faults change who answers on the wire; depending on
        // blast radius that shows up as stale addresses, stale routes,
        // or a silent subnet.
        FaultKind::NodeCrash { .. }
        | FaultKind::NodeReboot { .. }
        | FaultKind::GatewayDeath { .. }
        | FaultKind::Partition { .. }
        | FaultKind::Heal { .. }
        | FaultKind::Degrade { .. }
        | FaultKind::ClearDegrade { .. } => {
            a[STALE] = true;
            a[STALE_ROUTES] = true;
            a[SILENT_SUBNETS] = true;
        }
        // A duplicate address is classified as a duplicate assignment
        // or a hardware change depending on observed coexistence, and
        // the losing claimant can additionally look stale.
        FaultKind::DuplicateIp { .. } => {
            a[DUPLICATES] = true;
            a[HARDWARE_CHANGES] = true;
            a[STALE] = true;
        }
        FaultKind::WrongMask { .. } => {
            a[MASK_CONFLICTS] = true;
        }
        // Skew on the explorer stamps records into the future, which
        // both raises clock-skew findings and perturbs every
        // liveness-window comparison.
        FaultKind::ClockSkew { .. } => {
            a[CLOCK_SKEW] = true;
            a[STALE] = true;
            a[STALE_ROUTES] = true;
            a[SILENT_SUBNETS] = true;
        }
    }
    a
}

/// Structural facts about a schedule that gate the expectations.
#[derive(Debug, Clone, Default)]
struct ScheduleFacts {
    /// A crash/gateway-death/partition left standing with runway.
    uncounteracted_liveness: bool,
    /// Any partition event present (suppresses on-wire observation of
    /// the departmental segment, so non-liveness expectations lapse).
    has_partition: bool,
    /// Any positive clock skew on the explorer host (corrupts the
    /// journal timestamps every liveness judgement depends on).
    has_explorer_skew: bool,
    /// A duplicate-address fault with runway.
    dup_with_runway: bool,
    /// A wrong-mask fault injected before the first mask sweep.
    mask_before_sweep: bool,
    /// A positive explorer clock skew with runway.
    skew_with_runway: bool,
    /// Every partition has a later heal (with runway after the heal)
    /// and at least one such healed partition exists.
    all_partitions_healed: bool,
}

fn facts(plan: &FaultPlan, cfg: &InvariantConfig) -> ScheduleFacts {
    let mut f = ScheduleFacts::default();
    let runway = |at: SimTime| at + cfg.surface_margin <= cfg.horizon;
    let mut partitions = 0usize;
    let mut healed = 0usize;
    for ev in &plan.events {
        match &ev.kind {
            FaultKind::NodeCrash { node } => {
                // Same-instant counteractions count: simultaneous events
                // fire in deterministic queue order, and the space
                // schedules the reboot after the crash it cancels.
                let rebooted = plan.events.iter().any(|later| {
                    later.at() >= ev.at()
                        && matches!(&later.kind, FaultKind::NodeReboot { node: n } if n == node)
                });
                // A duplicate-address fault claiming the crashed
                // node's own address keeps that address answered on
                // the wire (the duplicate host takes it over), so the
                // crash surfaces as a hardware change instead of a
                // stale address — covered by the duplicate's own
                // expectation; the crash's lapses.
                let masked = plan.events.iter().any(|other| {
                    matches!(&other.kind, FaultKind::DuplicateIp { ip, .. }
                        if cfg.ip_of(node) == Some(*ip))
                });
                if !rebooted && !masked && runway(ev.at()) {
                    f.uncounteracted_liveness = true;
                }
            }
            FaultKind::GatewayDeath { .. } => {
                if runway(ev.at()) {
                    f.uncounteracted_liveness = true;
                }
            }
            FaultKind::Partition { segment } => {
                f.has_partition = true;
                partitions += 1;
                let heal = plan.events.iter().find(|later| {
                    later.at() >= ev.at()
                        && matches!(&later.kind, FaultKind::Heal { segment: s } if s == segment)
                });
                match heal {
                    Some(h) if runway(h.at()) => healed += 1,
                    _ => {
                        if runway(ev.at()) {
                            f.uncounteracted_liveness = true;
                        }
                    }
                }
            }
            FaultKind::DuplicateIp { .. } => {
                if runway(ev.at()) {
                    f.dup_with_runway = true;
                }
            }
            FaultKind::WrongMask { .. } => {
                if ev.at() <= cfg.mask_deadline {
                    f.mask_before_sweep = true;
                }
            }
            FaultKind::ClockSkew { node, skew_micros } => {
                if node == &cfg.explorer_host && *skew_micros > 0 {
                    f.has_explorer_skew = true;
                    if runway(ev.at()) {
                        f.skew_with_runway = true;
                    }
                }
            }
            FaultKind::NodeReboot { .. }
            | FaultKind::Heal { .. }
            | FaultKind::Degrade { .. }
            | FaultKind::ClearDegrade { .. } => {}
        }
    }
    f.all_partitions_healed = partitions > 0 && healed == partitions;
    f
}

/// Checks the root invariant on the empty-schedule baseline: the quiet
/// campus must report **zero** control-window findings. Everything else
/// is differential, so this is the one absolute anchor.
pub fn check_baseline(baseline: &RunEvaluation) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, &n) in baseline.control.iter().enumerate() {
        if n != 0 {
            out.push(Violation {
                invariant: INV_CONTROL_CLEAN,
                detail: format!(
                    "empty schedule produced {} control-window `{}` finding(s)",
                    n, CLASS_NAMES[i]
                ),
            });
        }
    }
    out
}

/// Checks every differential invariant for one schedule's evaluation
/// against the same-seed baseline. `assert_quiet` additionally enables
/// the deliberately broken [`INV_ASSERT_QUIET`] invariant.
pub fn check_schedule(
    plan: &FaultPlan,
    baseline: &RunEvaluation,
    run: &RunEvaluation,
    cfg: &InvariantConfig,
    assert_quiet: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let deltas = run.deltas(baseline);
    let f = facts(plan, cfg);

    // INV-NO-UNEXPLAINED: any class that moved upward (in either
    // evaluation) must be in the union of the injected faults'
    // allowed classes.
    let mut allowed = [false; CLASS_COUNT];
    for ev in &plan.events {
        let a = allowed_classes(&ev.kind);
        for (slot, ok) in allowed.iter_mut().zip(a) {
            *slot |= ok;
        }
    }
    for (i, &(dc, dt)) in deltas.iter().enumerate() {
        if (dc > 0 || dt > 0) && !allowed[i] {
            out.push(Violation {
                invariant: INV_NO_UNEXPLAINED,
                detail: format!(
                    "`{}` rose by {:+}/{:+} (control/tight) but no injected fault can cause it",
                    CLASS_NAMES[i], dc, dt
                ),
            });
        }
    }

    // INV-EXPECT-SURFACE: each expectation only applies when nothing
    // else in the schedule can mask the signal (partitions suppress
    // on-wire observation; explorer skew corrupts liveness
    // timestamps). The gates err conservative: a lapsed expectation is
    // never a violation, a missed one always is.
    if f.uncounteracted_liveness && !f.has_explorer_skew {
        let surfaced = [STALE, STALE_ROUTES, SILENT_SUBNETS]
            .iter()
            .any(|&i| deltas[i].1 > 0);
        if !surfaced {
            out.push(Violation {
                invariant: INV_EXPECT_SURFACE,
                detail: format!(
                    "uncounteracted liveness fault left no positive tight delta in \
                     stale/stale_routes/silent_subnets (deltas {:?})",
                    deltas
                ),
            });
        }
    }
    if f.dup_with_runway && !f.has_partition && !f.has_explorer_skew {
        let surfaced = [DUPLICATES, HARDWARE_CHANGES]
            .iter()
            .any(|&i| deltas[i].0 > 0 || deltas[i].1 > 0);
        if !surfaced {
            out.push(Violation {
                invariant: INV_EXPECT_SURFACE,
                detail: format!(
                    "duplicate-address fault surfaced neither as duplicates nor as a \
                     hardware change (deltas {:?})",
                    deltas
                ),
            });
        }
    }
    if f.mask_before_sweep {
        let (dc, dt) = deltas[MASK_CONFLICTS];
        if dc <= 0 && dt <= 0 {
            out.push(Violation {
                invariant: INV_EXPECT_SURFACE,
                detail: format!(
                    "wrong-mask fault before the first mask sweep produced no \
                     mask_conflicts finding (deltas {:+}/{:+})",
                    dc, dt
                ),
            });
        }
    }
    if f.skew_with_runway && !f.has_partition {
        let (dc, dt) = deltas[CLOCK_SKEW];
        if dc <= 0 && dt <= 0 {
            out.push(Violation {
                invariant: INV_EXPECT_SURFACE,
                detail: format!(
                    "explorer clock skew produced no clock_skew finding \
                     (deltas {:+}/{:+})",
                    dc, dt
                ),
            });
        }
    }

    // INV-HEALED-PARTITION: if every partition was healed with runway,
    // the tight silent-subnet population must not have grown.
    if f.all_partitions_healed && deltas[SILENT_SUBNETS].1 > 0 {
        out.push(Violation {
            invariant: INV_HEALED_PARTITION,
            detail: format!(
                "all partitions healed, yet tight silent_subnets rose by {:+}",
                deltas[SILENT_SUBNETS].1
            ),
        });
    }

    // INV-ASSERT-QUIET (deliberately broken, behind the test flag):
    // demands faults change nothing at all.
    if assert_quiet && deltas.iter().any(|&(dc, dt)| dc != 0 || dt != 0) {
        out.push(Violation {
            invariant: INV_ASSERT_QUIET,
            detail: format!("schedule changed the findings (deltas {:?})", deltas),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> InvariantConfig {
        InvariantConfig::for_micro("bruno")
    }

    fn eval(control: [usize; CLASS_COUNT], tight: [usize; CLASS_COUNT]) -> RunEvaluation {
        RunEvaluation { control, tight }
    }

    fn base() -> RunEvaluation {
        // Typical quiet baseline: clean control, structural tight noise.
        eval([0; 8], [1, 0, 0, 0, 0, 0, 0, 0])
    }

    #[test]
    fn clean_baseline_passes_and_dirty_fails() {
        assert!(check_baseline(&base()).is_empty());
        let dirty = eval([0, 0, 1, 0, 0, 0, 0, 0], [0; 8]);
        let v = check_baseline(&dirty);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, INV_CONTROL_CLEAN);
    }

    #[test]
    fn empty_schedule_with_baseline_counts_is_quiet() {
        let plan = FaultPlan::new();
        let v = check_schedule(&plan, &base(), &base(), &cfg(), true);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crash_must_surface_in_tight_liveness_classes() {
        let plan = FaultPlan::new().at(
            SimTime::from_hours(8),
            FaultKind::NodeCrash {
                node: "piper".into(),
            },
        );
        // Surfaced: stale rose by one at the tight window.
        let good = eval([0; 8], [2, 0, 0, 0, 0, 0, 0, 0]);
        assert!(check_schedule(&plan, &base(), &good, &cfg(), false).is_empty());
        // Silent: nothing moved — expectation violated.
        let v = check_schedule(&plan, &base(), &base(), &cfg(), false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, INV_EXPECT_SURFACE);
    }

    #[test]
    fn crash_too_close_to_horizon_has_no_expectation() {
        let plan = FaultPlan::new().at(
            SimTime::from_hours(12),
            FaultKind::NodeCrash {
                node: "piper".into(),
            },
        );
        assert!(check_schedule(&plan, &base(), &base(), &cfg(), false).is_empty());
    }

    #[test]
    fn rebooted_crash_has_no_expectation() {
        let plan = FaultPlan::new()
            .at(
                SimTime::from_hours(2),
                FaultKind::NodeCrash {
                    node: "piper".into(),
                },
            )
            .at(
                SimTime::from_hours(5),
                FaultKind::NodeReboot {
                    node: "piper".into(),
                },
            );
        assert!(check_schedule(&plan, &base(), &base(), &cfg(), false).is_empty());
    }

    #[test]
    fn same_instant_counteractions_count() {
        // Simultaneous events fire in deterministic queue order, and
        // canonical schedules place the counteracting event second.
        let plan = FaultPlan::new()
            .at(
                SimTime::from_hours(2),
                FaultKind::NodeCrash {
                    node: "piper".into(),
                },
            )
            .at(
                SimTime::from_hours(2),
                FaultKind::NodeReboot {
                    node: "piper".into(),
                },
            )
            .at(
                SimTime::from_hours(5),
                FaultKind::Partition {
                    segment: "cs-net".into(),
                },
            )
            .at(
                SimTime::from_hours(5),
                FaultKind::Heal {
                    segment: "cs-net".into(),
                },
            );
        assert!(check_schedule(&plan, &base(), &base(), &cfg(), false).is_empty());
    }

    #[test]
    fn dup_claiming_crashed_nodes_address_masks_liveness() {
        let mut cfg = cfg();
        cfg.node_ips = vec![("piper".to_owned(), Ipv4Addr::new(128, 138, 243, 11))];
        let crash = FaultKind::NodeCrash {
            node: "piper".into(),
        };
        let dup = |ip| FaultKind::DuplicateIp {
            node: "bruno".into(),
            ip,
        };
        // The duplicate takes over piper's address: the crash never
        // goes stale, it surfaces as the duplicate's hardware change.
        let plan = FaultPlan::new()
            .at(
                SimTime::from_hours(2),
                dup(Ipv4Addr::new(128, 138, 243, 11)),
            )
            .at(SimTime::from_hours(5), crash.clone());
        let hw_only = eval([0; 8], [1, 1, 0, 0, 0, 0, 0, 0]);
        assert!(check_schedule(&plan, &base(), &hw_only, &cfg, false).is_empty());
        // A duplicate of an unrelated address masks nothing: the
        // crash's expectation stands.
        let plan = FaultPlan::new()
            .at(
                SimTime::from_hours(2),
                dup(Ipv4Addr::new(128, 138, 243, 99)),
            )
            .at(SimTime::from_hours(5), crash);
        let v = check_schedule(&plan, &base(), &hw_only, &cfg, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, INV_EXPECT_SURFACE);
    }

    #[test]
    fn unexplained_rise_is_a_violation() {
        let plan = FaultPlan::new().at(
            SimTime::from_hours(2),
            FaultKind::WrongMask {
                node: "anchor".into(),
                prefix_len: 16,
            },
        );
        // mask runs after the sweep deadline: allowed but not expected;
        // a clock_skew rise is not explained by a wrong mask.
        let run = eval([0, 0, 0, 0, 0, 0, 0, 2], [1, 0, 0, 0, 0, 0, 0, 0]);
        let v = check_schedule(&plan, &base(), &run, &cfg(), false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, INV_NO_UNEXPLAINED);
        assert!(v[0].detail.contains("clock_skew"), "{}", v[0].detail);
    }

    #[test]
    fn negative_deltas_are_always_legal() {
        let plan = FaultPlan::new().at(
            SimTime::from_hours(2),
            FaultKind::Partition {
                segment: "cs-net".into(),
            },
        );
        // Partition: stale down, routes and silent up.
        let run = eval([0; 8], [0, 0, 0, 0, 0, 1, 1, 0]);
        assert!(check_schedule(&plan, &base(), &run, &cfg(), false).is_empty());
    }

    #[test]
    fn healed_partition_must_not_grow_silent_subnets() {
        let plan = FaultPlan::new()
            .at(
                SimTime::from_hours(2),
                FaultKind::Partition {
                    segment: "cs-net".into(),
                },
            )
            .at(
                SimTime::from_hours(5),
                FaultKind::Heal {
                    segment: "cs-net".into(),
                },
            );
        assert!(check_schedule(&plan, &base(), &base(), &cfg(), false).is_empty());
        let lingering = eval([0; 8], [1, 0, 0, 0, 0, 0, 1, 0]);
        let v = check_schedule(&plan, &base(), &lingering, &cfg(), false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, INV_HEALED_PARTITION);
    }

    #[test]
    fn assert_quiet_flags_any_change() {
        let plan = FaultPlan::new().at(
            SimTime::from_hours(8),
            FaultKind::NodeCrash {
                node: "piper".into(),
            },
        );
        let run = eval([0; 8], [2, 0, 0, 0, 0, 0, 0, 0]);
        let v = check_schedule(&plan, &base(), &run, &cfg(), true);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, INV_ASSERT_QUIET);
    }

    #[test]
    fn explorer_skew_suspends_liveness_expectations() {
        let plan = FaultPlan::new()
            .at(
                SimTime::from_hours(2),
                FaultKind::ClockSkew {
                    node: "bruno".into(),
                    skew_micros: 48 * 3_600_000_000,
                },
            )
            .at(
                SimTime::from_hours(8),
                FaultKind::NodeCrash {
                    node: "piper".into(),
                },
            );
        // Future-stamped records make the crashed host look fresh; the
        // liveness expectation lapses, but skew itself must surface.
        let run = eval([0, 0, 0, 0, 0, 0, 0, 6], [0, 0, 0, 0, 0, 0, 0, 6]);
        assert!(check_schedule(&plan, &base(), &run, &cfg(), false).is_empty());
    }
}
