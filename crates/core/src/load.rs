//! Per-module operational load: Table 4 as a first-class report.
//!
//! The paper's Table 4 characterises each Explorer Module by its
//! network load (packets per second) and completion time. The driver
//! accumulates measured packet counts and busy sim-time per module
//! (from the engine's per-process counters) into a
//! [`ModuleLoadReport`], rendered next to the paper's own numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use fremont_journal::observation::Source;
use fremont_netsim::time::SimDuration;

use crate::registry::info_for;

/// Measured load of one module across its runs so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleLoad {
    /// Runs started.
    pub runs: u64,
    /// Runs retired (completed or killed at retirement).
    pub completed_runs: u64,
    /// IP packets the module's processes originated.
    pub packets_sent: u64,
    /// UDP/ICMP payloads delivered to the module's handlers.
    pub packets_received: u64,
    /// Frames seen through a promiscuous tap (ARPwatch, RIPwatch).
    pub frames_tapped: u64,
    /// Total simulated time the module spent running.
    pub busy: SimDuration,
    /// Sim-time length of the most recently retired run.
    pub last_completion: Option<SimDuration>,
}

impl ModuleLoad {
    /// Whether the module has observably touched the network (sent,
    /// received, or tapped at least one packet).
    pub fn active(&self) -> bool {
        self.packets_sent + self.packets_received + self.frames_tapped > 0
    }

    /// Measured network load in packets per busy second (sent only —
    /// the paper's load column counts traffic a module *injects*).
    pub fn pkts_per_sec(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.packets_sent as f64 / secs
    }
}

/// One rendered row of the Table 4 reproduction.
#[derive(Debug, Clone)]
pub struct ModuleLoadRow {
    /// The module.
    pub source: Source,
    /// Measured counters.
    pub load: ModuleLoad,
    /// Paper's network-load description (Table 4).
    pub paper_network_load: &'static str,
    /// Paper's completion-time description (Table 4).
    pub paper_completion: &'static str,
}

/// Measured per-module load for all eight Explorer Modules.
#[derive(Debug, Clone)]
pub struct ModuleLoadReport {
    /// One row per module, in the paper's Table 3/4 order.
    pub rows: Vec<ModuleLoadRow>,
}

impl ModuleLoadReport {
    /// Builds the report from accumulated loads; modules that never
    /// ran still get a (zeroed) row, so the shape is always 8 rows.
    pub fn new(loads: &BTreeMap<Source, ModuleLoad>) -> Self {
        let rows = Source::EXPLORERS
            .iter()
            .map(|&source| {
                let info = info_for(source);
                ModuleLoadRow {
                    source,
                    load: loads.get(&source).copied().unwrap_or_default(),
                    paper_network_load: info.as_ref().map(|i| i.network_load).unwrap_or("-"),
                    paper_completion: info.as_ref().map(|i| i.time_to_complete).unwrap_or("-"),
                }
            })
            .collect();
        ModuleLoadReport { rows }
    }

    /// Whether every module shows network activity — the acceptance
    /// bar for a full campus exploration.
    pub fn all_modules_active(&self) -> bool {
        self.rows.iter().all(|r| r.load.active())
    }

    /// Renders the report as a fixed-width text table, measured
    /// columns beside the paper's Table 4 descriptions.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<15} {:>5} {:>9} {:>9} {:>9} {:>9} {:>10}  {:<14} paper completion",
            "Module", "runs", "sent", "recv", "tapped", "busy(s)", "pkts/sec", "paper load",
        );
        let _ = writeln!(out, "{}", "-".repeat(108));
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<15} {:>5} {:>9} {:>9} {:>9} {:>9.0} {:>10.2}  {:<14} {}",
                r.source.name(),
                r.load.runs,
                r.load.packets_sent,
                r.load.packets_received,
                r.load.frames_tapped,
                r.load.busy.as_secs_f64(),
                r.load.pkts_per_sec(),
                r.paper_network_load,
                r.paper_completion,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_always_has_eight_rows() {
        let report = ModuleLoadReport::new(&BTreeMap::new());
        assert_eq!(report.rows.len(), 8);
        assert!(!report.all_modules_active());
        let text = report.render();
        assert!(text.contains("ARPwatch"), "{text}");
        assert!(text.contains("DNS"), "{text}");
        assert!(text.contains("paper load"), "{text}");
    }

    #[test]
    fn pkts_per_sec_divides_by_busy_time() {
        let load = ModuleLoad {
            packets_sent: 120,
            busy: SimDuration::from_secs(60),
            ..ModuleLoad::default()
        };
        assert!((load.pkts_per_sec() - 2.0).abs() < 1e-9);
        assert_eq!(ModuleLoad::default().pkts_per_sec(), 0.0);
    }

    #[test]
    fn activity_counts_any_direction() {
        let tapped = ModuleLoad {
            frames_tapped: 1,
            ..ModuleLoad::default()
        };
        assert!(tapped.active());
        assert!(!ModuleLoad::default().active());
    }

    #[test]
    fn rows_carry_paper_descriptions() {
        let report = ModuleLoadReport::new(&BTreeMap::new());
        let dns = report
            .rows
            .iter()
            .find(|r| r.source == Source::Dns)
            .unwrap();
        assert_eq!(dns.paper_network_load, "10 pkts/sec");
    }
}
