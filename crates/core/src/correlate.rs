//! Cross-correlation over the Journal.
//!
//! "The Discovery Manager interrogates the Journal, and compares
//! information discovered from the various Explorer Modules to determine a
//! more complete picture of network characteristics (such as topology)."
//! The flagship example: "the fact that the same Ethernet address is
//! observed by two ARP modules running on different subnets is not
//! significant until that information is written into the Journal. Only
//! then ... can that gateway be discovered."

use std::collections::HashMap;

use fremont_journal::observation::{Fact, Observation, Source};
use fremont_journal::query::InterfaceQuery;
use fremont_journal::store::Journal;
use fremont_net::{MacAddr, Subnet};

/// One derived (cross-correlated) conclusion, ready to store back into the
/// Journal under [`Source::Manager`].
pub fn correlate(journal: &Journal) -> Vec<Observation> {
    let mut out = Vec::new();
    out.extend(gateways_from_shared_macs(journal));
    out.extend(gateways_from_name_groups(journal));
    out
}

/// Same MAC with interfaces on different subnets ⇒ one gateway.
fn gateways_from_shared_macs(journal: &Journal) -> Vec<Observation> {
    let mut by_mac: HashMap<MacAddr, Vec<(std::net::Ipv4Addr, Option<Subnet>)>> = HashMap::new();
    for r in journal.get_interfaces(&InterfaceQuery::all()) {
        if let (Some(mac), Some(ip)) = (r.mac_addr(), r.ip_addr()) {
            by_mac.entry(mac).or_default().push((ip, r.subnet()));
        }
    }
    let mut macs: Vec<MacAddr> = by_mac.keys().copied().collect();
    macs.sort();
    let mut out = Vec::new();
    for mac in macs {
        let entries = &by_mac[&mac];
        if entries.len() < 2 {
            continue;
        }
        // Distinct known subnets among the MAC's addresses. One adapter
        // answering on several *subnets* is a gateway (or proxy-ARP for
        // them, which is still a gateway function); several addresses on
        // one subnet is more likely a reconfiguration and is left to the
        // analysis programs.
        let mut subnets: Vec<Subnet> = entries.iter().filter_map(|(_, s)| *s).collect();
        subnets.sort();
        subnets.dedup();
        if subnets.len() < 2 {
            continue;
        }
        let ips: Vec<std::net::Ipv4Addr> = entries.iter().map(|(ip, _)| *ip).collect();
        out.push(Observation::new(
            Source::Manager,
            Fact::Gateway {
                interface_ips: ips,
                interface_names: vec![],
                subnets,
            },
        ));
    }
    out
}

/// Interfaces sharing a DNS name across subnets ⇒ one gateway (covers the
/// case where the DNS module itself was never run but names arrived from
/// elsewhere).
fn gateways_from_name_groups(journal: &Journal) -> Vec<Observation> {
    let mut by_name: HashMap<String, Vec<(std::net::Ipv4Addr, Option<Subnet>)>> = HashMap::new();
    for r in journal.get_interfaces(&InterfaceQuery::all()) {
        if let (Some(name), Some(ip)) = (r.dns_name(), r.ip_addr()) {
            by_name
                .entry(name.to_owned())
                .or_default()
                .push((ip, r.subnet()));
        }
    }
    let mut names: Vec<String> = by_name.keys().cloned().collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let entries = &by_name[&name];
        let mut ips: Vec<std::net::Ipv4Addr> = entries.iter().map(|(ip, _)| *ip).collect();
        ips.sort_by_key(|ip| u32::from(*ip));
        ips.dedup();
        if ips.len() < 2 {
            continue;
        }
        let mut subnets: Vec<Subnet> = entries.iter().filter_map(|(_, s)| *s).collect();
        subnets.sort();
        subnets.dedup();
        out.push(Observation::new(
            Source::Manager,
            Fact::Gateway {
                interface_ips: ips,
                interface_names: vec![name],
                subnets,
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_journal::time::JTime;
    use fremont_net::SubnetMask;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn mac(s: &str) -> MacAddr {
        s.parse().unwrap()
    }

    #[test]
    fn shared_mac_across_subnets_becomes_gateway() {
        let mut j = Journal::new();
        let m = mac("00:00:0c:01:02:03");
        let mask = SubnetMask::from_prefix_len(24).unwrap();
        // Two ARP watchers on different subnets saw the same adapter.
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.1.0.1"), m),
            JTime(1),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.2.0.1"), m),
            JTime(2),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.1.0.1"), mask),
            JTime(3),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.2.0.1"), mask),
            JTime(3),
        );

        assert!(j.get_gateways().is_empty(), "not yet correlated");
        let derived = correlate(&j);
        assert_eq!(derived.len(), 1);
        let now = JTime(10);
        j.apply_all(derived.iter(), now);
        let gws = j.get_gateways();
        assert_eq!(gws.len(), 1);
        assert_eq!(gws[0].interfaces.len(), 2);
        assert_eq!(gws[0].subnets.len(), 2);
        j.check_invariants().unwrap();
    }

    #[test]
    fn shared_mac_same_subnet_is_not_a_gateway() {
        let mut j = Journal::new();
        let m = mac("08:00:20:01:02:03");
        let mask = SubnetMask::from_prefix_len(24).unwrap();
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.1.0.5"), m),
            JTime(1),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.1.0.6"), m),
            JTime(2),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.1.0.5"), mask),
            JTime(3),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.1.0.6"), mask),
            JTime(3),
        );
        assert!(
            correlate(&j).is_empty(),
            "a renumbered host is not a gateway"
        );
    }

    #[test]
    fn mask_needed_for_mac_correlation() {
        let mut j = Journal::new();
        let m = mac("00:00:0c:01:02:03");
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.1.0.1"), m),
            JTime(1),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.2.0.1"), m),
            JTime(2),
        );
        // Without masks, subnet membership is unknown — no conclusion.
        assert!(correlate(&j).is_empty());
    }

    #[test]
    fn shared_name_becomes_gateway() {
        let mut j = Journal::new();
        j.apply(
            &Observation::named_ip(Source::Dns, ip("10.1.0.1"), "engr-gw"),
            JTime(1),
        );
        j.apply(
            &Observation::named_ip(Source::Dns, ip("10.2.0.1"), "engr-gw"),
            JTime(1),
        );
        let derived = correlate(&j);
        assert_eq!(derived.len(), 1);
        match &derived[0].fact {
            Fact::Gateway {
                interface_ips,
                interface_names,
                ..
            } => {
                assert_eq!(interface_ips.len(), 2);
                assert_eq!(interface_names, &vec!["engr-gw".to_owned()]);
            }
            other => panic!("wrong fact {other:?}"),
        }
    }

    #[test]
    fn correlation_is_idempotent() {
        let mut j = Journal::new();
        let m = mac("00:00:0c:01:02:03");
        let mask = SubnetMask::from_prefix_len(24).unwrap();
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.1.0.1"), m),
            JTime(1),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.2.0.1"), m),
            JTime(2),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.1.0.1"), mask),
            JTime(3),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.2.0.1"), mask),
            JTime(3),
        );
        let d1 = correlate(&j);
        j.apply_all(d1.iter(), JTime(4));
        let d2 = correlate(&j);
        j.apply_all(d2.iter(), JTime(5));
        assert_eq!(j.get_gateways().len(), 1, "re-running never duplicates");
        j.check_invariants().unwrap();
    }
}
