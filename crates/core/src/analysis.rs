//! The analysis programs: uncovering network problems from the Journal.
//!
//! The paper ships two analysis programs — subnet-mask conflicts and
//! MAC/IP address conflicts — and summarizes the problem classes Fremont
//! uncovers in Table 8: IP addresses no longer in use, hardware changes,
//! inconsistent network masks, duplicate address assignments, and
//! promiscuous RIP hosts. This module implements all five detectors over
//! Journal records.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use fremont_journal::query::InterfaceQuery;
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::{MacAddr, Subnet, SubnetMask};

/// A subnet whose interfaces disagree about the mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskConflict {
    /// The (majority-mask) subnet in question.
    pub subnet: Subnet,
    /// Each mask seen on the subnet, with the interfaces reporting it.
    pub masks: Vec<(SubnetMask, Vec<Ipv4Addr>)>,
}

/// Why two records around one address look suspicious.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressConflictKind {
    /// Same IP on two MACs, both recently alive: duplicate assignment.
    DuplicateAssignment,
    /// Same IP on two MACs, the older one long silent: hardware change.
    HardwareChange,
    /// Same MAC answering several IPs: a gateway doing proxy ARP, a
    /// multi-address interface, or a reconfigured system.
    MultipleAddressesOneMac,
}

/// A MAC/IP conflict finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressConflict {
    /// Classification.
    pub kind: AddressConflictKind,
    /// The shared address (IP for duplicate/hw-change, arbitrary member
    /// for one-MAC findings).
    pub ip: Ipv4Addr,
    /// The MACs involved (for MAC-keyed findings, a single entry).
    pub macs: Vec<MacAddr>,
    /// All IPs involved (one for IP-keyed findings).
    pub ips: Vec<Ipv4Addr>,
}

/// An address that has not been seen alive for a long time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleAddress {
    /// The interface's address.
    pub ip: Ipv4Addr,
    /// Its DNS name, when known.
    pub name: Option<String>,
    /// Last time any non-DNS module verified it (`None` = never seen on
    /// the wire at all).
    pub last_live: Option<JTime>,
}

/// A host flagged as a promiscuous RIP rebroadcaster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromiscuousRipHost {
    /// The offending interface address.
    pub ip: Ipv4Addr,
    /// Its MAC, when known.
    pub mac: Option<MacAddr>,
}

/// Finds subnets whose member interfaces report conflicting masks.
pub fn subnet_mask_conflicts(journal: &Journal) -> Vec<MaskConflict> {
    // Group mask-bearing interfaces by the subnet implied by the
    // *majority* mask on their wire segment. We bucket by each record's
    // own subnet and then merge buckets that overlap.
    let mut by_mask_subnet: HashMap<Subnet, Vec<(SubnetMask, Ipv4Addr)>> = HashMap::new();
    for rec in journal.get_interfaces(&InterfaceQuery::all()) {
        let (Some(ip), Some(mask)) = (rec.ip_addr(), rec.subnet_mask()) else {
            continue;
        };
        // Bucket under every plausible containing subnet so that a /16
        // mask on a /24 wire lands in the same bucket as its neighbors.
        let own = Subnet::containing(ip, mask);
        by_mask_subnet.entry(own).or_default().push((mask, ip));
    }

    // A conflict is reported once per *wire* — keyed by the narrowest
    // claimed subnet — and only involves interfaces whose own addresses
    // fall on that wire. (A host claiming /16 on a /24 wire conflicts with
    // its actual /24 neighbors, not with every /24 of the class B.)
    let mut out = Vec::new();
    let subnets: Vec<Subnet> = by_mask_subnet.keys().copied().collect();
    for &s in &subnets {
        // Only anchor at the narrowest buckets.
        if subnets.iter().any(|t| *t != s && s.contains_subnet(t)) {
            continue;
        }
        let mut masks: HashMap<SubnetMask, Vec<Ipv4Addr>> = HashMap::new();
        for t in &subnets {
            if !(t.contains_subnet(&s) || *t == s) {
                continue;
            }
            for (m, ip) in &by_mask_subnet[t] {
                // Wider-bucket interfaces join only when their address is
                // actually on this wire.
                if s.contains(*ip) {
                    masks.entry(*m).or_default().push(*ip);
                }
            }
        }
        if masks.len() > 1 {
            let mut masks: Vec<(SubnetMask, Vec<Ipv4Addr>)> = masks
                .into_iter()
                .map(|(m, mut ips)| {
                    ips.sort_by_key(|ip| u32::from(*ip));
                    (m, ips)
                })
                .collect();
            masks.sort_by_key(|(m, _)| std::cmp::Reverse(m.prefix_len()));
            out.push(MaskConflict { subnet: s, masks });
        }
    }
    out.sort_by_key(|c| c.subnet);
    out
}

/// Finds MAC/IP conflicts: duplicate addresses, hardware changes, and
/// multi-address MACs.
///
/// Two MACs claiming one IP are a *duplicate assignment* when their
/// liveness intervals overlap: the earlier record was still being seen
/// alive at least `min_overlap` seconds after the later one appeared.
/// Otherwise the address simply moved to new hardware (the old adapter
/// went quiet around when the new one showed up).
pub fn address_conflicts(journal: &Journal, now: JTime, min_overlap: u64) -> Vec<AddressConflict> {
    let _ = now;
    let records = journal.get_interfaces(&InterfaceQuery::all());
    let mut out = Vec::new();

    // Same IP, several MACs.
    let mut by_ip: HashMap<Ipv4Addr, Vec<&fremont_journal::records::InterfaceRecord>> =
        HashMap::new();
    for r in &records {
        if let (Some(ip), Some(_)) = (r.ip_addr(), r.mac_addr()) {
            by_ip.entry(ip).or_default().push(r);
        }
    }
    let mut ips: Vec<_> = by_ip.keys().copied().collect();
    ips.sort_by_key(|ip| u32::from(*ip));
    for ip in ips {
        let group = &by_ip[&ip];
        if group.len() < 2 {
            continue;
        }
        // Order by appearance; overlapping live intervals = duplicate.
        let mut by_age: Vec<_> = group.clone();
        by_age.sort_by_key(|r| r.discovered);
        // Overlap test: some earlier claimant was seen alive well after a
        // later claimant appeared.
        let mut overlap = false;
        'outer: for (i, older) in by_age.iter().enumerate() {
            let Some(older_live) = older.live_verified else {
                continue;
            };
            for newer in &by_age[i + 1..] {
                if newer.live_verified.is_some()
                    && older_live.as_secs() >= newer.discovered.as_secs() + min_overlap
                {
                    overlap = true;
                    break 'outer;
                }
            }
        }
        let kind = if overlap {
            AddressConflictKind::DuplicateAssignment
        } else {
            AddressConflictKind::HardwareChange
        };
        let mut macs: Vec<MacAddr> = group.iter().filter_map(|r| r.mac_addr()).collect();
        macs.sort();
        macs.dedup();
        if macs.len() < 2 {
            continue;
        }
        out.push(AddressConflict {
            kind,
            ip,
            macs,
            ips: vec![ip],
        });
    }

    // Same MAC, several IPs.
    let mut by_mac: HashMap<MacAddr, Vec<Ipv4Addr>> = HashMap::new();
    for r in &records {
        if let (Some(ip), Some(mac)) = (r.ip_addr(), r.mac_addr()) {
            let v = by_mac.entry(mac).or_default();
            if !v.contains(&ip) {
                v.push(ip);
            }
        }
    }
    let mut macs: Vec<_> = by_mac.keys().copied().collect();
    macs.sort();
    for mac in macs {
        let ips = &by_mac[&mac];
        if ips.len() < 2 {
            continue;
        }
        let mut ips = ips.clone();
        ips.sort_by_key(|ip| u32::from(*ip));
        out.push(AddressConflict {
            kind: AddressConflictKind::MultipleAddressesOneMac,
            ip: ips[0],
            macs: vec![mac],
            ips,
        });
    }
    out
}

/// Finds addresses that look abandoned: known interfaces whose last
/// live (non-DNS) verification is older than `threshold` seconds.
///
/// "We can see when hosts have been removed from the network. ... A
/// network manager can observe this, and then contact the owner of the
/// missing host to verify that the network address can be reused."
///
/// The detector is *coverage-aware*: an address only counts as abandoned
/// when its own subnet demonstrably kept being watched — some other
/// interface there was live-verified within the horizon. Silence on a
/// subnet Fremont has not re-swept means "unmonitored", not "gone".
pub fn stale_addresses(journal: &Journal, now: JTime, threshold: u64) -> Vec<StaleAddress> {
    let cutoff = JTime(now.as_secs().saturating_sub(threshold));
    let default_mask = SubnetMask::from_prefix_len(24).expect("24 valid");

    // Coverage evidence per subnet: how many of its known interfaces were
    // live-verified within the horizon, out of how many exist. One fresh
    // router reply does not make a subnet "watched"; a sweep does.
    let mut coverage: HashMap<Subnet, (usize, usize)> = HashMap::new();
    for r in journal.get_interfaces(&InterfaceQuery::all()) {
        let Some(ip) = r.ip_addr() else { continue };
        let subnet = Subnet::containing(ip, r.subnet_mask().unwrap_or(default_mask));
        let e = coverage.entry(subnet).or_insert((0, 0));
        e.1 += 1;
        if r.live_verified.map(|lv| lv >= cutoff).unwrap_or(false) {
            e.0 += 1;
        }
    }

    let q = InterfaceQuery {
        live_verified_before: Some(cutoff),
        ..Default::default()
    };
    let mut out: Vec<StaleAddress> = journal
        .get_interfaces(&q)
        .into_iter()
        .filter_map(|r| {
            let ip = r.ip_addr()?;
            let subnet = Subnet::containing(ip, r.subnet_mask().unwrap_or(default_mask));
            let (fresh, total) = coverage.get(&subnet).copied().unwrap_or((0, 0));
            // A once-alive host needs the subnet re-swept (half fresh); a
            // never-alive (DNS-only) entry needs *strong* coverage — a
            // couple of traceroute replies on an otherwise unswept subnet
            // say nothing about a host that never answered.
            let watched = if r.live_verified.is_some() {
                fresh * 2 >= total
            } else {
                fresh >= 3 && fresh * 2 > total
            };
            if !watched {
                return None;
            }
            Some(StaleAddress {
                ip,
                name: r.dns_name().map(str::to_owned),
                last_live: r.live_verified,
            })
        })
        .collect();
    out.sort_by_key(|s| u32::from(s.ip));
    out
}

/// Finds hosts flagged as promiscuous RIP sources.
pub fn promiscuous_rip_hosts(journal: &Journal) -> Vec<PromiscuousRipHost> {
    let q = InterfaceQuery {
        rip_source: Some(true),
        ..Default::default()
    };
    let mut out: Vec<PromiscuousRipHost> = journal
        .get_interfaces(&q)
        .into_iter()
        .filter(|r| r.rip_promiscuous)
        .filter_map(|r| {
            Some(PromiscuousRipHost {
                ip: r.ip_addr()?,
                mac: r.mac_addr(),
            })
        })
        .collect();
    out.sort_by_key(|p| u32::from(p.ip));
    out.dedup();
    out
}

/// The full Table 8 report.
#[derive(Debug, Clone, Default)]
pub struct ProblemReport {
    /// "IP Addresses No Longer in Use".
    pub stale: Vec<StaleAddress>,
    /// "Hardware Changes".
    pub hardware_changes: Vec<AddressConflict>,
    /// "Inconsistent Network Masks".
    pub mask_conflicts: Vec<MaskConflict>,
    /// "Duplicate Address Assignments".
    pub duplicates: Vec<AddressConflict>,
    /// "Promiscuous RIP Hosts".
    pub promiscuous: Vec<PromiscuousRipHost>,
}

impl ProblemReport {
    /// Runs every detector.
    ///
    /// `stale_after` — seconds without live verification before an address
    /// counts as abandoned; `min_overlap` — minimum observed coexistence
    /// (seconds) separating duplicates from hardware changes.
    pub fn generate(journal: &Journal, now: JTime, stale_after: u64, min_overlap: u64) -> Self {
        let conflicts = address_conflicts(journal, now, min_overlap);
        let (dups, hw): (Vec<_>, Vec<_>) = conflicts
            .into_iter()
            .filter(|c| c.kind != AddressConflictKind::MultipleAddressesOneMac)
            .partition(|c| c.kind == AddressConflictKind::DuplicateAssignment);
        ProblemReport {
            stale: stale_addresses(journal, now, stale_after),
            hardware_changes: hw,
            mask_conflicts: subnet_mask_conflicts(journal),
            duplicates: dups,
            promiscuous: promiscuous_rip_hosts(journal),
        }
    }

    /// Total findings.
    pub fn total(&self) -> usize {
        self.stale.len()
            + self.hardware_changes.len()
            + self.mask_conflicts.len()
            + self.duplicates.len()
            + self.promiscuous.len()
    }
}

impl std::fmt::Display for ProblemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Problems Uncovered ({} findings)", self.total())?;
        writeln!(f, "  IP addresses no longer in use: {}", self.stale.len())?;
        for s in &self.stale {
            writeln!(
                f,
                "    {} ({}) last seen alive: {}",
                s.ip,
                s.name.as_deref().unwrap_or("unnamed"),
                s.last_live
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "never".to_owned())
            )?;
        }
        writeln!(f, "  Hardware changes: {}", self.hardware_changes.len())?;
        for c in &self.hardware_changes {
            writeln!(f, "    {} moved across MACs {:?}", c.ip, c.macs)?;
        }
        writeln!(
            f,
            "  Inconsistent network masks: {}",
            self.mask_conflicts.len()
        )?;
        for c in &self.mask_conflicts {
            writeln!(f, "    {}: {} distinct masks", c.subnet, c.masks.len())?;
        }
        writeln!(
            f,
            "  Duplicate address assignments: {}",
            self.duplicates.len()
        )?;
        for c in &self.duplicates {
            writeln!(f, "    {} claimed by MACs {:?}", c.ip, c.macs)?;
        }
        writeln!(f, "  Promiscuous RIP hosts: {}", self.promiscuous.len())?;
        for p in &self.promiscuous {
            writeln!(f, "    {}", p.ip)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_journal::observation::{Fact, Observation, Source};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn mac(s: &str) -> MacAddr {
        s.parse().unwrap()
    }

    fn mask(n: u8) -> SubnetMask {
        SubnetMask::from_prefix_len(n).unwrap()
    }

    #[test]
    fn detects_duplicate_assignment() {
        let mut j = Journal::new();
        // Both adapters keep answering ARP for the same address.
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(100),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("00:00:0c:00:00:02")),
            JTime(110),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(4000),
        );
        let found = address_conflicts(&j, JTime(4100), 3600);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AddressConflictKind::DuplicateAssignment);
        assert_eq!(found[0].macs.len(), 2);
    }

    #[test]
    fn detects_hardware_change() {
        let mut j = Journal::new();
        // Old adapter seen early, then silent; new one seen recently.
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(100),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("00:00:0c:00:00:02")),
            JTime::from_days(30),
        );
        let now = JTime::from_days(30) + 60;
        let found = address_conflicts(&j, now, 3600);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AddressConflictKind::HardwareChange);
    }

    #[test]
    fn detects_proxy_arp_style_mac() {
        let mut j = Journal::new();
        let m = mac("00:00:0c:aa:bb:cc");
        for i in 1..=3u8 {
            j.apply(
                &Observation::arp_pair(Source::EtherHostProbe, Ipv4Addr::new(10, 0, 0, i), m),
                JTime(1),
            );
        }
        let found = address_conflicts(&j, JTime(10), 3600);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AddressConflictKind::MultipleAddressesOneMac);
        assert_eq!(found[0].ips.len(), 3);
    }

    #[test]
    fn detects_mask_conflict() {
        let mut j = Journal::new();
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.1.5"), mask(24)),
            JTime(1),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.1.6"), mask(24)),
            JTime(1),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.1.7"), mask(16)),
            JTime(1),
        );
        let found = subnet_mask_conflicts(&j);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].subnet, "10.0.1.0/24".parse().unwrap());
        assert_eq!(found[0].masks.len(), 2);
        // Majority mask listed first (narrower first by our ordering).
        assert_eq!(found[0].masks[0].0, mask(24));
        assert_eq!(found[0].masks[0].1.len(), 2);
    }

    #[test]
    fn no_conflict_when_masks_agree() {
        let mut j = Journal::new();
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.1.5"), mask(24)),
            JTime(1),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.2.5"), mask(24)),
            JTime(1),
        );
        assert!(subnet_mask_conflicts(&j).is_empty());
    }

    #[test]
    fn detects_stale_addresses() {
        let mut j = Journal::new();
        // Seen alive early, then only DNS keeps mentioning it.
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.7")),
            JTime::from_days(1),
        );
        j.apply(
            &Observation::named_ip(Source::Dns, ip("10.0.0.7"), "ghost.cs"),
            JTime::from_days(20),
        );
        // A healthy interface for contrast.
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.8")),
            JTime::from_days(20),
        );
        let now = JTime::from_days(21);
        let stale = stale_addresses(&j, now, 7 * 86400);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].ip, ip("10.0.0.7"));
        assert_eq!(stale[0].name.as_deref(), Some("ghost.cs"));
        assert_eq!(stale[0].last_live, Some(JTime::from_days(1)));
    }

    #[test]
    fn dns_only_ghost_is_stale_with_never() {
        let mut j = Journal::new();
        j.apply(
            &Observation::named_ip(Source::Dns, ip("10.0.0.70"), "never.cs"),
            JTime::from_days(20),
        );
        // Unwatched subnet: the ghost is NOT reported (no coverage).
        assert!(stale_addresses(&j, JTime::from_days(21), 86400).is_empty());
        // Several recently-verified neighbors prove the subnet is being
        // swept; only then is the never-seen entry reportable.
        for h in [71u8, 72, 73] {
            j.apply(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 0, h)),
                JTime::from_days(21),
            );
        }
        let stale = stale_addresses(&j, JTime::from_days(21), 86400);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].last_live, None);
    }

    #[test]
    fn detects_promiscuous_rip() {
        let mut j = Journal::new();
        j.apply(
            &Observation::new(
                Source::RipWatch,
                Fact::RipSource {
                    ip: ip("10.0.0.1"),
                    mac: None,
                    advertised_routes: 10,
                    promiscuous: false,
                },
            ),
            JTime(1),
        );
        j.apply(
            &Observation::new(
                Source::RipWatch,
                Fact::RipSource {
                    ip: ip("10.0.0.2"),
                    mac: Some(mac("08:00:20:00:00:09")),
                    advertised_routes: 10,
                    promiscuous: true,
                },
            ),
            JTime(1),
        );
        let found = promiscuous_rip_hosts(&j);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].ip, ip("10.0.0.2"));
    }

    #[test]
    fn full_report_renders() {
        let mut j = Journal::new();
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(100),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("00:00:0c:00:00:02")),
            JTime(110),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(9000),
        );
        let report = ProblemReport::generate(&j, JTime(9100), 86400, 3600);
        assert_eq!(report.duplicates.len(), 1);
        let text = report.to_string();
        assert!(text.contains("Duplicate address assignments: 1"));
        assert!(report.total() >= 1);
    }
}
