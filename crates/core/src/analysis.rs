//! The analysis programs: uncovering network problems from the Journal.
//!
//! The paper ships two analysis programs — subnet-mask conflicts and
//! MAC/IP address conflicts — and summarizes the problem classes Fremont
//! uncovers in Table 8: IP addresses no longer in use, hardware changes,
//! inconsistent network masks, duplicate address assignments, and
//! promiscuous RIP hosts. This module implements all five detectors over
//! Journal records.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use fremont_journal::query::InterfaceQuery;
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::{MacAddr, Subnet, SubnetMask};
use fremont_telemetry::Telemetry;

/// A subnet whose interfaces disagree about the mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskConflict {
    /// The (majority-mask) subnet in question.
    pub subnet: Subnet,
    /// Each mask seen on the subnet, with the interfaces reporting it.
    pub masks: Vec<(SubnetMask, Vec<Ipv4Addr>)>,
}

/// Why two records around one address look suspicious.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressConflictKind {
    /// Same IP on two MACs, both recently alive: duplicate assignment.
    DuplicateAssignment,
    /// Same IP on two MACs, the older one long silent: hardware change.
    HardwareChange,
    /// Same MAC answering several IPs: a gateway doing proxy ARP, a
    /// multi-address interface, or a reconfigured system.
    MultipleAddressesOneMac,
}

/// A MAC/IP conflict finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressConflict {
    /// Classification.
    pub kind: AddressConflictKind,
    /// The shared address (IP for duplicate/hw-change, arbitrary member
    /// for one-MAC findings).
    pub ip: Ipv4Addr,
    /// The MACs involved (for MAC-keyed findings, a single entry).
    pub macs: Vec<MacAddr>,
    /// All IPs involved (one for IP-keyed findings).
    pub ips: Vec<Ipv4Addr>,
}

/// An address that has not been seen alive for a long time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleAddress {
    /// The interface's address.
    pub ip: Ipv4Addr,
    /// Its DNS name, when known.
    pub name: Option<String>,
    /// Last time any non-DNS module verified it (`None` = never seen on
    /// the wire at all).
    pub last_live: Option<JTime>,
}

/// A host flagged as a promiscuous RIP rebroadcaster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromiscuousRipHost {
    /// The offending interface address.
    pub ip: Ipv4Addr,
    /// Its MAC, when known.
    pub mac: Option<MacAddr>,
}

/// A gateway whose routes look stale: it was seen forwarding once, but
/// none of its known interfaces has answered anything for a long time —
/// hosts still point default routes at a dead box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleRoute {
    /// Interface addresses of the silent gateway.
    pub gateway_ips: Vec<Ipv4Addr>,
    /// Subnets the journal believes it connects (the blast radius).
    pub subnets: Vec<Subnet>,
    /// The most recent live verification across all its interfaces.
    pub last_live: JTime,
}

/// A subnet that went quiet wholesale: several interfaces there were
/// once verified on the wire, and now none of them answers. One dead
/// host is a stale address; a whole silent population is a partitioned
/// segment or a downed uplink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SilentSubnet {
    /// The quiet subnet.
    pub subnet: Subnet,
    /// Interfaces there that were once seen alive.
    pub once_live: usize,
    /// The most recent live verification anywhere on the subnet.
    pub last_live: JTime,
}

/// An interface whose journal timestamps run *ahead of the present* —
/// impossible unless the reporting host's clock is skewed, since every
/// legitimate observation is stamped at or before the store time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockSkewSuspect {
    /// The interface's address, when known.
    pub ip: Option<Ipv4Addr>,
    /// Its DNS name, when known.
    pub name: Option<String>,
    /// The offending (future) timestamp.
    pub seen_at: JTime,
    /// How far ahead of `now` the timestamp is, in seconds.
    pub ahead_secs: u64,
}

/// Finds subnets whose member interfaces report conflicting masks.
pub fn subnet_mask_conflicts(journal: &Journal) -> Vec<MaskConflict> {
    // Group mask-bearing interfaces by the subnet implied by the
    // *majority* mask on their wire segment. We bucket by each record's
    // own subnet and then merge buckets that overlap.
    let mut by_mask_subnet: HashMap<Subnet, Vec<(SubnetMask, Ipv4Addr)>> = HashMap::new();
    for rec in journal.get_interfaces(&InterfaceQuery::all()) {
        let (Some(ip), Some(mask)) = (rec.ip_addr(), rec.subnet_mask()) else {
            continue;
        };
        // Bucket under every plausible containing subnet so that a /16
        // mask on a /24 wire lands in the same bucket as its neighbors.
        let own = Subnet::containing(ip, mask);
        by_mask_subnet.entry(own).or_default().push((mask, ip));
    }

    // A conflict is reported once per *wire* — keyed by the narrowest
    // claimed subnet — and only involves interfaces whose own addresses
    // fall on that wire. (A host claiming /16 on a /24 wire conflicts with
    // its actual /24 neighbors, not with every /24 of the class B.)
    let mut out = Vec::new();
    let subnets: Vec<Subnet> = by_mask_subnet.keys().copied().collect();
    for &s in &subnets {
        // Only anchor at the narrowest buckets.
        if subnets.iter().any(|t| *t != s && s.contains_subnet(t)) {
            continue;
        }
        let mut masks: HashMap<SubnetMask, Vec<Ipv4Addr>> = HashMap::new();
        for t in &subnets {
            if !(t.contains_subnet(&s) || *t == s) {
                continue;
            }
            for (m, ip) in &by_mask_subnet[t] {
                // Wider-bucket interfaces join only when their address is
                // actually on this wire.
                if s.contains(*ip) {
                    masks.entry(*m).or_default().push(*ip);
                }
            }
        }
        if masks.len() > 1 {
            let mut masks: Vec<(SubnetMask, Vec<Ipv4Addr>)> = masks
                .into_iter()
                .map(|(m, mut ips)| {
                    ips.sort_by_key(|ip| u32::from(*ip));
                    (m, ips)
                })
                .collect();
            masks.sort_by_key(|(m, _)| std::cmp::Reverse(m.prefix_len()));
            out.push(MaskConflict { subnet: s, masks });
        }
    }
    out.sort_by_key(|c| c.subnet);
    out
}

/// Finds MAC/IP conflicts: duplicate addresses, hardware changes, and
/// multi-address MACs.
///
/// Two MACs claiming one IP are a *duplicate assignment* when their
/// liveness intervals overlap: the earlier record was still being seen
/// alive at least `min_overlap` seconds after the later one appeared.
/// Otherwise the address simply moved to new hardware (the old adapter
/// went quiet around when the new one showed up).
pub fn address_conflicts(journal: &Journal, now: JTime, min_overlap: u64) -> Vec<AddressConflict> {
    let _ = now;
    let records = journal.get_interfaces(&InterfaceQuery::all());
    let mut out = Vec::new();

    // Same IP, several MACs.
    let mut by_ip: HashMap<Ipv4Addr, Vec<&fremont_journal::records::InterfaceRecord>> =
        HashMap::new();
    for r in &records {
        if let (Some(ip), Some(_)) = (r.ip_addr(), r.mac_addr()) {
            by_ip.entry(ip).or_default().push(r);
        }
    }
    let mut ips: Vec<_> = by_ip.keys().copied().collect();
    ips.sort_by_key(|ip| u32::from(*ip));
    for ip in ips {
        let group = &by_ip[&ip];
        if group.len() < 2 {
            continue;
        }
        // Order by appearance; overlapping live intervals = duplicate.
        let mut by_age: Vec<_> = group.clone();
        by_age.sort_by_key(|r| r.discovered);
        // Overlap test: some earlier claimant was seen alive well after a
        // later claimant appeared.
        let mut overlap = false;
        'outer: for (i, older) in by_age.iter().enumerate() {
            let Some(older_live) = older.live_verified else {
                continue;
            };
            for newer in &by_age[i + 1..] {
                if newer.live_verified.is_some()
                    && older_live.as_secs() >= newer.discovered.as_secs() + min_overlap
                {
                    overlap = true;
                    break 'outer;
                }
            }
        }
        let kind = if overlap {
            AddressConflictKind::DuplicateAssignment
        } else {
            AddressConflictKind::HardwareChange
        };
        let mut macs: Vec<MacAddr> = group.iter().filter_map(|r| r.mac_addr()).collect();
        macs.sort();
        macs.dedup();
        if macs.len() < 2 {
            continue;
        }
        out.push(AddressConflict {
            kind,
            ip,
            macs,
            ips: vec![ip],
        });
    }

    // Same MAC, several IPs.
    let mut by_mac: HashMap<MacAddr, Vec<Ipv4Addr>> = HashMap::new();
    for r in &records {
        if let (Some(ip), Some(mac)) = (r.ip_addr(), r.mac_addr()) {
            let v = by_mac.entry(mac).or_default();
            if !v.contains(&ip) {
                v.push(ip);
            }
        }
    }
    let mut macs: Vec<_> = by_mac.keys().copied().collect();
    macs.sort();
    for mac in macs {
        let ips = &by_mac[&mac];
        if ips.len() < 2 {
            continue;
        }
        let mut ips = ips.clone();
        ips.sort_by_key(|ip| u32::from(*ip));
        out.push(AddressConflict {
            kind: AddressConflictKind::MultipleAddressesOneMac,
            ip: ips[0],
            macs: vec![mac],
            ips,
        });
    }
    out
}

/// Finds addresses that look abandoned: known interfaces whose last
/// live (non-DNS) verification is older than `threshold` seconds.
///
/// "We can see when hosts have been removed from the network. ... A
/// network manager can observe this, and then contact the owner of the
/// missing host to verify that the network address can be reused."
///
/// The detector is *coverage-aware*: an address only counts as abandoned
/// when its own subnet demonstrably kept being watched — some other
/// interface there was live-verified within the horizon. Silence on a
/// subnet Fremont has not re-swept means "unmonitored", not "gone".
pub fn stale_addresses(journal: &Journal, now: JTime, threshold: u64) -> Vec<StaleAddress> {
    let cutoff = JTime(now.as_secs().saturating_sub(threshold));
    let default_mask = SubnetMask::CLASS_C;

    // Coverage evidence per subnet: how many of its known interfaces were
    // live-verified within the horizon, out of how many exist. One fresh
    // router reply does not make a subnet "watched"; a sweep does.
    let mut coverage: HashMap<Subnet, (usize, usize)> = HashMap::new();
    for r in journal.get_interfaces(&InterfaceQuery::all()) {
        let Some(ip) = r.ip_addr() else { continue };
        let subnet = Subnet::containing(ip, r.subnet_mask().unwrap_or(default_mask));
        let e = coverage.entry(subnet).or_insert((0, 0));
        e.1 += 1;
        if r.live_verified.map(|lv| lv >= cutoff).unwrap_or(false) {
            e.0 += 1;
        }
    }

    let q = InterfaceQuery {
        live_verified_before: Some(cutoff),
        ..Default::default()
    };
    let mut out: Vec<StaleAddress> = journal
        .get_interfaces(&q)
        .into_iter()
        .filter_map(|r| {
            let ip = r.ip_addr()?;
            let subnet = Subnet::containing(ip, r.subnet_mask().unwrap_or(default_mask));
            let (fresh, total) = coverage.get(&subnet).copied().unwrap_or((0, 0));
            // A once-alive host needs the subnet re-swept (half fresh); a
            // never-alive (DNS-only) entry needs *strong* coverage — a
            // couple of traceroute replies on an otherwise unswept subnet
            // say nothing about a host that never answered.
            let watched = if r.live_verified.is_some() {
                fresh * 2 >= total
            } else {
                fresh >= 3 && fresh * 2 > total
            };
            if !watched {
                return None;
            }
            Some(StaleAddress {
                ip,
                name: r.dns_name().map(str::to_owned),
                last_live: r.live_verified,
            })
        })
        .collect();
    out.sort_by_key(|s| u32::from(s.ip));
    out
}

/// Finds dead gateways: every interface of a known gateway was last
/// live-verified more than `threshold` seconds ago (and at least one
/// ever was). "Fremont can also spot the problem where hosts are using a
/// gateway whose route has become stale" — the router disappeared but
/// everything still routes through it.
pub fn stale_routes(journal: &Journal, now: JTime, threshold: u64) -> Vec<StaleRoute> {
    let cutoff = JTime(now.as_secs().saturating_sub(threshold));
    let mut out = Vec::new();
    for gw in journal.get_gateways() {
        let mut last_live: Option<JTime> = None;
        let mut ips: Vec<Ipv4Addr> = Vec::new();
        for &iface_id in &gw.interfaces {
            let Some(rec) = journal.interface(iface_id) else {
                continue;
            };
            if let Some(ip) = rec.ip_addr() {
                ips.push(ip);
            }
            if let Some(lv) = rec.live_verified {
                last_live = Some(last_live.map_or(lv, |prev: JTime| prev.max(lv)));
            }
        }
        let Some(last) = last_live else {
            // Never seen alive on the wire (e.g. DNS/traceroute-topology
            // knowledge only): silence proves nothing.
            continue;
        };
        if last < cutoff {
            ips.sort_by_key(|ip| u32::from(*ip));
            ips.dedup();
            out.push(StaleRoute {
                gateway_ips: ips,
                subnets: gw.subnets.clone(),
                last_live: last,
            });
        }
    }
    out.sort_by_key(|r| r.gateway_ips.first().map(|ip| u32::from(*ip)));
    out
}

/// Finds subnets that fell silent wholesale: at least `min_members`
/// interfaces were once live-verified there, and *none* of them (nor any
/// neighbor) has been verified within `threshold` seconds.
///
/// This is the complement of the coverage-aware [`stale_addresses`]
/// detector, which deliberately refuses to call individual hosts
/// abandoned when their whole subnet is quiet — whole-subnet silence is
/// its own finding: a partitioned segment or a dead uplink.
pub fn silent_subnets(
    journal: &Journal,
    now: JTime,
    threshold: u64,
    min_members: usize,
) -> Vec<SilentSubnet> {
    let cutoff = JTime(now.as_secs().saturating_sub(threshold));
    let default_mask = SubnetMask::CLASS_C;
    // Per subnet: (once-live count, fresh count, latest live verification).
    let mut by_subnet: HashMap<Subnet, (usize, usize, JTime)> = HashMap::new();
    for r in journal.get_interfaces(&InterfaceQuery::all()) {
        let Some(ip) = r.ip_addr() else { continue };
        let Some(lv) = r.live_verified else { continue };
        let subnet = Subnet::containing(ip, r.subnet_mask().unwrap_or(default_mask));
        let e = by_subnet.entry(subnet).or_insert((0, 0, JTime(0)));
        e.0 += 1;
        if lv >= cutoff {
            e.1 += 1;
        }
        e.2 = e.2.max(lv);
    }
    let mut out: Vec<SilentSubnet> = by_subnet
        .into_iter()
        .filter(|(_, (once_live, fresh, _))| *once_live >= min_members && *fresh == 0)
        .map(|(subnet, (once_live, _, last_live))| SilentSubnet {
            subnet,
            once_live,
            last_live,
        })
        .collect();
    out.sort_by_key(|s| s.subnet);
    out
}

/// Finds interfaces whose records carry timestamps from the future.
///
/// The Journal stamps every record at store time, so a `live_verified`
/// or `discovered` *ahead* of the query's `now` can only come from an
/// observation timestamped by a host whose clock runs fast — the
/// journal-poisoning symptom of a clock-skewed reporter.
pub fn clock_skew_suspects(journal: &Journal, now: JTime) -> Vec<ClockSkewSuspect> {
    let mut out = Vec::new();
    for r in journal.get_interfaces(&InterfaceQuery::all()) {
        let newest = [Some(r.discovered), Some(r.changed), r.live_verified]
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(JTime(0));
        if newest > now {
            out.push(ClockSkewSuspect {
                ip: r.ip_addr(),
                name: r.dns_name().map(str::to_owned),
                seen_at: newest,
                ahead_secs: newest.as_secs() - now.as_secs(),
            });
        }
    }
    out.sort_by_key(|s| (std::cmp::Reverse(s.ahead_secs), s.ip.map(u32::from)));
    out
}

/// Finds hosts flagged as promiscuous RIP sources.
pub fn promiscuous_rip_hosts(journal: &Journal) -> Vec<PromiscuousRipHost> {
    let q = InterfaceQuery {
        rip_source: Some(true),
        ..Default::default()
    };
    let mut out: Vec<PromiscuousRipHost> = journal
        .get_interfaces(&q)
        .into_iter()
        .filter(|r| r.rip_promiscuous)
        .filter_map(|r| {
            Some(PromiscuousRipHost {
                ip: r.ip_addr()?,
                mac: r.mac_addr(),
            })
        })
        .collect();
    out.sort_by_key(|p| u32::from(p.ip));
    out.dedup();
    out
}

/// The full Table 8 report.
#[derive(Debug, Clone, Default)]
pub struct ProblemReport {
    /// "IP Addresses No Longer in Use".
    pub stale: Vec<StaleAddress>,
    /// "Hardware Changes".
    pub hardware_changes: Vec<AddressConflict>,
    /// "Inconsistent Network Masks".
    pub mask_conflicts: Vec<MaskConflict>,
    /// "Duplicate Address Assignments".
    pub duplicates: Vec<AddressConflict>,
    /// "Promiscuous RIP Hosts".
    pub promiscuous: Vec<PromiscuousRipHost>,
    /// Gateways gone silent while hosts still route through them.
    pub stale_routes: Vec<StaleRoute>,
    /// Subnets whose entire once-alive population stopped answering.
    pub silent_subnets: Vec<SilentSubnet>,
    /// Interfaces reported with future timestamps (skewed reporters).
    pub clock_skew: Vec<ClockSkewSuspect>,
}

impl ProblemReport {
    /// Runs every detector.
    ///
    /// `stale_after` — seconds without live verification before an address
    /// counts as abandoned; `min_overlap` — minimum observed coexistence
    /// (seconds) separating duplicates from hardware changes.
    pub fn generate(journal: &Journal, now: JTime, stale_after: u64, min_overlap: u64) -> Self {
        let conflicts = address_conflicts(journal, now, min_overlap);
        let (dups, hw): (Vec<_>, Vec<_>) = conflicts
            .into_iter()
            .filter(|c| c.kind != AddressConflictKind::MultipleAddressesOneMac)
            .partition(|c| c.kind == AddressConflictKind::DuplicateAssignment);
        ProblemReport {
            stale: stale_addresses(journal, now, stale_after),
            hardware_changes: hw,
            mask_conflicts: subnet_mask_conflicts(journal),
            duplicates: dups,
            promiscuous: promiscuous_rip_hosts(journal),
            stale_routes: stale_routes(journal, now, stale_after),
            silent_subnets: silent_subnets(journal, now, stale_after, 3),
            clock_skew: clock_skew_suspects(journal, now),
        }
    }

    /// Total findings.
    pub fn total(&self) -> usize {
        self.stale.len()
            + self.hardware_changes.len()
            + self.mask_conflicts.len()
            + self.duplicates.len()
            + self.promiscuous.len()
            + self.stale_routes.len()
            + self.silent_subnets.len()
            + self.clock_skew.len()
    }
}

/// Publishes a report's per-class finding counts as
/// `fremont_analysis_findings` gauges (labelled by class), so live
/// surfaces — the Introspect RPC, `campus_survey --watch` — can read
/// problem counts out of the exposition. All eight classes are always
/// published (a zero is information), keeping the exposition's line
/// set identical from the first report onward.
pub fn publish_findings(telemetry: &Telemetry, report: &ProblemReport) {
    if !telemetry.enabled() {
        return;
    }
    let classes: [(&str, usize); 8] = [
        ("stale", report.stale.len()),
        ("hardware_change", report.hardware_changes.len()),
        ("mask_conflict", report.mask_conflicts.len()),
        ("duplicate", report.duplicates.len()),
        ("promiscuous_rip", report.promiscuous.len()),
        ("stale_route", report.stale_routes.len()),
        ("silent_subnet", report.silent_subnets.len()),
        ("clock_skew", report.clock_skew.len()),
    ];
    for (class, n) in classes {
        telemetry.gauge_set(
            "fremont_analysis_findings",
            &format!("class=\"{class}\""),
            n as u64,
        );
    }
}

impl std::fmt::Display for ProblemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Problems Uncovered ({} findings)", self.total())?;
        writeln!(f, "  IP addresses no longer in use: {}", self.stale.len())?;
        for s in &self.stale {
            writeln!(
                f,
                "    {} ({}) last seen alive: {}",
                s.ip,
                s.name.as_deref().unwrap_or("unnamed"),
                s.last_live
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "never".to_owned())
            )?;
        }
        writeln!(f, "  Hardware changes: {}", self.hardware_changes.len())?;
        for c in &self.hardware_changes {
            writeln!(f, "    {} moved across MACs {:?}", c.ip, c.macs)?;
        }
        writeln!(
            f,
            "  Inconsistent network masks: {}",
            self.mask_conflicts.len()
        )?;
        for c in &self.mask_conflicts {
            writeln!(f, "    {}: {} distinct masks", c.subnet, c.masks.len())?;
        }
        writeln!(
            f,
            "  Duplicate address assignments: {}",
            self.duplicates.len()
        )?;
        for c in &self.duplicates {
            writeln!(f, "    {} claimed by MACs {:?}", c.ip, c.macs)?;
        }
        writeln!(f, "  Promiscuous RIP hosts: {}", self.promiscuous.len())?;
        for p in &self.promiscuous {
            writeln!(f, "    {}", p.ip)?;
        }
        writeln!(
            f,
            "  Stale routes (dead gateways): {}",
            self.stale_routes.len()
        )?;
        for r in &self.stale_routes {
            writeln!(
                f,
                "    gateway {:?} silent since {} (connects {:?})",
                r.gateway_ips, r.last_live, r.subnets
            )?;
        }
        writeln!(f, "  Silent subnets: {}", self.silent_subnets.len())?;
        for s in &self.silent_subnets {
            writeln!(
                f,
                "    {} ({} once-alive interfaces, last heard {})",
                s.subnet, s.once_live, s.last_live
            )?;
        }
        writeln!(f, "  Clock-skewed reporters: {}", self.clock_skew.len())?;
        for c in &self.clock_skew {
            writeln!(
                f,
                "    {} ({}) stamped {}s in the future",
                c.ip.map(|ip| ip.to_string())
                    .unwrap_or_else(|| "?".to_owned()),
                c.name.as_deref().unwrap_or("unnamed"),
                c.ahead_secs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_journal::observation::{Fact, Observation, Source};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn mac(s: &str) -> MacAddr {
        s.parse().unwrap()
    }

    fn mask(n: u8) -> SubnetMask {
        SubnetMask::from_prefix_len(n).unwrap()
    }

    #[test]
    fn detects_duplicate_assignment() {
        let mut j = Journal::new();
        // Both adapters keep answering ARP for the same address.
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(100),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("00:00:0c:00:00:02")),
            JTime(110),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(4000),
        );
        let found = address_conflicts(&j, JTime(4100), 3600);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AddressConflictKind::DuplicateAssignment);
        assert_eq!(found[0].macs.len(), 2);
    }

    #[test]
    fn detects_hardware_change() {
        let mut j = Journal::new();
        // Old adapter seen early, then silent; new one seen recently.
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(100),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("00:00:0c:00:00:02")),
            JTime::from_days(30),
        );
        let now = JTime::from_days(30) + 60;
        let found = address_conflicts(&j, now, 3600);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AddressConflictKind::HardwareChange);
    }

    #[test]
    fn detects_proxy_arp_style_mac() {
        let mut j = Journal::new();
        let m = mac("00:00:0c:aa:bb:cc");
        for i in 1..=3u8 {
            j.apply(
                &Observation::arp_pair(Source::EtherHostProbe, Ipv4Addr::new(10, 0, 0, i), m),
                JTime(1),
            );
        }
        let found = address_conflicts(&j, JTime(10), 3600);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AddressConflictKind::MultipleAddressesOneMac);
        assert_eq!(found[0].ips.len(), 3);
    }

    #[test]
    fn detects_mask_conflict() {
        let mut j = Journal::new();
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.1.5"), mask(24)),
            JTime(1),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.1.6"), mask(24)),
            JTime(1),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.1.7"), mask(16)),
            JTime(1),
        );
        let found = subnet_mask_conflicts(&j);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].subnet, "10.0.1.0/24".parse().unwrap());
        assert_eq!(found[0].masks.len(), 2);
        // Majority mask listed first (narrower first by our ordering).
        assert_eq!(found[0].masks[0].0, mask(24));
        assert_eq!(found[0].masks[0].1.len(), 2);
    }

    #[test]
    fn no_conflict_when_masks_agree() {
        let mut j = Journal::new();
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.1.5"), mask(24)),
            JTime(1),
        );
        j.apply(
            &Observation::mask(Source::SubnetMasks, ip("10.0.2.5"), mask(24)),
            JTime(1),
        );
        assert!(subnet_mask_conflicts(&j).is_empty());
    }

    #[test]
    fn detects_stale_addresses() {
        let mut j = Journal::new();
        // Seen alive early, then only DNS keeps mentioning it.
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.7")),
            JTime::from_days(1),
        );
        j.apply(
            &Observation::named_ip(Source::Dns, ip("10.0.0.7"), "ghost.cs"),
            JTime::from_days(20),
        );
        // A healthy interface for contrast.
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.8")),
            JTime::from_days(20),
        );
        let now = JTime::from_days(21);
        let stale = stale_addresses(&j, now, 7 * 86400);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].ip, ip("10.0.0.7"));
        assert_eq!(stale[0].name.as_deref(), Some("ghost.cs"));
        assert_eq!(stale[0].last_live, Some(JTime::from_days(1)));
    }

    #[test]
    fn dns_only_ghost_is_stale_with_never() {
        let mut j = Journal::new();
        j.apply(
            &Observation::named_ip(Source::Dns, ip("10.0.0.70"), "never.cs"),
            JTime::from_days(20),
        );
        // Unwatched subnet: the ghost is NOT reported (no coverage).
        assert!(stale_addresses(&j, JTime::from_days(21), 86400).is_empty());
        // Several recently-verified neighbors prove the subnet is being
        // swept; only then is the never-seen entry reportable.
        for h in [71u8, 72, 73] {
            j.apply(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 0, h)),
                JTime::from_days(21),
            );
        }
        let stale = stale_addresses(&j, JTime::from_days(21), 86400);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].last_live, None);
    }

    #[test]
    fn detects_promiscuous_rip() {
        let mut j = Journal::new();
        j.apply(
            &Observation::new(
                Source::RipWatch,
                Fact::RipSource {
                    ip: ip("10.0.0.1"),
                    mac: None,
                    advertised_routes: 10,
                    promiscuous: false,
                },
            ),
            JTime(1),
        );
        j.apply(
            &Observation::new(
                Source::RipWatch,
                Fact::RipSource {
                    ip: ip("10.0.0.2"),
                    mac: Some(mac("08:00:20:00:00:09")),
                    advertised_routes: 10,
                    promiscuous: true,
                },
            ),
            JTime(1),
        );
        let found = promiscuous_rip_hosts(&j);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].ip, ip("10.0.0.2"));
    }

    #[test]
    fn full_report_renders() {
        let mut j = Journal::new();
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(100),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("00:00:0c:00:00:02")),
            JTime(110),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(9000),
        );
        let report = ProblemReport::generate(&j, JTime(9100), 86400, 3600);
        assert_eq!(report.duplicates.len(), 1);
        let text = report.to_string();
        assert!(text.contains("Duplicate address assignments: 1"));
        assert!(report.total() >= 1);
    }

    #[test]
    fn detects_stale_route_for_dead_gateway() {
        let mut j = Journal::new();
        // A gateway with two interfaces, both verified early, then silent.
        j.apply(
            &Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![ip("10.0.1.1"), ip("10.0.2.1")],
                    interface_names: vec![],
                    subnets: vec!["10.0.1.0/24".parse().unwrap()],
                },
            ),
            JTime::from_days(1),
        );
        for g in ["10.0.1.1", "10.0.2.1"] {
            j.apply(
                &Observation::ip_alive(Source::SeqPing, ip(g)),
                JTime::from_days(1),
            );
        }
        // Healthy gateway for contrast, freshly verified.
        j.apply(
            &Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![ip("10.0.3.1")],
                    interface_names: vec![],
                    subnets: vec!["10.0.3.0/24".parse().unwrap()],
                },
            ),
            JTime::from_days(1),
        );
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.3.1")),
            JTime::from_days(20),
        );
        let found = stale_routes(&j, JTime::from_days(21), 7 * 86400);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].gateway_ips.contains(&ip("10.0.1.1")));
        assert_eq!(found[0].last_live, JTime::from_days(1));
    }

    #[test]
    fn gateway_never_live_is_not_a_stale_route() {
        let mut j = Journal::new();
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::Gateway {
                    interface_ips: vec![ip("10.0.9.1")],
                    interface_names: vec![],
                    subnets: vec![],
                },
            ),
            JTime::from_days(1),
        );
        assert!(stale_routes(&j, JTime::from_days(30), 86400).is_empty());
    }

    #[test]
    fn detects_silent_subnet() {
        let mut j = Journal::new();
        // Four hosts verified on day 1, then the whole wire goes dark.
        for h in 10..14u8 {
            j.apply(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 5, h)),
                JTime::from_days(1),
            );
        }
        // A healthy subnet stays fresh.
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.6.10")),
            JTime::from_days(9),
        );
        let found = silent_subnets(&j, JTime::from_days(10), 2 * 86400, 3);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].subnet, "10.0.5.0/24".parse().unwrap());
        assert_eq!(found[0].once_live, 4);
        // And the coverage-aware stale detector stays quiet about those
        // same hosts — whole-subnet silence is not per-host abandonment.
        assert!(stale_addresses(&j, JTime::from_days(10), 2 * 86400)
            .iter()
            .all(|s| !s.ip.octets().starts_with(&[10, 0, 5])));
    }

    #[test]
    fn small_population_is_not_a_silent_subnet() {
        let mut j = Journal::new();
        for h in 10..12u8 {
            j.apply(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 5, h)),
                JTime::from_days(1),
            );
        }
        assert!(silent_subnets(&j, JTime::from_days(10), 86400, 3).is_empty());
    }

    #[test]
    fn detects_clock_skew_suspects() {
        let mut j = Journal::new();
        // A skewed host's observation arrives stamped a day in the future.
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.5")),
            JTime::from_days(11),
        );
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.6")),
            JTime::from_days(10),
        );
        let found = clock_skew_suspects(&j, JTime::from_days(10));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].ip, Some(ip("10.0.0.5")));
        assert_eq!(found[0].ahead_secs, 86400);
        assert!(clock_skew_suspects(&j, JTime::from_days(12)).is_empty());
    }

    #[test]
    fn publish_findings_exports_every_class() {
        let (tel, rec) = fremont_telemetry::Telemetry::recording();
        publish_findings(&tel, &ProblemReport::default());
        let exposition = rec.expose();
        let lines: Vec<&str> = exposition
            .lines()
            .filter(|l| l.starts_with("fremont_analysis_findings{"))
            .collect();
        assert_eq!(lines.len(), 8, "{exposition}");
        assert!(lines.contains(&"fremont_analysis_findings{class=\"stale\"} 0"));
        assert!(lines.contains(&"fremont_analysis_findings{class=\"clock_skew\"} 0"));
    }
}
