//! Span/event tracing: a bounded ring buffer of [`TraceEvent`]s with
//! a JSONL exporter.
//!
//! Events carry sim-derived timestamps and sequential span ids, so a
//! trace is byte-replayable: the same seed produces the same JSONL.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default ring capacity (events) before the oldest are dropped.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One trace record. `kind` is `"span_start"`, `"span_end"`, or
/// `"event"`; `id`/`parent` are span ids with 0 meaning "none".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Timestamp in microseconds of simulated/journal time.
    pub at: u64,
    /// Record kind: `span_start`, `span_end`, or `event`.
    pub kind: String,
    /// Span id this record belongs to (0 for plain events).
    pub id: u64,
    /// Enclosing span id (0 when top-level).
    pub parent: u64,
    /// Metric-style name, e.g. `driver.pump`.
    pub name: String,
    /// Free-form detail (span label, result summary, event payload).
    pub detail: String,
}

/// A bounded, drop-oldest buffer of trace events.
#[derive(Debug)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
    next_span: u64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TraceBuffer {
    /// A buffer holding at most `cap` events (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        TraceBuffer {
            events: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
            next_span: 1,
        }
    }

    /// Allocates the next sequential span id.
    pub fn next_span_id(&mut self) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted to respect the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the buffered events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Serialises the buffer as JSON Lines, oldest-first, one event
    /// per line. Serialisation of these flat records cannot fail, so
    /// unencodable events are skipped defensively rather than panic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            if let Ok(line) = serde_json::to_string(ev) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, name: &str) -> TraceEvent {
        TraceEvent {
            at,
            kind: "event".into(),
            id: 0,
            parent: 0,
            name: name.into(),
            detail: String::new(),
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut b = TraceBuffer::with_capacity(2);
        b.push(ev(1, "a"));
        b.push(ev(2, "b"));
        b.push(ev(3, "c"));
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        let names: Vec<_> = b.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn span_ids_are_sequential_from_one() {
        let mut b = TraceBuffer::default();
        assert_eq!(b.next_span_id(), 1);
        assert_eq!(b.next_span_id(), 2);
        assert_eq!(b.next_span_id(), 3);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut b = TraceBuffer::default();
        b.push(ev(7, "node.up"));
        let text = b.to_jsonl();
        assert_eq!(text.lines().count(), 1);
        let back: TraceEvent = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(back, ev(7, "node.up"));
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let mut b = TraceBuffer::with_capacity(0);
        b.push(ev(1, "a"));
        b.push(ev(2, "b"));
        assert_eq!(b.len(), 1);
        assert_eq!(b.dropped(), 1);
    }
}
