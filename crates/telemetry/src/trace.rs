//! Span/event tracing: a bounded ring buffer of [`TraceEvent`]s with
//! a JSONL exporter and a structural validity checker.
//!
//! Events carry sim-derived timestamps and sequential span ids, so a
//! trace is byte-replayable: the same seed produces the same JSONL.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Default ring capacity (events) before the oldest are dropped.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One trace record. `kind` is `"span_start"`, `"span_end"`,
/// `"event"`, or `"work"`; `id`/`parent` are span ids with 0 meaning
/// "none".
///
/// `trace_id`/`remote_parent` carry cross-process causality: a span
/// that *owns* a distributed trace records its `trace_id` with
/// `remote_parent == 0`; a span opened on behalf of a remote caller
/// records the caller's `trace_id` and the caller-side span id in
/// `remote_parent`. Both are 0 for purely local spans.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Timestamp in microseconds of simulated/journal time.
    pub at: u64,
    /// Record kind: `span_start`, `span_end`, `event`, or `work`.
    pub kind: String,
    /// Span id this record belongs to (0 for plain events).
    pub id: u64,
    /// Enclosing span id (0 when top-level).
    pub parent: u64,
    /// Metric-style name, e.g. `driver.pump`; for `work` records this
    /// is the unit (`observations`, `bytes`, ...).
    pub name: String,
    /// Free-form detail (span label, result summary, event payload);
    /// for `work` records, the decimal amount.
    pub detail: String,
    /// Distributed trace id this span belongs to (0 = local only).
    pub trace_id: u64,
    /// Span id in the *remote* process that caused this span
    /// (0 = no remote cause; this process owns the trace).
    pub remote_parent: u64,
}

/// A bounded, drop-oldest buffer of trace events.
#[derive(Debug)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
    next_span: u64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TraceBuffer {
    /// A buffer holding at most `cap` events (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        TraceBuffer {
            events: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
            next_span: 1,
        }
    }

    /// Allocates the next sequential span id.
    pub fn next_span_id(&mut self) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted to respect the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the buffered events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// The most recent `n` events, oldest-first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).cloned().collect()
    }

    /// Serialises the buffer as JSON Lines, oldest-first, one event
    /// per line. Serialisation of these flat records cannot fail, so
    /// unencodable events are skipped defensively rather than panic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            if let Ok(line) = serde_json::to_string(ev) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// What [`validate`] measured about a structurally sound trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total records examined.
    pub events: usize,
    /// Spans opened (and, since validation passed, closed).
    pub spans: usize,
    /// Deepest nesting level observed (a root span has depth 1).
    pub max_depth: usize,
}

/// Checks the structural invariants every well-formed trace obeys:
///
/// * every `span_start` carries a fresh id, strictly greater than any
///   id started before it;
/// * a span's parent (when non-zero) is open at the time it starts;
/// * every `span_end` matches an open span whose children have all
///   closed already (parents close after children);
/// * `event`/`work` records reference an open span or none;
/// * no span is left open at the end of the stream.
///
/// Returns the first violation as a human-readable message, keyed by
/// the 0-based record index.
pub fn validate<'a, I>(events: I) -> Result<TraceSummary, String>
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    // id -> (parent, open child count, depth)
    let mut open: HashMap<u64, (u64, usize, usize)> = HashMap::new();
    let mut last_id = 0u64;
    let mut summary = TraceSummary::default();
    for (idx, ev) in events.into_iter().enumerate() {
        summary.events += 1;
        match ev.kind.as_str() {
            "span_start" => {
                if ev.id == 0 {
                    return Err(format!("record {idx}: span_start with id 0"));
                }
                if ev.id <= last_id {
                    return Err(format!(
                        "record {idx}: span id {} not greater than prior id {last_id}",
                        ev.id
                    ));
                }
                last_id = ev.id;
                let depth = if ev.parent == 0 {
                    1
                } else {
                    match open.get_mut(&ev.parent) {
                        Some(p) => {
                            p.1 += 1;
                            p.2 + 1
                        }
                        None => {
                            return Err(format!(
                                "record {idx}: span {} starts under parent {} which is not open",
                                ev.id, ev.parent
                            ));
                        }
                    }
                };
                summary.max_depth = summary.max_depth.max(depth);
                summary.spans += 1;
                open.insert(ev.id, (ev.parent, 0, depth));
            }
            "span_end" => {
                let (parent, kids, _) = match open.get(&ev.id) {
                    Some(s) => *s,
                    None => {
                        return Err(format!(
                            "record {idx}: span_end for span {} which is not open",
                            ev.id
                        ));
                    }
                };
                if kids != 0 {
                    return Err(format!(
                        "record {idx}: span {} ends with {kids} child span(s) still open",
                        ev.id
                    ));
                }
                open.remove(&ev.id);
                if parent != 0 {
                    if let Some(p) = open.get_mut(&parent) {
                        p.1 = p.1.saturating_sub(1);
                    }
                }
            }
            "event" => {
                if ev.parent != 0 && !open.contains_key(&ev.parent) {
                    return Err(format!(
                        "record {idx}: event {:?} references parent {} which is not open",
                        ev.name, ev.parent
                    ));
                }
            }
            "work" => {
                if ev.id != 0 && !open.contains_key(&ev.id) {
                    return Err(format!(
                        "record {idx}: work {:?} references span {} which is not open",
                        ev.name, ev.id
                    ));
                }
            }
            other => {
                return Err(format!("record {idx}: unknown record kind {other:?}"));
            }
        }
    }
    if !open.is_empty() {
        let mut ids: Vec<u64> = open.keys().copied().collect();
        ids.sort_unstable();
        return Err(format!(
            "{} span(s) left open at end of trace: {ids:?}",
            ids.len()
        ));
    }
    Ok(summary)
}

/// Parses a JSONL trace export back into events. Lines that do not
/// decode are reported with their 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceEvent>(line) {
            Ok(ev) => out.push(ev),
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, name: &str) -> TraceEvent {
        TraceEvent {
            at,
            kind: "event".into(),
            id: 0,
            parent: 0,
            name: name.into(),
            detail: String::new(),
            trace_id: 0,
            remote_parent: 0,
        }
    }

    fn rec(kind: &str, id: u64, parent: u64) -> TraceEvent {
        TraceEvent {
            at: 1,
            kind: kind.into(),
            id,
            parent,
            name: "s".into(),
            detail: String::new(),
            trace_id: 0,
            remote_parent: 0,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut b = TraceBuffer::with_capacity(2);
        b.push(ev(1, "a"));
        b.push(ev(2, "b"));
        b.push(ev(3, "c"));
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        let names: Vec<_> = b.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn span_ids_are_sequential_from_one() {
        let mut b = TraceBuffer::default();
        assert_eq!(b.next_span_id(), 1);
        assert_eq!(b.next_span_id(), 2);
        assert_eq!(b.next_span_id(), 3);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut b = TraceBuffer::default();
        b.push(ev(7, "node.up"));
        let text = b.to_jsonl();
        assert_eq!(text.lines().count(), 1);
        let back: TraceEvent = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(back, ev(7, "node.up"));
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let mut b = TraceBuffer::with_capacity(0);
        b.push(ev(1, "a"));
        b.push(ev(2, "b"));
        assert_eq!(b.len(), 1);
        assert_eq!(b.dropped(), 1);
    }

    #[test]
    fn tail_returns_most_recent() {
        let mut b = TraceBuffer::default();
        b.push(ev(1, "a"));
        b.push(ev(2, "b"));
        b.push(ev(3, "c"));
        let t = b.tail(2);
        let names: Vec<_> = t.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(b.tail(10).len(), 3);
    }

    #[test]
    fn validate_accepts_nested_balanced_trace() {
        let trace = [
            rec("span_start", 1, 0),
            rec("span_start", 2, 1),
            rec("work", 2, 0),
            rec("span_end", 2, 0),
            rec("event", 0, 1),
            rec("span_end", 1, 0),
        ];
        let s = validate(trace.iter()).unwrap();
        assert_eq!(s.spans, 2);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.events, 6);
    }

    #[test]
    fn validate_rejects_parent_closing_before_child() {
        let trace = [
            rec("span_start", 1, 0),
            rec("span_start", 2, 1),
            rec("span_end", 1, 0),
        ];
        let err = validate(trace.iter()).unwrap_err();
        assert!(err.contains("still open"), "{err}");
    }

    #[test]
    fn validate_rejects_nonmonotonic_ids_and_unknown_spans() {
        let trace = [rec("span_start", 2, 0), rec("span_start", 1, 0)];
        assert!(validate(trace.iter()).unwrap_err().contains("not greater"));
        let trace = [rec("span_end", 5, 0)];
        assert!(validate(trace.iter()).unwrap_err().contains("not open"));
        let trace = [rec("span_start", 1, 0)];
        assert!(validate(trace.iter()).unwrap_err().contains("left open"));
    }

    #[test]
    fn parse_jsonl_reports_bad_lines() {
        let good = "{\"at\":1,\"kind\":\"event\",\"id\":0,\"parent\":0,\"name\":\"x\",\
                    \"detail\":\"\",\"trace_id\":0,\"remote_parent\":0}\n";
        assert_eq!(parse_jsonl(good).unwrap().len(), 1);
        assert!(parse_jsonl("not json\n").unwrap_err().starts_with("line 1"));
    }
}
