//! A deterministic folded-stack profiler over the span stream.
//!
//! Wall-clock profilers answer "where did the time go"; this one
//! answers "where did the *work* go" — work being logical units the
//! sim already counts (sim events, frames, observations, merge ops,
//! WAL bytes, fsyncs). Instrumented code attributes work to its open
//! span via [`TelemetrySink::work`]; the folder charges each amount
//! to the span's full ancestry path. The output is the classic
//! flamegraph "folded" format, one line per stack:
//!
//! ```text
//! observations;driver.pump;driver.drain 412
//! ```
//!
//! with the unit as the root frame, so one file holds a separate
//! flame per unit. Because amounts and span paths derive only from
//! sim state, two same-seed runs fold to byte-identical profiles.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, MutexGuard};

use crate::trace::TraceEvent;
use crate::{SpanId, TelTime, TelemetrySink};

/// Most frames a stack may have; deeper (cyclic) chains are cut.
const MAX_DEPTH: usize = 64;

/// Streaming folder: tracks span ancestry and accumulates `work`
/// amounts per `(unit, stack)` cell.
#[derive(Debug, Default)]
struct Folder {
    /// span id -> (name, parent id); spans are kept after close so
    /// late records still resolve (ids are never reused).
    spans: HashMap<u64, (String, u64)>,
    /// "unit;frame;frame" -> total amount. BTreeMap so rendering is
    /// naturally sorted and deterministic.
    cells: BTreeMap<String, u64>,
}

impl Folder {
    fn see(&mut self, ev: &TraceEvent) {
        match ev.kind.as_str() {
            "span_start" => {
                self.spans.insert(ev.id, (ev.name.clone(), ev.parent));
            }
            "work" => {
                let amount = ev.detail.parse::<u64>().unwrap_or(0);
                if amount == 0 {
                    return;
                }
                let key = self.stack_key(&ev.name, ev.id);
                *self.cells.entry(key).or_insert(0) += amount;
            }
            _ => {}
        }
    }

    /// Builds `unit;root;...;span` for the span's ancestry.
    fn stack_key(&self, unit: &str, span: u64) -> String {
        let mut frames: Vec<&str> = Vec::new();
        let mut cur = span;
        while cur != 0 && frames.len() < MAX_DEPTH {
            match self.spans.get(&cur) {
                Some((name, parent)) => {
                    frames.push(name.as_str());
                    cur = *parent;
                }
                None => {
                    frames.push("(unknown)");
                    break;
                }
            }
        }
        let mut key = String::from(unit);
        for frame in frames.iter().rev() {
            key.push(';');
            key.push_str(frame);
        }
        key
    }
}

/// Renders accumulated cells in folded-stack format, sorted by stack.
fn render_cells(cells: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, amount) in cells {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&amount.to_string());
        out.push('\n');
    }
    out
}

/// Folds an already-captured event stream (e.g. a parsed JSONL trace)
/// into folded-stack text.
pub fn fold_events<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut folder = Folder::default();
    for ev in events {
        folder.see(ev);
    }
    render_cells(&folder.cells)
}

/// A [`TelemetrySink`] that folds the span stream online instead of
/// buffering it: O(open spans + distinct stacks) memory, no trace
/// ring. Attach via [`crate::Telemetry::profiling`] when only the
/// profile is wanted; a [`crate::Recorder`] trace can be folded after
/// the fact with [`fold_events`] instead.
pub struct Profiler {
    inner: Mutex<ProfInner>,
}

struct ProfInner {
    folder: Folder,
    next_span: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler {
            inner: Mutex::new(ProfInner {
                folder: Folder::default(),
                next_span: 1,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ProfInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Renders the profile so far in folded-stack format.
    pub fn render(&self) -> String {
        render_cells(&self.lock().folder.cells)
    }

    /// Number of distinct `(unit, stack)` cells accumulated.
    pub fn cell_count(&self) -> usize {
        self.lock().folder.cells.len()
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("cells", &self.cell_count())
            .finish()
    }
}

impl TelemetrySink for Profiler {
    fn span_start(&self, name: &'static str, label: &str, parent: SpanId, at: TelTime) -> SpanId {
        let _ = (label, at);
        let mut inner = self.lock();
        let id = inner.next_span;
        inner.next_span += 1;
        inner.folder.spans.insert(id, (name.to_string(), parent.0));
        SpanId(id)
    }

    fn work(&self, span: SpanId, unit: &'static str, amount: u64, at: TelTime) {
        let _ = at;
        if amount == 0 {
            return;
        }
        let mut inner = self.lock();
        let key = inner.folder.stack_key(unit, span.0);
        *inner.folder.cells.entry(key).or_insert(0) += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn ev(kind: &str, id: u64, parent: u64, name: &str, detail: &str) -> TraceEvent {
        TraceEvent {
            at: 1,
            kind: kind.into(),
            id,
            parent,
            name: name.into(),
            detail: detail.into(),
            trace_id: 0,
            remote_parent: 0,
        }
    }

    #[test]
    fn folds_work_onto_ancestry_paths() {
        let trace = [
            ev("span_start", 1, 0, "driver.pump", ""),
            ev("span_start", 2, 1, "driver.drain", ""),
            ev("work", 2, 0, "observations", "5"),
            ev("work", 2, 0, "observations", "7"),
            ev("span_end", 2, 0, "", ""),
            ev("work", 1, 0, "merge_ops", "3"),
            ev("span_end", 1, 0, "", ""),
        ];
        let folded = fold_events(trace.iter());
        assert_eq!(
            folded,
            "merge_ops;driver.pump 3\nobservations;driver.pump;driver.drain 12\n"
        );
    }

    #[test]
    fn work_without_span_folds_to_unit_root() {
        let trace = [ev("work", 0, 0, "bytes", "100")];
        assert_eq!(fold_events(trace.iter()), "bytes 100\n");
    }

    #[test]
    fn unparseable_and_zero_amounts_are_skipped() {
        let trace = [
            ev("work", 0, 0, "bytes", "nope"),
            ev("work", 0, 0, "bytes", "0"),
        ];
        assert_eq!(fold_events(trace.iter()), "");
    }

    #[test]
    fn profiler_sink_matches_post_hoc_fold() {
        let (tel, prof) = Telemetry::profiling();
        let root = tel.span_start("sim.run", "", SpanId::NONE, TelTime(0));
        let child = tel.span_start("driver.pump", "", root, TelTime(1));
        tel.work(child, "observations", 9, TelTime(2));
        tel.span_end(child, "", TelTime(3));
        tel.work(root, "sim_events", 4, TelTime(4));
        tel.span_end(root, "", TelTime(5));
        assert_eq!(
            prof.render(),
            "observations;sim.run;driver.pump 9\nsim_events;sim.run 4\n"
        );
    }

    #[test]
    fn unknown_span_reference_is_marked_not_lost() {
        let trace = [ev("work", 99, 0, "bytes", "8")];
        assert_eq!(fold_events(trace.iter()), "bytes;(unknown) 8\n");
    }
}
