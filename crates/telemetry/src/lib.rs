//! Deterministic observability for the Fremont reproduction.
//!
//! The paper evaluates Fremont by its operational footprint (Table 4:
//! per-module network load and completion time), and §5 diagnoses
//! problems by correlating timestamped observations. This crate is the
//! measurement substrate for that: a metrics registry (counters,
//! gauges, fixed-bound histograms) and a span/event tracer.
//!
//! # Determinism contract
//!
//! Nothing in this crate reads a wall clock or an entropy source; the
//! workspace lint (`fremont-lint`) enforces that at the token level.
//! Every timestamp is a [`TelTime`] passed in by the caller, derived
//! from `SimTime` (microseconds) or `JTime` (seconds). Latencies are
//! therefore expressed in *simulated* time or in logical work units
//! (e.g. observations merged per store call), never host time. Span
//! ids are sequential per recorder. The result: two runs with the same
//! seed produce byte-identical trace exports and metric dumps.
//!
//! # Usage
//!
//! Instrumented components hold a cheap [`Telemetry`] handle (a
//! cloneable `Option<Arc<dyn TelemetrySink>>`). The default handle is
//! a no-op — one branch per call, no allocation — so uninstrumented
//! runs pay nothing. [`Telemetry::recording`] attaches a [`Recorder`]
//! that keeps a ring buffer of trace events (JSONL export) and a
//! metrics registry (Prometheus-style text exposition).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod trace;

pub use metrics::{parse_exposition, Registry};
pub use profile::Profiler;
pub use recorder::Recorder;
pub use trace::{TraceBuffer, TraceEvent};

use std::fmt;
use std::sync::Arc;

/// A telemetry timestamp: microseconds of simulated (or journal) time.
///
/// Callers derive this from `SimTime::as_micros()` or from
/// `JTime * 1_000_000`; it is never a wall-clock reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct TelTime(pub u64);

impl TelTime {
    /// A timestamp from whole seconds (journal time).
    pub fn from_secs(secs: u64) -> Self {
        TelTime(secs.saturating_mul(1_000_000))
    }

    /// The raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TelTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

/// Identifier of an open span. `SpanId(0)` is the null span (no-op
/// sinks return it, and it is the "no parent" marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: returned by no-op sinks, used as "no parent".
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real (recorded) span.
    pub fn is_real(self) -> bool {
        self.0 != 0
    }
}

/// Histogram bucket boundary presets. Bounds are `'static` so the
/// registry can validate that repeated observations agree on shape.
pub mod bounds {
    /// Power-of-two logical work units (batch sizes, merge op counts).
    pub const WORK_UNITS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

    /// Simulated durations in microseconds, 1ms .. 1h.
    pub const SIM_MICROS: &[u64] = &[
        1_000,
        10_000,
        100_000,
        1_000_000,
        10_000_000,
        60_000_000,
        600_000_000,
        3_600_000_000,
    ];

    /// Frame/record sizes in bytes.
    pub const BYTES: &[u64] = &[64, 256, 1024, 4096, 16_384, 65_536, 262_144, 1_048_576];
}

/// Where instrumented components send their measurements.
///
/// Every method has a no-op default body so sinks implement only what
/// they care about. Implementations must be internally synchronised
/// (`&self` receivers; the engine and server threads share one sink).
///
/// The `label` argument is a single rendered Prometheus-style pair
/// such as `module="ARPwatch"` — or `""` for an unlabelled series.
pub trait TelemetrySink: Send + Sync {
    /// Adds `delta` to a monotonic counter.
    fn counter_add(&self, name: &'static str, label: &str, delta: u64) {
        let _ = (name, label, delta);
    }

    /// Sets a counter to an absolute value (for publishing totals
    /// accumulated outside the sink, e.g. the sim's event count).
    fn counter_set(&self, name: &'static str, label: &str, value: u64) {
        let _ = (name, label, value);
    }

    /// Sets a gauge.
    fn gauge_set(&self, name: &'static str, label: &str, value: u64) {
        let _ = (name, label, value);
    }

    /// Raises a gauge to `value` if it is below it (high-water marks).
    fn gauge_max(&self, name: &'static str, label: &str, value: u64) {
        let _ = (name, label, value);
    }

    /// Records `value` into a histogram with fixed bucket `bounds`.
    fn observe(&self, name: &'static str, label: &str, bounds: &'static [u64], value: u64) {
        let _ = (name, label, bounds, value);
    }

    /// Opens a span at `at`; returns its id ([`SpanId::NONE`] from
    /// no-op sinks). `parent` nests it under an open span.
    fn span_start(&self, name: &'static str, label: &str, parent: SpanId, at: TelTime) -> SpanId {
        let _ = (name, label, parent, at);
        SpanId::NONE
    }

    /// Closes a span at `at`, attaching a free-form result `detail`.
    fn span_end(&self, span: SpanId, detail: &str, at: TelTime) {
        let _ = (span, detail, at);
    }

    /// Records a point event at `at`, optionally parented to a span.
    fn event(&self, name: &'static str, detail: &str, parent: SpanId, at: TelTime) {
        let _ = (name, detail, parent, at);
    }

    /// Attributes `amount` units of logical work (observations,
    /// bytes, sim events, ...) to an open span. This is the
    /// profiler's raw material: folded stacks sum `work` records by
    /// the span path they landed on.
    fn work(&self, span: SpanId, unit: &'static str, amount: u64, at: TelTime) {
        let _ = (span, unit, amount, at);
    }

    /// Opens a span that participates in a *distributed* trace.
    ///
    /// `trace_id` names the trace; `remote_parent` is the span id in
    /// the remote process that caused this one (0 when this process
    /// owns the trace — e.g. a client-side RPC span). `parent` still
    /// nests the span locally. Defaults to a plain [`span_start`]
    /// (no-op sinks ignore the remote linkage).
    ///
    /// [`span_start`]: TelemetrySink::span_start
    fn span_start_remote(
        &self,
        name: &'static str,
        label: &str,
        parent: SpanId,
        trace_id: u64,
        remote_parent: u64,
        at: TelTime,
    ) -> SpanId {
        let _ = (trace_id, remote_parent);
        self.span_start(name, label, parent, at)
    }

    /// A point-in-time metrics exposition, if this sink records
    /// metrics (`None` from no-op and profile-only sinks).
    fn exposition(&self) -> Option<String> {
        None
    }

    /// The most recent `n` trace events plus the ring's drop count,
    /// if this sink keeps a trace.
    fn trace_tail(&self, n: usize) -> Option<(Vec<TraceEvent>, u64)> {
        let _ = n;
        None
    }
}

/// The always-off sink: every method is the trait default no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl TelemetrySink for Noop {}

/// A cheap, cloneable handle instrumented components hold.
///
/// Default ([`Telemetry::noop`]) carries no sink: each call is a
/// single `Option` branch. [`Telemetry::recording`] attaches a
/// [`Recorder`] and returns it for later export.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl Telemetry {
    /// A disabled handle (the default).
    pub fn noop() -> Self {
        Telemetry { sink: None }
    }

    /// A handle forwarding to `sink`.
    pub fn from_sink(sink: Arc<dyn TelemetrySink>) -> Self {
        Telemetry { sink: Some(sink) }
    }

    /// A handle recording into a fresh [`Recorder`] (default trace
    /// ring capacity), returned alongside for export.
    pub fn recording() -> (Self, Arc<Recorder>) {
        let rec = Arc::new(Recorder::new());
        (Telemetry::from_sink(rec.clone()), rec)
    }

    /// Like [`Telemetry::recording`] with an explicit trace capacity.
    pub fn recording_with_capacity(cap: usize) -> (Self, Arc<Recorder>) {
        let rec = Arc::new(Recorder::with_capacity(cap));
        (Telemetry::from_sink(rec.clone()), rec)
    }

    /// A handle folding spans and work into a [`Profiler`] (no trace
    /// ring, no metrics), returned alongside for rendering.
    pub fn profiling() -> (Self, Arc<Profiler>) {
        let prof = Arc::new(Profiler::new());
        (Telemetry::from_sink(prof.clone()), prof)
    }

    /// Whether a sink is attached. Guard allocation-heavy detail
    /// formatting behind this.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// See [`TelemetrySink::counter_add`].
    pub fn counter_add(&self, name: &'static str, label: &str, delta: u64) {
        if let Some(s) = &self.sink {
            s.counter_add(name, label, delta);
        }
    }

    /// See [`TelemetrySink::counter_set`].
    pub fn counter_set(&self, name: &'static str, label: &str, value: u64) {
        if let Some(s) = &self.sink {
            s.counter_set(name, label, value);
        }
    }

    /// See [`TelemetrySink::gauge_set`].
    pub fn gauge_set(&self, name: &'static str, label: &str, value: u64) {
        if let Some(s) = &self.sink {
            s.gauge_set(name, label, value);
        }
    }

    /// See [`TelemetrySink::gauge_max`].
    pub fn gauge_max(&self, name: &'static str, label: &str, value: u64) {
        if let Some(s) = &self.sink {
            s.gauge_max(name, label, value);
        }
    }

    /// See [`TelemetrySink::observe`].
    pub fn observe(&self, name: &'static str, label: &str, bounds: &'static [u64], value: u64) {
        if let Some(s) = &self.sink {
            s.observe(name, label, bounds, value);
        }
    }

    /// See [`TelemetrySink::span_start`].
    pub fn span_start(
        &self,
        name: &'static str,
        label: &str,
        parent: SpanId,
        at: TelTime,
    ) -> SpanId {
        match &self.sink {
            Some(s) => s.span_start(name, label, parent, at),
            None => SpanId::NONE,
        }
    }

    /// See [`TelemetrySink::span_end`].
    pub fn span_end(&self, span: SpanId, detail: &str, at: TelTime) {
        if let Some(s) = &self.sink {
            s.span_end(span, detail, at);
        }
    }

    /// See [`TelemetrySink::event`].
    pub fn event(&self, name: &'static str, detail: &str, parent: SpanId, at: TelTime) {
        if let Some(s) = &self.sink {
            s.event(name, detail, parent, at);
        }
    }

    /// See [`TelemetrySink::work`]. Zero amounts are elided: they
    /// carry no cost information and would only bloat the trace.
    pub fn work(&self, span: SpanId, unit: &'static str, amount: u64, at: TelTime) {
        if amount == 0 {
            return;
        }
        if let Some(s) = &self.sink {
            s.work(span, unit, amount, at);
        }
    }

    /// See [`TelemetrySink::span_start_remote`].
    pub fn span_start_remote(
        &self,
        name: &'static str,
        label: &str,
        parent: SpanId,
        trace_id: u64,
        remote_parent: u64,
        at: TelTime,
    ) -> SpanId {
        match &self.sink {
            Some(s) => s.span_start_remote(name, label, parent, trace_id, remote_parent, at),
            None => SpanId::NONE,
        }
    }

    /// See [`TelemetrySink::exposition`].
    pub fn exposition(&self) -> Option<String> {
        self.sink.as_ref().and_then(|s| s.exposition())
    }

    /// See [`TelemetrySink::trace_tail`].
    pub fn trace_tail(&self, n: usize) -> Option<(Vec<TraceEvent>, u64)> {
        self.sink.as_ref().and_then(|s| s.trace_tail(n))
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_inert() {
        let t = Telemetry::noop();
        assert!(!t.enabled());
        t.counter_add("x_total", "", 3);
        let span = t.span_start("s", "", SpanId::NONE, TelTime(5));
        assert!(!span.is_real());
        t.span_end(span, "done", TelTime(9));
        t.event("e", "", span, TelTime(9));
    }

    #[test]
    fn recording_handle_round_trips() {
        let (t, rec) = Telemetry::recording();
        assert!(t.enabled());
        t.counter_add("fremont_test_total", "", 2);
        t.counter_add("fremont_test_total", "", 3);
        assert_eq!(rec.counter("fremont_test_total", ""), 5);
        let s = t.span_start("phase", "", SpanId::NONE, TelTime(1));
        assert!(s.is_real());
        t.span_end(s, "ok", TelTime(2));
        assert_eq!(rec.trace_len(), 2);
    }

    #[test]
    fn teltime_from_secs_scales() {
        assert_eq!(TelTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(TelTime::from_secs(u64::MAX).as_micros(), u64::MAX);
    }

    #[test]
    fn debug_impl_reports_state_not_sink() {
        let t = Telemetry::noop();
        assert_eq!(format!("{t:?}"), "Telemetry { enabled: false }");
    }
}
