//! Metrics registry: counters, gauges, fixed-bound histograms, and a
//! Prometheus-style text exposition (plus a validating parser for it).
//!
//! Series are keyed by `(name, label)` in `BTreeMap`s so iteration —
//! and therefore the exposition text — is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram with fixed bucket boundaries set at first observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Upper bucket bounds (inclusive), ascending. A final implicit
    /// `+Inf` bucket catches everything above the last bound.
    bounds: Vec<u64>,
    /// One count per bound plus the `+Inf` overflow bucket.
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        self.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// The metrics store behind a recording sink.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), u64>,
    histograms: BTreeMap<(String, String), Histogram>,
}

fn key(name: &str, label: &str) -> (String, String) {
    (name.to_string(), label.to_string())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, label: &str, delta: u64) {
        let c = self.counters.entry(key(name, label)).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Sets a counter to an absolute value.
    pub fn counter_set(&mut self, name: &str, label: &str, value: u64) {
        self.counters.insert(key(name, label), value);
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, label: &str, value: u64) {
        self.gauges.insert(key(name, label), value);
    }

    /// Raises a gauge to `value` if currently below it.
    pub fn gauge_max(&mut self, name: &str, label: &str, value: u64) {
        let g = self.gauges.entry(key(name, label)).or_insert(0);
        if *g < value {
            *g = value;
        }
    }

    /// Records into a histogram, creating it with `bounds` on first
    /// use. Later calls reuse the existing buckets (first bounds win,
    /// so a series keeps one shape for its whole life).
    pub fn observe(&mut self, name: &str, label: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(key(name, label))
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Current counter value (0 when the series does not exist).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters.get(&key(name, label)).copied().unwrap_or(0)
    }

    /// Current gauge value (0 when the series does not exist).
    pub fn gauge(&self, name: &str, label: &str) -> u64 {
        self.gauges.get(&key(name, label)).copied().unwrap_or(0)
    }

    /// The histogram for a series, if any observation was recorded.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&Histogram> {
        self.histograms.get(&key(name, label))
    }

    /// Counters whose name starts with `prefix`, as
    /// `(name, label, value)` — handy for table rendering.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, String, u64)> {
        self.counters
            .iter()
            .filter(|((n, _), _)| n.starts_with(prefix))
            .map(|((n, l), v)| (n.clone(), l.clone(), *v))
            .collect()
    }

    /// Renders the whole registry as Prometheus-style text exposition.
    ///
    /// Counters and gauges become one sample line each; histograms
    /// expand to cumulative `_bucket{le=...}` lines plus `_sum` and
    /// `_count`. Series are emitted in sorted order, with one `# TYPE`
    /// header per metric family (label variants share it).
    pub fn expose(&self) -> String {
        let mut out = String::new();
        let mut last: Option<&str> = None;
        for ((name, label), value) in &self.counters {
            if last != Some(name.as_str()) {
                writeln!(out, "# TYPE {name} counter").ok();
                last = Some(name);
            }
            writeln!(out, "{}{} {value}", name, braced(label)).ok();
        }
        last = None;
        for ((name, label), value) in &self.gauges {
            if last != Some(name.as_str()) {
                writeln!(out, "# TYPE {name} gauge").ok();
                last = Some(name);
            }
            writeln!(out, "{}{} {value}", name, braced(label)).ok();
        }
        last = None;
        for ((name, label), h) in &self.histograms {
            if last != Some(name.as_str()) {
                writeln!(out, "# TYPE {name} histogram").ok();
                last = Some(name);
            }
            let mut cum = 0u64;
            for (i, bound) in h.bounds.iter().enumerate() {
                cum += h.counts[i];
                let le = format!("le=\"{bound}\"");
                writeln!(out, "{name}_bucket{} {cum}", braced(&join(label, &le))).ok();
            }
            cum += h.counts[h.bounds.len()];
            let inf = "le=\"+Inf\"".to_string();
            writeln!(out, "{name}_bucket{} {cum}", braced(&join(label, &inf))).ok();
            writeln!(out, "{name}_sum{} {}", braced(label), h.sum).ok();
            writeln!(out, "{name}_count{} {}", braced(label), h.count).ok();
        }
        out
    }
}

fn braced(label: &str) -> String {
    if label.is_empty() {
        String::new()
    } else {
        format!("{{{label}}}")
    }
}

fn join(label: &str, extra: &str) -> String {
    if label.is_empty() {
        extra.to_string()
    } else {
        format!("{label},{extra}")
    }
}

/// Validates Prometheus-style exposition text produced by
/// [`Registry::expose`] (or anything shaped like it). Returns the
/// number of sample lines on success, or a description of the first
/// malformed line.
pub fn parse_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?;
        samples += 1;
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<(), String> {
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "missing value".to_string())?;
    value
        .parse::<f64>()
        .map_err(|_| format!("bad value {value:?}"))?;
    let name = match series.split_once('{') {
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| "unclosed label braces".to_string())?;
            for pair in labels.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label {pair:?} missing '='"))?;
                if !is_valid_name(k) {
                    return Err(format!("bad label name {k:?}"));
                }
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return Err(format!("label value {v:?} not quoted"));
                }
            }
            name
        }
        None => series,
    };
    if !is_valid_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(())
}

fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set() {
        let mut r = Registry::new();
        r.counter_add("a_total", "", 2);
        r.counter_add("a_total", "", 3);
        assert_eq!(r.counter("a_total", ""), 5);
        r.counter_set("a_total", "", 1);
        assert_eq!(r.counter("a_total", ""), 1);
        assert_eq!(r.counter("missing", ""), 0);
    }

    #[test]
    fn labels_separate_series() {
        let mut r = Registry::new();
        r.counter_add("pkts_total", "module=\"ARPwatch\"", 7);
        r.counter_add("pkts_total", "module=\"DNS\"", 1);
        assert_eq!(r.counter("pkts_total", "module=\"ARPwatch\""), 7);
        assert_eq!(r.counter("pkts_total", "module=\"DNS\""), 1);
        let all = r.counters_with_prefix("pkts");
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn gauge_max_is_high_water_mark() {
        let mut r = Registry::new();
        r.gauge_max("depth", "", 4);
        r.gauge_max("depth", "", 2);
        assert_eq!(r.gauge("depth", ""), 4);
        r.gauge_set("depth", "", 1);
        assert_eq!(r.gauge("depth", ""), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let mut r = Registry::new();
        let bounds: &[u64] = &[10, 100];
        r.observe("lat", "", bounds, 5);
        r.observe("lat", "", bounds, 50);
        r.observe("lat", "", bounds, 500);
        let h = r.histogram("lat", "").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 555);
        let text = r.expose();
        assert!(text.contains("lat_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"100\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_sum 555"), "{text}");
        assert!(text.contains("lat_count 3"), "{text}");
    }

    #[test]
    fn exposition_round_trips_through_parser() {
        let mut r = Registry::new();
        r.counter_add("fremont_x_total", "rpc=\"store\"", 9);
        r.gauge_set("fremont_depth", "", 3);
        r.observe("fremont_lat", "kind=\"merge\"", &[1, 8], 4);
        let text = r.expose();
        let n = parse_exposition(&text).expect("own exposition parses");
        // 1 counter + 1 gauge + (2 buckets + Inf + sum + count).
        assert_eq!(n, 7);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("ok_total 1\n").is_ok());
        assert!(parse_exposition("no_value\n").is_err());
        assert!(parse_exposition("bad name 1\n").is_err());
        assert!(parse_exposition("x{unquoted=v} 1\n").is_err());
        assert!(parse_exposition("x{open=\"v\" 1\n").is_err());
        assert!(parse_exposition("x 12abc\n").is_err());
        assert!(parse_exposition("# comment only\n\n").unwrap() == 0);
    }

    #[test]
    fn expose_is_deterministic_across_insert_orders() {
        let mut a = Registry::new();
        a.counter_add("b_total", "", 1);
        a.counter_add("a_total", "", 1);
        let mut b = Registry::new();
        b.counter_add("a_total", "", 1);
        b.counter_add("b_total", "", 1);
        assert_eq!(a.expose(), b.expose());
    }
}
