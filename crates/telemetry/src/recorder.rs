//! The in-memory recording sink: a [`Registry`] plus a [`TraceBuffer`]
//! behind one mutex, implementing [`TelemetrySink`].

use std::sync::{Mutex, MutexGuard};

use crate::metrics::Registry;
use crate::trace::{TraceBuffer, TraceEvent};
use crate::{SpanId, TelTime, TelemetrySink};

struct Inner {
    registry: Registry,
    trace: TraceBuffer,
}

/// Records metrics and trace events in memory for later export.
///
/// Shared across threads behind an `Arc` (the sim loop and the
/// Journal Server's connection threads may feed the same recorder);
/// a poisoned lock is recovered rather than propagated, since the
/// registry and ring stay structurally valid after any panic.
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with the default trace ring capacity.
    pub fn new() -> Self {
        Recorder::with_capacity(crate::trace::DEFAULT_CAPACITY)
    }

    /// A recorder whose trace ring holds at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Recorder {
            inner: Mutex::new(Inner {
                registry: Registry::new(),
                trace: TraceBuffer::with_capacity(cap),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Renders the metrics as Prometheus-style text exposition.
    ///
    /// Trace-ring losses are folded in at render time as the
    /// `fremont_trace_dropped_total` counter, so overflow is visible
    /// wherever the metrics go without a hot-path publish.
    pub fn expose(&self) -> String {
        let mut inner = self.lock();
        let dropped = inner.trace.dropped();
        inner
            .registry
            .counter_set("fremont_trace_dropped_total", "", dropped);
        inner.registry.expose()
    }

    /// Folds the buffered trace's `work` records into folded-stack
    /// profile text (see [`crate::profile`]).
    pub fn folded_profile(&self) -> String {
        crate::profile::fold_events(self.lock().trace.iter())
    }

    /// Exports the trace ring as JSON Lines, oldest-first.
    pub fn trace_jsonl(&self) -> String {
        self.lock().trace.to_jsonl()
    }

    /// Current value of a counter series (0 when absent).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.lock().registry.counter(name, label)
    }

    /// Current value of a gauge series (0 when absent).
    pub fn gauge(&self, name: &str, label: &str) -> u64 {
        self.lock().registry.gauge(name, label)
    }

    /// `(count, sum)` of a histogram series, if it exists.
    pub fn histogram_totals(&self, name: &str, label: &str) -> Option<(u64, u64)> {
        let inner = self.lock();
        inner
            .registry
            .histogram(name, label)
            .map(|h| (h.count(), h.sum()))
    }

    /// Counters whose name starts with `prefix`.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, String, u64)> {
        self.lock().registry.counters_with_prefix(prefix)
    }

    /// Number of buffered trace events.
    pub fn trace_len(&self) -> usize {
        self.lock().trace.len()
    }

    /// Events evicted from the trace ring so far.
    pub fn trace_dropped(&self) -> u64 {
        self.lock().trace.dropped()
    }

    /// Runs `f` over the buffered events (oldest-first) under the
    /// lock — for assertions without cloning the whole ring.
    pub fn with_trace<R>(&self, f: impl FnOnce(&TraceBuffer) -> R) -> R {
        f(&self.lock().trace)
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Recorder")
            .field("trace_len", &inner.trace.len())
            .field("trace_dropped", &inner.trace.dropped())
            .finish()
    }
}

impl TelemetrySink for Recorder {
    fn counter_add(&self, name: &'static str, label: &str, delta: u64) {
        self.lock().registry.counter_add(name, label, delta);
    }

    fn counter_set(&self, name: &'static str, label: &str, value: u64) {
        self.lock().registry.counter_set(name, label, value);
    }

    fn gauge_set(&self, name: &'static str, label: &str, value: u64) {
        self.lock().registry.gauge_set(name, label, value);
    }

    fn gauge_max(&self, name: &'static str, label: &str, value: u64) {
        self.lock().registry.gauge_max(name, label, value);
    }

    fn observe(&self, name: &'static str, label: &str, bounds: &'static [u64], value: u64) {
        self.lock().registry.observe(name, label, bounds, value);
    }

    fn span_start(&self, name: &'static str, label: &str, parent: SpanId, at: TelTime) -> SpanId {
        self.span_start_remote(name, label, parent, 0, 0, at)
    }

    fn span_start_remote(
        &self,
        name: &'static str,
        label: &str,
        parent: SpanId,
        trace_id: u64,
        remote_parent: u64,
        at: TelTime,
    ) -> SpanId {
        let mut inner = self.lock();
        let id = inner.trace.next_span_id();
        inner.trace.push(TraceEvent {
            at: at.0,
            kind: "span_start".to_string(),
            id,
            parent: parent.0,
            name: name.to_string(),
            detail: label.to_string(),
            trace_id,
            remote_parent,
        });
        SpanId(id)
    }

    fn span_end(&self, span: SpanId, detail: &str, at: TelTime) {
        if !span.is_real() {
            return;
        }
        self.lock().trace.push(TraceEvent {
            at: at.0,
            kind: "span_end".to_string(),
            id: span.0,
            parent: 0,
            name: String::new(),
            detail: detail.to_string(),
            trace_id: 0,
            remote_parent: 0,
        });
    }

    fn event(&self, name: &'static str, detail: &str, parent: SpanId, at: TelTime) {
        self.lock().trace.push(TraceEvent {
            at: at.0,
            kind: "event".to_string(),
            id: 0,
            parent: parent.0,
            name: name.to_string(),
            detail: detail.to_string(),
            trace_id: 0,
            remote_parent: 0,
        });
    }

    fn work(&self, span: SpanId, unit: &'static str, amount: u64, at: TelTime) {
        if amount == 0 {
            return;
        }
        self.lock().trace.push(TraceEvent {
            at: at.0,
            kind: "work".to_string(),
            id: span.0,
            parent: 0,
            name: unit.to_string(),
            detail: amount.to_string(),
            trace_id: 0,
            remote_parent: 0,
        });
    }

    fn exposition(&self) -> Option<String> {
        Some(self.expose())
    }

    fn trace_tail(&self, n: usize) -> Option<(Vec<TraceEvent>, u64)> {
        let inner = self.lock();
        Some((inner.trace.tail(n), inner.trace.dropped()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_spans_with_nesting() {
        let rec = Recorder::new();
        let root = rec.span_start("driver.pump", "cycle=1", SpanId::NONE, TelTime(10));
        let child = rec.span_start("driver.correlate", "", root, TelTime(11));
        rec.span_end(child, "links=2", TelTime(12));
        rec.span_end(root, "ok", TelTime(13));
        rec.with_trace(|t| {
            let evs: Vec<_> = t.iter().cloned().collect();
            assert_eq!(evs.len(), 4);
            assert_eq!(evs[0].kind, "span_start");
            assert_eq!(evs[1].parent, evs[0].id);
            assert_eq!(evs[2].detail, "links=2");
        });
    }

    #[test]
    fn span_end_on_null_span_is_ignored() {
        let rec = Recorder::new();
        rec.span_end(SpanId::NONE, "x", TelTime(1));
        assert_eq!(rec.trace_len(), 0);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let rec = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = rec.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    r.counter_add("n_total", "", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counter("n_total", ""), 400);
    }

    #[test]
    fn overflowed_ring_surfaces_dropped_counter_in_exposition() {
        let rec = Recorder::with_capacity(2);
        for i in 0..5 {
            rec.event("e", "", SpanId::NONE, TelTime(i));
        }
        assert_eq!(rec.trace_dropped(), 3);
        let expo = rec.expose();
        assert!(
            expo.contains("fremont_trace_dropped_total 3"),
            "missing dropped counter in:\n{expo}"
        );
        // And an un-overflowed ring still exposes the series at zero.
        let quiet = Recorder::new();
        assert!(quiet.expose().contains("fremont_trace_dropped_total 0"));
    }

    #[test]
    fn remote_spans_carry_trace_linkage() {
        let rec = Recorder::new();
        let s = rec.span_start_remote("server.rpc", "rpc=store", SpanId::NONE, 7, 42, TelTime(3));
        rec.work(s, "observations", 5, TelTime(3));
        rec.span_end(s, "ok", TelTime(4));
        rec.with_trace(|t| {
            let evs: Vec<_> = t.iter().cloned().collect();
            assert_eq!(evs[0].trace_id, 7);
            assert_eq!(evs[0].remote_parent, 42);
            assert_eq!(evs[1].kind, "work");
            assert_eq!(evs[1].id, evs[0].id);
            assert_eq!(evs[1].detail, "5");
        });
    }

    #[test]
    fn trace_tail_and_exposition_through_sink_interface() {
        let rec = Recorder::new();
        rec.counter_add("fremont_test_total", "", 1);
        rec.event("a", "", SpanId::NONE, TelTime(1));
        rec.event("b", "", SpanId::NONE, TelTime(2));
        let (tail, dropped) = rec.trace_tail(1).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].name, "b");
        assert!(rec.exposition().unwrap().contains("fremont_test_total"));
    }

    #[test]
    fn folded_profile_from_ring() {
        let rec = Recorder::new();
        let s = rec.span_start("driver.pump", "", SpanId::NONE, TelTime(1));
        rec.work(s, "observations", 4, TelTime(2));
        rec.span_end(s, "", TelTime(3));
        assert_eq!(rec.folded_profile(), "observations;driver.pump 4\n");
    }

    #[test]
    fn histogram_totals_surface() {
        let rec = Recorder::new();
        rec.observe("h", "", crate::bounds::WORK_UNITS, 3);
        rec.observe("h", "", crate::bounds::WORK_UNITS, 5);
        assert_eq!(rec.histogram_totals("h", ""), Some((2, 8)));
        assert_eq!(rec.histogram_totals("missing", ""), None);
    }
}
