//! Property tests over explorer modules on randomized LANs.

use proptest::prelude::*;
use std::collections::HashSet;

use fremont_explorers::{
    EtherHostProbe, EtherHostProbeConfig, SeqPing, SeqPingConfig, SubnetMasks, SubnetMasksConfig,
};
use fremont_journal::observation::Fact;
use fremont_net::{IpRange, Subnet};
use fremont_netsim::builder::TopologyBuilder;
use fremont_netsim::time::SimDuration;

/// A LAN with `n` hosts, of which the subset `down` is powered off.
fn lan_with_down(
    n: usize,
    down: &[usize],
    seed: u64,
) -> (
    fremont_netsim::engine::Sim,
    fremont_netsim::builder::Topology,
) {
    let mut b = TopologyBuilder::new();
    let lan = b.segment("lan", "10.77.0.0/24");
    for i in 0..n {
        b.host(&format!("h{i}"), lan, 10 + i as u32);
    }
    let (mut sim, topo) = b.build(seed);
    for &d in down {
        if d < topo.hosts.len() {
            sim.set_node_up(topo.hosts[d], false);
        }
    }
    (sim, topo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SeqPing finds exactly the up hosts in range (minus the prober's own
    /// address, which cannot answer itself).
    #[test]
    fn seqping_finds_exactly_the_up_hosts(
        n in 3usize..10,
        down_bits in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let down: Vec<usize> = (1..n).filter(|i| down_bits & (1 << i) != 0).collect();
        let (mut sim, topo) = lan_with_down(n, &down, seed);
        let range = IpRange::new(
            "10.77.0.10".parse().expect("ip"),
            format!("10.77.0.{}", 9 + n).parse().expect("ip"),
        );
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SeqPing::new(SeqPingConfig::over(range))),
        );
        sim.run_for(SimDuration::from_mins(5));
        let p = sim.process_mut::<SeqPing>(h).expect("alive");
        let got: HashSet<_> = p.responders().into_iter().collect();
        let expect: HashSet<std::net::Ipv4Addr> = (1..n)
            .filter(|i| !down.contains(i))
            .map(|i| format!("10.77.0.{}", 10 + i).parse().expect("ip"))
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// EtherHostProbe's harvested MACs agree with the builder's ground
    /// truth for every up host.
    #[test]
    fn etherhostprobe_macs_match_ground_truth(n in 3usize..8, seed in any::<u64>()) {
        let (mut sim, topo) = lan_with_down(n, &[], seed);
        let range = IpRange::new(
            "10.77.0.10".parse().expect("ip"),
            format!("10.77.0.{}", 9 + n).parse().expect("ip"),
        );
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(EtherHostProbe::new(EtherHostProbeConfig::over(range))),
        );
        sim.run_for(SimDuration::from_mins(3));
        let found = sim
            .process_mut::<EtherHostProbe>(h)
            .expect("alive")
            .found()
            .to_vec();
        for (ip, mac) in &found {
            let owner = topo
                .hosts
                .iter()
                .find(|id| sim.nodes[id.0].ifaces[0].ip == *ip)
                .expect("found ip exists in topology");
            prop_assert_eq!(sim.nodes[owner.0].ifaces[0].mac, *mac);
        }
        prop_assert_eq!(found.len(), n - 1, "all neighbors harvested");
    }

    /// SubnetMasks reports exactly the configured mask of each responder,
    /// and the derived subnet observation matches.
    #[test]
    fn subnetmasks_reflect_configuration(n in 2usize..6, seed in any::<u64>()) {
        let (mut sim, topo) = lan_with_down(n, &[], seed);
        let targets: Vec<std::net::Ipv4Addr> = (1..n)
            .map(|i| format!("10.77.0.{}", 10 + i).parse().expect("ip"))
            .collect();
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SubnetMasks::new(SubnetMasksConfig::over(targets))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<SubnetMasks>(h).expect("alive");
        prop_assert_eq!(p.masks().len(), n - 1);
        for (_, mask) in p.masks() {
            prop_assert_eq!(mask.prefix_len(), 24);
        }
        let obs = sim.drain_observations();
        let subnet: Subnet = "10.77.0.0/24".parse().expect("subnet");
        let confirmed_subnet = obs.iter().any(|(_, _, o)| {
            matches!(
                &o.fact,
                Fact::Subnet { subnet: s, mask_assumed: false } if *s == subnet
            )
        });
        prop_assert!(confirmed_subnet, "confirmed subnet observation emitted");
    }
}
