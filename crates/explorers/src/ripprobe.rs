//! The RIP Probe Explorer Module — the paper's future-work extension.
//!
//! "Beyond monitoring RIP advertisements, we plan to use directed probes
//! to discover routing information, via the RIP Request and RIP Poll
//! queries. The major advantage of doing so is that these requests and
//! replies can be routed through a network, thus providing access to
//! routing information on subnets other than just the local subnet. A
//! problem, however, is that not all routers use RIP or respond properly
//! to RIP Request or RIP Poll queries."
//!
//! The module sends a RIP Poll (whole-table request) to each candidate
//! gateway address — which can be many hops away — and classifies the
//! routes in the unicast replies exactly as RIPwatch classifies broadcast
//! advertisements.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use bytes::Bytes;
use fremont_journal::observation::{Fact, Observation, Source};
use fremont_net::rip::{classify_route, RipCommand, RipPacket, RouteKind};
use fremont_net::udp::RIP_PORT;
use fremont_net::{IpProtocol, Ipv4Packet, Subnet, UdpDatagram};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::SimDuration;

/// Configuration for [`RipProbe`].
#[derive(Debug, Clone)]
pub struct RipProbeConfig {
    /// Candidate gateway addresses (from the Journal: RIP sources and
    /// traceroute hops).
    pub targets: Vec<Ipv4Addr>,
    /// Gap between polls.
    pub interval: SimDuration,
    /// How long to wait for stragglers after the last poll.
    pub drain: SimDuration,
    /// Source port identifying this run's replies.
    pub src_port: u16,
}

impl RipProbeConfig {
    /// Defaults for a target list.
    pub fn over(targets: Vec<Ipv4Addr>) -> Self {
        RipProbeConfig {
            targets,
            interval: SimDuration::from_secs(2),
            drain: SimDuration::from_secs(10),
            src_port: 2520,
        }
    }
}

/// The directed RIP prober.
pub struct RipProbe {
    cfg: RipProbeConfig,
    next: usize,
    /// Routes learned per responding gateway.
    responders: HashMap<Ipv4Addr, Vec<(Ipv4Addr, u32)>>,
    emitted_subnets: HashSet<Subnet>,
    local: Option<Subnet>,
    finished: bool,
}

const TIMER_NEXT: u64 = 1;
const TIMER_DRAIN: u64 = 2;

impl RipProbe {
    /// Creates the module.
    pub fn new(cfg: RipProbeConfig) -> Self {
        RipProbe {
            cfg,
            next: 0,
            responders: HashMap::new(),
            emitted_subnets: HashSet::new(),
            local: None,
            finished: false,
        }
    }

    /// Gateways that answered the poll, with their advertised routes.
    pub fn responders(&self) -> &HashMap<Ipv4Addr, Vec<(Ipv4Addr, u32)>> {
        &self.responders
    }

    /// Distinct subnets learned across all replies.
    pub fn subnets_learned(&self) -> Vec<Subnet> {
        let mut v: Vec<Subnet> = self.emitted_subnets.iter().copied().collect();
        v.sort();
        v
    }
}

impl Process for RipProbe {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        self.local = Some(ctx.primary_iface().subnet());
        ctx.set_timer(SimDuration::ZERO, TIMER_NEXT);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut ProcCtx<'_>) {
        match token {
            TIMER_NEXT => {
                if self.next >= self.cfg.targets.len() {
                    ctx.set_timer(self.cfg.drain, TIMER_DRAIN);
                    return;
                }
                let target = self.cfg.targets[self.next];
                self.next += 1;
                let poll = RipPacket::poll_request();
                let _ = ctx.send_udp(
                    target,
                    self.cfg.src_port,
                    RIP_PORT,
                    Bytes::from(poll.encode()),
                );
                ctx.set_timer(self.cfg.interval, TIMER_NEXT);
            }
            TIMER_DRAIN => self.finished = true,
            _ => {}
        }
    }

    fn on_ip(&mut self, pkt: &Ipv4Packet, ctx: &mut ProcCtx<'_>) {
        if self.finished || pkt.protocol != IpProtocol::Udp {
            return;
        }
        let Ok(dgram) = UdpDatagram::decode(&pkt.payload) else {
            return;
        };
        // Replies come back unicast to our poll's source port.
        if dgram.dst_port != self.cfg.src_port || dgram.src_port != RIP_PORT {
            return;
        }
        let Ok(rip) = RipPacket::decode(&dgram.payload) else {
            return;
        };
        if rip.command != RipCommand::Response {
            return;
        }
        let Some(local) = self.local else {
            return; // No reply can precede on_start setting this.
        };
        let routes = self.responders.entry(pkt.src).or_insert_with(|| {
            // First reply from this gateway: it is a live router interface.
            Vec::new()
        });
        let newly = routes.is_empty();
        for e in &rip.entries {
            if e.metric >= fremont_net::rip::METRIC_INFINITY {
                continue;
            }
            if !routes.iter().any(|(a, _)| *a == e.addr) {
                routes.push((e.addr, e.metric));
            }
        }
        if newly {
            ctx.emit(Observation::new(
                Source::RipWatch,
                Fact::RipSource {
                    ip: pkt.src,
                    mac: None,
                    advertised_routes: rip.entries.len() as u32,
                    promiscuous: false,
                },
            ));
        }
        // Classify and emit the learned destinations, like RIPwatch.
        for e in &rip.entries {
            if e.metric >= fremont_net::rip::METRIC_INFINITY {
                continue;
            }
            match classify_route(e.addr, local) {
                RouteKind::SubnetRoute(s) | RouteKind::Network(s) => {
                    if self.emitted_subnets.insert(s) {
                        ctx.emit(Observation::subnet(Source::RipWatch, s, true));
                    }
                }
                RouteKind::Host(h) => {
                    ctx.emit(Observation::ip_alive(Source::RipWatch, h));
                }
                RouteKind::Default => {}
            }
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::line3;

    #[test]
    fn polls_remote_router_through_the_network() {
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        // Poll r2's FAR interface (10.1.2.2) — two hops away, reachable
        // only because RIP requests route (unlike broadcasts).
        let h = sim.spawn(
            left,
            Box::new(RipProbe::new(RipProbeConfig::over(vec!["10.1.2.2"
                .parse()
                .unwrap()]))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<RipProbe>(h).unwrap();
        assert!(p.done());
        assert_eq!(p.responders().len(), 1, "remote router answered the poll");
        // r2 knows all three subnets; the prober learns them all, including
        // 10.1.3/24 which local RIPwatch could also hear, AND the full set
        // from a single poll.
        let learned = p.subnets_learned();
        assert!(
            learned.contains(&"10.1.1.0/24".parse().unwrap()),
            "{learned:?}"
        );
        assert!(
            learned.contains(&"10.1.2.0/24".parse().unwrap()),
            "{learned:?}"
        );
        assert!(
            learned.contains(&"10.1.3.0/24".parse().unwrap()),
            "{learned:?}"
        );
    }

    #[test]
    fn non_rip_hosts_do_not_answer() {
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        // Poll the plain host "right": hosts don't speak RIP.
        let h = sim.spawn(
            left,
            Box::new(RipProbe::new(RipProbeConfig::over(vec!["10.1.3.10"
                .parse()
                .unwrap()]))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<RipProbe>(h).unwrap();
        assert!(p.done());
        assert!(p.responders().is_empty());
    }

    #[test]
    fn silent_routers_are_tolerated() {
        let (mut sim, topo) = line3();
        // r1 stops speaking RIP ("not all routers use RIP").
        let r1 = topo.nodes_by_name["r1"];
        sim.nodes[r1.0].behavior.rip = None;
        let left = topo.nodes_by_name["left"];
        let h = sim.spawn(
            left,
            Box::new(RipProbe::new(RipProbeConfig::over(vec![
                "10.1.1.1".parse().unwrap(),
                "10.1.2.2".parse().unwrap(),
            ]))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<RipProbe>(h).unwrap();
        assert!(p.done());
        assert_eq!(p.responders().len(), 1, "only r2 answers");
        assert!(p.responders().contains_key(&"10.1.2.2".parse().unwrap()));
    }

    #[test]
    fn observations_feed_the_journal_vocabulary() {
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        sim.spawn(
            left,
            Box::new(RipProbe::new(RipProbeConfig::over(vec!["10.1.1.1"
                .parse()
                .unwrap()]))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let obs = sim.drain_observations();
        assert!(obs
            .iter()
            .any(|(_, _, o)| matches!(o.fact, Fact::RipSource { .. })));
        assert!(obs
            .iter()
            .any(|(_, _, o)| matches!(o.fact, Fact::Subnet { .. })));
    }
}
