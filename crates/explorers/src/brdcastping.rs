//! The Broadcast Ping Explorer Module.
//!
//! "This module sends an ICMP Echo Request to the broadcast address of the
//! subnet being probed. These directed broadcasts tend to be less
//! successful than sequential pings on a subnet with many hosts, because
//! closely spaced replies can cause many collisions. However, if used
//! carefully, broadcast ping can be an effective interface discovery tool
//! for large subnets ... the broadcast ping Explorer Module sends packets
//! with minimal time-to-live values (determined dynamically, in a fashion
//! similar to the sequential increase mechanism used by traceroute)."

use std::collections::HashSet;
use std::net::Ipv4Addr;

use fremont_journal::observation::{Observation, Source};
use fremont_net::{IcmpMessage, IpProtocol, Ipv4Packet, Subnet};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::SimDuration;

/// Configuration for [`BrdcastPing`].
#[derive(Debug, Clone)]
pub struct BrdcastPingConfig {
    /// Subnets to probe, in order.
    pub subnets: Vec<Subnet>,
    /// Listening window per subnet (paper: "completes in 20 seconds on a
    /// directly attached network").
    pub window: SimDuration,
    /// Maximum TTL tried during the minimal-TTL search.
    pub max_ttl: u8,
    /// ICMP identifier for this run.
    pub ident: u16,
}

impl BrdcastPingConfig {
    /// Defaults for a list of subnets.
    pub fn over(subnets: Vec<Subnet>) -> Self {
        BrdcastPingConfig {
            subnets,
            window: SimDuration::from_secs(20),
            max_ttl: 8,
            ident: 0xBCA5,
        }
    }
}

/// Module state.
pub struct BrdcastPing {
    cfg: BrdcastPingConfig,
    current: usize,
    ttl: u8,
    responders: HashSet<Ipv4Addr>,
    per_subnet: Vec<(Subnet, usize)>,
    got_reply_this_subnet: bool,
    finished: bool,
}

const TIMER_TTL_STEP: u64 = 1;
const TIMER_SUBNET_DONE: u64 = 2;

impl BrdcastPing {
    /// Creates the module.
    pub fn new(cfg: BrdcastPingConfig) -> Self {
        BrdcastPing {
            cfg,
            current: 0,
            ttl: 1,
            responders: HashSet::new(),
            per_subnet: Vec::new(),
            got_reply_this_subnet: false,
            finished: false,
        }
    }

    /// All distinct responders.
    pub fn responders(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<_> = self.responders.iter().copied().collect();
        v.sort_by_key(|ip| u32::from(*ip));
        v
    }

    /// Per-subnet responder counts, in probe order.
    pub fn per_subnet(&self) -> &[(Subnet, usize)] {
        &self.per_subnet
    }

    fn current_subnet(&self) -> Option<Subnet> {
        self.cfg.subnets.get(self.current).copied()
    }

    fn probe(&mut self, ctx: &mut ProcCtx<'_>) {
        let Some(subnet) = self.current_subnet() else {
            self.finished = true;
            return;
        };
        let msg = IcmpMessage::EchoRequest {
            ident: self.cfg.ident,
            seq: u16::from(self.ttl),
            payload: vec![0u8; 8],
        };
        // Minimal TTL: start at 1 and climb only until replies arrive —
        // a low TTL bounds the damage if a broadcast storm starts.
        let _ = ctx.send_ip(
            subnet.directed_broadcast(),
            IpProtocol::Icmp,
            bytes::Bytes::from(msg.encode()),
            Some(self.ttl),
            None,
        );
        ctx.set_timer(SimDuration::from_secs(2), TIMER_TTL_STEP);
    }

    fn finish_subnet(&mut self, ctx: &mut ProcCtx<'_>) {
        if let Some(subnet) = self.current_subnet() {
            let count = self
                .responders
                .iter()
                .filter(|ip| subnet.contains(**ip))
                .count();
            self.per_subnet.push((subnet, count));
            if count > 0 {
                ctx.emit(Observation::subnet(Source::BrdcastPing, subnet, false));
            }
        }
        self.current += 1;
        self.ttl = 1;
        self.got_reply_this_subnet = false;
        if self.current >= self.cfg.subnets.len() {
            self.finished = true;
        } else {
            self.probe(ctx);
        }
    }
}

impl Process for BrdcastPing {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        self.probe(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut ProcCtx<'_>) {
        if self.finished {
            return;
        }
        match token {
            TIMER_TTL_STEP => {
                if self.got_reply_this_subnet {
                    // Minimal TTL found; just let the window run out.
                    ctx.set_timer(self.cfg.window, TIMER_SUBNET_DONE);
                } else if self.ttl >= self.cfg.max_ttl {
                    // Nothing reachable (e.g. gateways refuse directed
                    // broadcasts): give up on this subnet.
                    self.finish_subnet(ctx);
                } else {
                    self.ttl += 1;
                    self.probe(ctx);
                }
            }
            TIMER_SUBNET_DONE => self.finish_subnet(ctx),
            _ => {}
        }
    }

    fn on_ip(&mut self, pkt: &Ipv4Packet, ctx: &mut ProcCtx<'_>) {
        if pkt.protocol != IpProtocol::Icmp {
            return;
        }
        let Ok(IcmpMessage::EchoReply { ident, .. }) = IcmpMessage::decode(&pkt.payload) else {
            return;
        };
        if ident != self.cfg.ident {
            return;
        }
        let Some(subnet) = self.current_subnet() else {
            return;
        };
        if subnet.contains(pkt.src) {
            self.got_reply_this_subnet = true;
            if self.responders.insert(pkt.src) {
                ctx.emit(Observation::ip_alive(Source::BrdcastPing, pkt.src));
            }
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{lan, line3};

    #[test]
    fn local_subnet_discovered_in_one_window() {
        let (mut sim, topo) = lan(6);
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(BrdcastPing::new(BrdcastPingConfig::over(vec![
                "10.7.7.0/24".parse().unwrap(),
            ]))),
        );
        sim.run_for(SimDuration::from_secs(60));
        let p = sim.process_mut::<BrdcastPing>(h).unwrap();
        assert!(p.done());
        // 5 other hosts + gateway; small bursts rarely collide.
        let n = p.responders().len();
        assert!((5..=6).contains(&n), "responders: {:?}", p.responders());
        assert_eq!(p.per_subnet().len(), 1);
    }

    #[test]
    fn remote_subnet_blocked_by_default_gateway_policy() {
        // Routers default to NOT forwarding directed broadcasts.
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        let h = sim.spawn(
            left,
            Box::new(BrdcastPing::new(BrdcastPingConfig::over(vec![
                "10.1.3.0/24".parse().unwrap(),
            ]))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<BrdcastPing>(h).unwrap();
        assert!(p.done());
        assert!(p.responders().is_empty(), "directed broadcast blocked");
    }

    #[test]
    fn remote_subnet_works_when_routers_forward() {
        let (mut sim, topo) = line3();
        for r in &topo.routers {
            sim.nodes[r.0].behavior.forward_directed_broadcast = true;
        }
        let left = topo.nodes_by_name["left"];
        let h = sim.spawn(
            left,
            Box::new(BrdcastPing::new(BrdcastPingConfig::over(vec![
                "10.1.3.0/24".parse().unwrap(),
            ]))),
        );
        sim.run_for(SimDuration::from_mins(3));
        let p = sim.process_mut::<BrdcastPing>(h).unwrap();
        assert!(p.done());
        // "right" (10.1.3.10) and r2's interface (10.1.3.1) respond.
        assert!(
            !p.responders().is_empty(),
            "directed broadcast should reach the remote subnet"
        );
        assert!(p
            .responders()
            .iter()
            .all(|ip| "10.1.3.0/24".parse::<Subnet>().unwrap().contains(*ip)));
    }

    #[test]
    fn heavily_populated_subnet_loses_replies_to_collisions() {
        // 120 hosts on one segment: the reply burst must collide.
        let mut b = fremont_netsim::builder::TopologyBuilder::new();
        let seg = b.segment("big", "10.9.9.0/24");
        for i in 0..120 {
            b.host(&format!("h{i}"), seg, 10 + i);
        }
        let (mut sim, topo) = b.build(3);
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(BrdcastPing::new(BrdcastPingConfig::over(vec![
                "10.9.9.0/24".parse().unwrap(),
            ]))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<BrdcastPing>(h).unwrap();
        let n = p.responders().len();
        assert!(
            n < 110,
            "a 119-responder burst must lose many replies, got {n}"
        );
        assert!(n >= 15, "but a good number should get through, got {n}");
    }
}
