//! The Subnet Masks Explorer Module.
//!
//! "Fremont uses this feature of ICMP [mask request/reply] to discover and
//! record the subnet masks of all the interfaces that it has already
//! discovered. Fremont uses the collected subnet masks to aid in
//! determining the network structure. It also uses the gathered
//! information to detect conflicting subnet masks on different interfaces
//! of a subnet." The request "is not as widely implemented as the echo
//! request/reply", so some interfaces never answer.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use fremont_journal::observation::{Fact, Observation, Source};
use fremont_net::{IcmpMessage, IpProtocol, Ipv4Packet, Subnet, SubnetMask};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::SimDuration;

/// Configuration for [`SubnetMasks`].
#[derive(Debug, Clone)]
pub struct SubnetMasksConfig {
    /// Interfaces to interrogate (from the Journal: "interfaces that it
    /// has already discovered").
    pub targets: Vec<Ipv4Addr>,
    /// Gap between requests (paper: 2 sec/address, 0.5 pkts/sec).
    pub interval: SimDuration,
    /// ICMP identifier for this run.
    pub ident: u16,
}

impl SubnetMasksConfig {
    /// Defaults for a target list.
    pub fn over(targets: Vec<Ipv4Addr>) -> Self {
        SubnetMasksConfig {
            targets,
            interval: SimDuration::from_secs(2),
            ident: 0x3A5C,
        }
    }
}

/// Module state.
pub struct SubnetMasks {
    cfg: SubnetMasksConfig,
    next: usize,
    masks: HashMap<Ipv4Addr, SubnetMask>,
    finished: bool,
}

const TIMER_NEXT: u64 = 1;
const TIMER_DRAIN: u64 = 2;

impl SubnetMasks {
    /// Creates the module.
    pub fn new(cfg: SubnetMasksConfig) -> Self {
        SubnetMasks {
            cfg,
            next: 0,
            masks: HashMap::new(),
            finished: false,
        }
    }

    /// Collected `(interface, mask)` results.
    pub fn masks(&self) -> Vec<(Ipv4Addr, SubnetMask)> {
        let mut v: Vec<_> = self.masks.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(ip, _)| u32::from(*ip));
        v
    }
}

impl Process for SubnetMasks {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, TIMER_NEXT);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut ProcCtx<'_>) {
        match token {
            TIMER_NEXT => {
                if self.next >= self.cfg.targets.len() {
                    ctx.set_timer(SimDuration::from_secs(5), TIMER_DRAIN);
                    return;
                }
                let target = self.cfg.targets[self.next];
                self.next += 1;
                let msg = IcmpMessage::MaskRequest {
                    ident: self.cfg.ident,
                    seq: self.next as u16,
                };
                let _ = ctx.send_icmp(target, &msg);
                ctx.set_timer(self.cfg.interval, TIMER_NEXT);
            }
            TIMER_DRAIN => self.finished = true,
            _ => {}
        }
    }

    fn on_ip(&mut self, pkt: &Ipv4Packet, ctx: &mut ProcCtx<'_>) {
        if pkt.protocol != IpProtocol::Icmp {
            return;
        }
        let Ok(IcmpMessage::MaskReply { ident, mask, .. }) = IcmpMessage::decode(&pkt.payload)
        else {
            return;
        };
        if ident != self.cfg.ident {
            return;
        }
        let Ok(mask) = SubnetMask::from_addr(mask) else {
            return; // A garbage mask reply; ignore it.
        };
        if self.masks.insert(pkt.src, mask).is_none() {
            ctx.emit(Observation::mask(Source::SubnetMasks, pkt.src, mask));
            // A confirmed mask also confirms the subnet's existence.
            ctx.emit(Observation::new(
                Source::SubnetMasks,
                Fact::Subnet {
                    subnet: Subnet::containing(pkt.src, mask),
                    mask_assumed: false,
                },
            ));
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::lan;

    #[test]
    fn collects_masks_from_responding_interfaces() {
        let (mut sim, topo) = lan(3);
        let targets: Vec<Ipv4Addr> = vec![
            "10.7.7.11".parse().unwrap(),
            "10.7.7.12".parse().unwrap(),
            "10.7.7.1".parse().unwrap(),
        ];
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SubnetMasks::new(SubnetMasksConfig::over(targets))),
        );
        sim.run_for(SimDuration::from_mins(1));
        let p = sim.process_mut::<SubnetMasks>(h).unwrap();
        assert!(p.done());
        let masks = p.masks();
        assert_eq!(masks.len(), 3);
        assert!(
            masks.iter().all(|(_, m)| m.prefix_len() == 24),
            "all /24: {masks:?}"
        );
        // Both a mask fact and a subnet fact per responder.
        let obs = sim.drain_observations();
        assert_eq!(obs.len(), 6);
    }

    #[test]
    fn silent_interfaces_are_skipped() {
        let (mut sim, topo) = lan(3);
        // Host .11 is configured not to answer mask requests.
        sim.nodes[topo.hosts[1].0].behavior.mask_reply = false;
        let targets: Vec<Ipv4Addr> =
            vec!["10.7.7.11".parse().unwrap(), "10.7.7.12".parse().unwrap()];
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SubnetMasks::new(SubnetMasksConfig::over(targets))),
        );
        sim.run_for(SimDuration::from_mins(1));
        let p = sim.process_mut::<SubnetMasks>(h).unwrap();
        assert_eq!(p.masks().len(), 1);
        assert_eq!(p.masks()[0].0, "10.7.7.12".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn detects_conflicting_masks() {
        let (mut sim, topo) = lan(3);
        // Host .12 is misconfigured as /16.
        sim.nodes[topo.hosts[2].0].ifaces[0].mask = SubnetMask::from_prefix_len(16).unwrap();
        let targets: Vec<Ipv4Addr> =
            vec!["10.7.7.11".parse().unwrap(), "10.7.7.12".parse().unwrap()];
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SubnetMasks::new(SubnetMasksConfig::over(targets))),
        );
        sim.run_for(SimDuration::from_mins(1));
        let p = sim.process_mut::<SubnetMasks>(h).unwrap();
        let masks = p.masks();
        assert_eq!(masks.len(), 2);
        let lens: Vec<u8> = masks.iter().map(|(_, m)| m.prefix_len()).collect();
        assert!(lens.contains(&24) && lens.contains(&16), "lens {lens:?}");
    }

    #[test]
    fn empty_target_list_finishes_immediately() {
        let (mut sim, topo) = lan(1);
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SubnetMasks::new(SubnetMasksConfig::over(vec![]))),
        );
        sim.run_for(SimDuration::from_secs(10));
        assert!(sim.process_mut::<SubnetMasks>(h).unwrap().done());
    }
}
