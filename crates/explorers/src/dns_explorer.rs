//! The Domain Naming System Explorer Module.
//!
//! "Fremont's DNS Explorer Module searches the appropriate subtree for all
//! addresses in a specified network. The primary purpose of this module is
//! to discover network topology by identifying gateways. ... The DNS
//! module retrieves the set of all address-to-name mappings from a domain,
//! using 'zone transfers' ... by descending recursively into the DNS tree
//! starting from a specific point."
//!
//! Gateway heuristics, as in the paper: "The most obvious case is when
//! multiple IP addresses correspond to the same machine name. The DNS
//! module also looks for multiple names for the same address ... It
//! further looks for names which differ only by `-gw` or similar naming
//! conventions." It bootstraps a subnet mask with an ICMP Mask Request to
//! "one of the first hosts discovered", and records "the number of hosts
//! on each subnet and the highest and lowest addresses assigned".

use std::collections::HashMap;
use std::net::Ipv4Addr;

use bytes::Bytes;
use fremont_journal::observation::{Fact, Observation, Source};
use fremont_net::dns::{DnsMessage, DnsName, RData, Rcode, RecordType};
use fremont_net::{IcmpMessage, IpProtocol, Ipv4Packet, Subnet, SubnetMask};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::SimDuration;

/// Configuration for [`DnsExplorer`].
#[derive(Debug, Clone)]
pub struct DnsExplorerConfig {
    /// The network to examine (e.g. the campus class B).
    pub network: Subnet,
    /// Address of a name server authoritative for the network's zones.
    pub server: Ipv4Addr,
    /// Gap between successive zone transfers (the module's "10 pkts/sec"
    /// load comes from this phase).
    pub pace: SimDuration,
    /// Record every name/address pair in the Journal. The paper's
    /// prototype skipped pairs that were the only knowledge about an
    /// interface (they are "readily available from the DNS"); recording
    /// them lets the stale-address analysis see DNS-only ghosts.
    pub record_all_pairs: bool,
    /// Gateway-name suffixes considered naming conventions.
    pub gw_suffixes: Vec<String>,
}

impl DnsExplorerConfig {
    /// Defaults for a network + server pair.
    pub fn new(network: Subnet, server: Ipv4Addr) -> Self {
        DnsExplorerConfig {
            network,
            server,
            pace: SimDuration::from_millis(200),
            record_all_pairs: true,
            gw_suffixes: vec!["-gw".to_owned(), "-gate".to_owned(), "gw".to_owned()],
        }
    }
}

/// A discovered gateway candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsGateway {
    /// The gateway's DNS name.
    pub name: String,
    /// Its interface addresses.
    pub ips: Vec<Ipv4Addr>,
    /// Which heuristic matched.
    pub via: GatewayHeuristic,
}

/// Which of the paper's heuristics identified a gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayHeuristic {
    /// Multiple A/PTR addresses under one name.
    MultiAddress,
    /// Name carries a `-gw`-style suffix.
    NamingConvention,
}

#[derive(Debug, PartialEq)]
enum Phase {
    ParentTransfer,
    ChildTransfers,
    MaskProbe,
    Done,
}

/// The DNS zone-walking module.
pub struct DnsExplorer {
    cfg: DnsExplorerConfig,
    phase: Phase,
    pending_zones: Vec<DnsName>,
    transferred: usize,
    refused: usize,
    query_id: u16,
    awaiting_id: Option<u16>,
    pairs: Vec<(Ipv4Addr, DnsName)>,
    mask: Option<SubnetMask>,
    gateways: Vec<DnsGateway>,
    finished: bool,
}

const TIMER_NEXT: u64 = 1;
const TIMER_TIMEOUT: u64 = 2;

impl DnsExplorer {
    /// Creates the module.
    pub fn new(cfg: DnsExplorerConfig) -> Self {
        DnsExplorer {
            cfg,
            phase: Phase::ParentTransfer,
            pending_zones: Vec::new(),
            transferred: 0,
            refused: 0,
            query_id: 0x0D25,
            awaiting_id: None,
            pairs: Vec::new(),
            mask: None,
            gateways: Vec::new(),
            finished: false,
        }
    }

    /// All address/name pairs harvested from the reverse tree.
    pub fn pairs(&self) -> &[(Ipv4Addr, DnsName)] {
        &self.pairs
    }

    /// Gateways identified by the heuristics.
    pub fn gateways(&self) -> &[DnsGateway] {
        &self.gateways
    }

    /// Zones transferred / refused.
    pub fn zone_counts(&self) -> (usize, usize) {
        (self.transferred, self.refused)
    }

    /// Distinct subnets with at least one registered interface (using the
    /// bootstrapped mask).
    pub fn registered_subnets(&self) -> Vec<Subnet> {
        let mask = self.effective_mask();
        let mut v: Vec<Subnet> = self
            .pairs
            .iter()
            .map(|(ip, _)| Subnet::containing(*ip, mask))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    fn effective_mask(&self) -> SubnetMask {
        self.mask.unwrap_or(SubnetMask::CLASS_C)
    }

    /// The reverse-tree zone name for the configured network.
    fn parent_zone(&self) -> DnsName {
        DnsName::reverse_zone_for(self.cfg.network.network(), self.cfg.network.prefix_len())
    }

    fn send_axfr(&mut self, zone: DnsName, ctx: &mut ProcCtx<'_>) {
        self.query_id = self.query_id.wrapping_add(1);
        self.awaiting_id = Some(self.query_id);
        let q = DnsMessage::query(self.query_id, zone, RecordType::Axfr);
        // Zone transfers ride the reliable (TCP) channel, as real AXFR does.
        let _ = ctx.send_ip(
            self.cfg.server,
            IpProtocol::Tcp,
            Bytes::from(q.encode()),
            None,
            None,
        );
        ctx.set_timer(SimDuration::from_secs(10), TIMER_TIMEOUT);
    }

    fn absorb_records(&mut self, msg: &DnsMessage) {
        for rr in &msg.answers {
            match (&rr.rtype, &rr.rdata) {
                (RecordType::Ptr, RData::Ptr(target)) => {
                    if let Some(ip) = rr.name.reverse_to_addr() {
                        if self.cfg.network.contains(ip)
                            && !self.pairs.iter().any(|(i, n)| *i == ip && n == target)
                        {
                            self.pairs.push((ip, target.clone()));
                        }
                    }
                }
                (RecordType::Ns, RData::Ns(_))
                    // A delegation inside the reverse tree: descend into it.
                    if rr.name.ends_with(&self.parent_zone())
                        && rr.name != self.parent_zone()
                        && !self.pending_zones.contains(&rr.name)
                    => {
                        self.pending_zones.push(rr.name.clone());
                    }
                (RecordType::A, RData::A(ip))
                    if self.cfg.network.contains(*ip)
                        && !self.pairs.iter().any(|(i, n)| i == ip && *n == rr.name)
                    => {
                        self.pairs.push((*ip, rr.name.clone()));
                    }
                _ => {}
            }
        }
    }

    fn next_step(&mut self, ctx: &mut ProcCtx<'_>) {
        match self.phase {
            Phase::ParentTransfer => {
                let zone = self.parent_zone();
                self.phase = Phase::ChildTransfers;
                self.send_axfr(zone, ctx);
            }
            Phase::ChildTransfers => {
                if let Some(zone) = self.pending_zones.pop() {
                    self.send_axfr(zone, ctx);
                } else {
                    self.phase = Phase::MaskProbe;
                    self.send_mask_probe(ctx);
                }
            }
            Phase::MaskProbe => {
                self.analyze_and_emit(ctx);
            }
            Phase::Done => {}
        }
    }

    fn send_mask_probe(&mut self, ctx: &mut ProcCtx<'_>) {
        // "The DNS module also uses ICMP Mask Requests to retrieve the
        // subnet mask from one of the first hosts discovered ... usually
        // one of the name servers."
        let target = if self.cfg.network.contains(self.cfg.server) {
            Some(self.cfg.server)
        } else {
            self.pairs.first().map(|(ip, _)| *ip)
        };
        match target {
            Some(t) => {
                let msg = IcmpMessage::MaskRequest {
                    ident: 0x0D25,
                    seq: 0,
                };
                let _ = ctx.send_icmp(t, &msg);
                ctx.set_timer(SimDuration::from_secs(8), TIMER_TIMEOUT);
            }
            None => self.analyze_and_emit(ctx),
        }
    }

    /// Phase two: "the module searches the collected information for
    /// gateways. This is CPU intensive."
    fn analyze_and_emit(&mut self, ctx: &mut ProcCtx<'_>) {
        self.phase = Phase::Done;
        let mask = self.effective_mask();

        // Group addresses by name.
        let mut by_name: HashMap<DnsName, Vec<Ipv4Addr>> = HashMap::new();
        for (ip, name) in &self.pairs {
            let v = by_name.entry(name.clone()).or_default();
            if !v.contains(ip) {
                v.push(*ip);
            }
        }

        // Heuristic 1: multiple addresses under one name.
        let mut gw_names: Vec<(DnsName, Vec<Ipv4Addr>, GatewayHeuristic)> = Vec::new();
        for (name, ips) in &by_name {
            if ips.len() >= 2 {
                gw_names.push((name.clone(), ips.clone(), GatewayHeuristic::MultiAddress));
            }
        }
        // Heuristic 2: naming conventions (-gw etc.), even single-address.
        for (name, ips) in &by_name {
            let leaf = name.leaf().unwrap_or("");
            let conventional = self
                .cfg
                .gw_suffixes
                .iter()
                .any(|suf| leaf.ends_with(suf.as_str()) && leaf.len() > suf.len());
            if conventional && !gw_names.iter().any(|(n, _, _)| n == name) {
                gw_names.push((
                    name.clone(),
                    ips.clone(),
                    GatewayHeuristic::NamingConvention,
                ));
            }
        }
        gw_names.sort_by(|a, b| a.0.cmp(&b.0));

        for (name, mut ips, via) in gw_names {
            ips.sort_by_key(|ip| u32::from(*ip));
            let subnets: Vec<Subnet> = {
                let mut v: Vec<Subnet> =
                    ips.iter().map(|ip| Subnet::containing(*ip, mask)).collect();
                v.sort();
                v.dedup();
                v
            };
            self.gateways.push(DnsGateway {
                name: name.to_string(),
                ips: ips.clone(),
                via,
            });
            ctx.emit(Observation::new(
                Source::Dns,
                Fact::Gateway {
                    interface_ips: ips,
                    interface_names: vec![name.to_string()],
                    subnets,
                },
            ));
        }

        // Interface pairs.
        if self.cfg.record_all_pairs {
            for (ip, name) in &self.pairs {
                ctx.emit(Observation::named_ip(Source::Dns, *ip, &name.to_string()));
            }
        }

        // Subnet statistics: host count and lowest/highest assigned.
        let mut per_subnet: HashMap<Subnet, Vec<Ipv4Addr>> = HashMap::new();
        for (ip, _) in &self.pairs {
            per_subnet
                .entry(Subnet::containing(*ip, mask))
                .or_default()
                .push(*ip);
        }
        let mut subnets: Vec<_> = per_subnet.into_iter().collect();
        subnets.sort_by_key(|(s, _)| *s);
        for (subnet, mut ips) in subnets {
            ips.sort_by_key(|ip| u32::from(*ip));
            ips.dedup();
            let (Some(&lowest), Some(&highest)) = (ips.first(), ips.last()) else {
                continue;
            };
            ctx.emit(Observation::new(
                Source::Dns,
                Fact::SubnetStats {
                    subnet,
                    host_count: ips.len() as u32,
                    lowest,
                    highest,
                },
            ));
        }
        self.finished = true;
    }
}

impl Process for DnsExplorer {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        self.next_step(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut ProcCtx<'_>) {
        if self.finished {
            return;
        }
        match token {
            TIMER_NEXT => self.next_step(ctx),
            TIMER_TIMEOUT
                if (self.awaiting_id.take().is_some() || self.phase == Phase::MaskProbe) =>
            {
                // Give up on the outstanding transfer/probe; move on.
                self.next_step(ctx);
            }
            _ => {}
        }
    }

    fn on_ip(&mut self, pkt: &Ipv4Packet, ctx: &mut ProcCtx<'_>) {
        if self.finished {
            return;
        }
        match pkt.protocol {
            IpProtocol::Tcp => {
                let Ok(msg) = DnsMessage::decode(&pkt.payload) else {
                    return;
                };
                if !msg.is_response || Some(msg.id) != self.awaiting_id {
                    return;
                }
                self.awaiting_id = None;
                match msg.rcode {
                    Rcode::NoError => {
                        self.transferred += 1;
                        self.absorb_records(&msg);
                    }
                    _ => self.refused += 1,
                }
                ctx.set_timer(self.cfg.pace, TIMER_NEXT);
            }
            IpProtocol::Icmp => {
                if self.phase != Phase::MaskProbe {
                    return;
                }
                if let Ok(IcmpMessage::MaskReply { mask, .. }) = IcmpMessage::decode(&pkt.payload) {
                    if let Ok(m) = SubnetMask::from_addr(mask) {
                        self.mask = Some(m);
                    }
                    self.analyze_and_emit(ctx);
                }
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremont_netsim::builder::TopologyBuilder;
    use fremont_netsim::dns_server::{DnsServerState, Zone};

    /// A LAN with a name server holding a two-level reverse tree plus a
    /// forward zone with one multi-A gateway and one conventional name.
    fn dns_world() -> (
        fremont_netsim::engine::Sim,
        fremont_netsim::builder::Topology,
    ) {
        let mut b = TopologyBuilder::new();
        let lan = b.segment("lan", "128.200.5.0/24");
        b.host("prober", lan, 10);
        b.host("ns", lan, 53);
        b.host("alpha", lan, 20);
        b.router("gw", &[(lan, 1)]);
        let (mut sim, topo) = b.build(5);

        let mut server = DnsServerState::new();
        let mut fwd = Zone::new("example.edu".parse().unwrap());
        fwd.add_a(
            "alpha.example.edu".parse().unwrap(),
            "128.200.5.20".parse().unwrap(),
        );
        fwd.add_a(
            "ns.example.edu".parse().unwrap(),
            "128.200.5.53".parse().unwrap(),
        );
        fwd.add_a(
            "big-gw.example.edu".parse().unwrap(),
            "128.200.5.1".parse().unwrap(),
        );
        fwd.add_a(
            "big-gw.example.edu".parse().unwrap(),
            "128.200.9.1".parse().unwrap(),
        );
        fwd.add_a(
            "lone-gw.example.edu".parse().unwrap(),
            "128.200.7.1".parse().unwrap(),
        );
        let mut parent = Zone::new("200.128.in-addr.arpa".parse().unwrap());
        let mut child5 = Zone::new("5.200.128.in-addr.arpa".parse().unwrap());
        for (name, ip) in [
            ("alpha.example.edu", "128.200.5.20"),
            ("ns.example.edu", "128.200.5.53"),
            ("big-gw.example.edu", "128.200.5.1"),
        ] {
            child5.add_ptr(
                DnsName::reverse_for(ip.parse().unwrap()),
                name.parse().unwrap(),
            );
        }
        let mut child9 = Zone::new("9.200.128.in-addr.arpa".parse().unwrap());
        child9.add_ptr(
            DnsName::reverse_for("128.200.9.1".parse().unwrap()),
            "big-gw.example.edu".parse().unwrap(),
        );
        let mut child7 = Zone::new("7.200.128.in-addr.arpa".parse().unwrap());
        child7.add_ptr(
            DnsName::reverse_for("128.200.7.1".parse().unwrap()),
            "lone-gw.example.edu".parse().unwrap(),
        );
        parent.delegations.push(child5.origin.clone());
        parent.delegations.push(child9.origin.clone());
        parent.delegations.push(child7.origin.clone());
        server.add_zone(fwd);
        server.add_zone(parent);
        server.add_zone(child5);
        server.add_zone(child9);
        server.add_zone(child7);
        let ns = topo.nodes_by_name["ns"];
        sim.nodes[ns.0].dns = Some(server);
        (sim, topo)
    }

    fn explore() -> (DnsExplorer, Vec<Observation>) {
        let (mut sim, topo) = dns_world();
        let prober = topo.nodes_by_name["prober"];
        let cfg = DnsExplorerConfig::new(
            "128.200.0.0/16".parse().unwrap(),
            "128.200.5.53".parse().unwrap(),
        );
        let h = sim.spawn(prober, Box::new(DnsExplorer::new(cfg)));
        sim.run_for(SimDuration::from_mins(5));
        let p = sim.process_mut::<DnsExplorer>(h).unwrap();
        assert!(p.done(), "explorer finished");
        let obs: Vec<Observation> = sim
            .drain_observations()
            .into_iter()
            .map(|(_, _, o)| o)
            .collect();
        let p = sim.process_mut::<DnsExplorer>(h).unwrap();
        let result = DnsExplorer {
            cfg: p.cfg.clone(),
            phase: Phase::Done,
            pending_zones: vec![],
            transferred: p.transferred,
            refused: p.refused,
            query_id: 0,
            awaiting_id: None,
            pairs: p.pairs.clone(),
            mask: p.mask,
            gateways: p.gateways.clone(),
            finished: true,
        };
        (result, obs)
    }

    #[test]
    fn walks_reverse_tree_via_delegations() {
        let (p, _) = explore();
        let (transferred, refused) = p.zone_counts();
        assert_eq!(transferred, 4, "parent + three children");
        assert_eq!(refused, 0);
        assert_eq!(p.pairs().len(), 5, "pairs: {:?}", p.pairs());
    }

    #[test]
    fn bootstraps_mask_from_name_server() {
        let (p, _) = explore();
        assert_eq!(p.mask, Some(SubnetMask::from_prefix_len(24).unwrap()));
        let subnets = p.registered_subnets();
        assert_eq!(subnets.len(), 3, "{subnets:?}");
    }

    #[test]
    fn finds_multi_address_gateway() {
        let (p, obs) = explore();
        let multi = p
            .gateways()
            .iter()
            .find(|g| g.name == "big-gw.example.edu")
            .expect("big-gw found");
        assert_eq!(multi.via, GatewayHeuristic::MultiAddress);
        assert_eq!(multi.ips.len(), 2);
        // The gateway observation carries both subnets.
        assert!(obs.iter().any(|o| matches!(&o.fact,
            Fact::Gateway { subnets, .. } if subnets.len() == 2)));
    }

    #[test]
    fn finds_naming_convention_gateway() {
        let (p, _) = explore();
        let lone = p
            .gateways()
            .iter()
            .find(|g| g.name == "lone-gw.example.edu")
            .expect("lone-gw found");
        assert_eq!(lone.via, GatewayHeuristic::NamingConvention);
        assert_eq!(lone.ips.len(), 1);
    }

    #[test]
    fn emits_subnet_stats() {
        let (_, obs) = explore();
        let stats: Vec<_> = obs
            .iter()
            .filter_map(|o| match &o.fact {
                Fact::SubnetStats {
                    subnet,
                    host_count,
                    lowest,
                    highest,
                } => Some((*subnet, *host_count, *lowest, *highest)),
                _ => None,
            })
            .collect();
        assert_eq!(stats.len(), 3);
        let five = stats
            .iter()
            .find(|(s, _, _, _)| *s == "128.200.5.0/24".parse().unwrap())
            .unwrap();
        assert_eq!(five.1, 3);
        assert_eq!(five.2, "128.200.5.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(five.3, "128.200.5.53".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn records_name_address_pairs() {
        let (_, obs) = explore();
        let named = obs
            .iter()
            .filter(|o| {
                matches!(
                    &o.fact,
                    Fact::Interface {
                        name: Some(_),
                        ip: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(named, 5);
    }

    #[test]
    fn refused_axfr_is_tolerated() {
        let (mut sim, topo) = dns_world();
        // Forbid transfers of one child zone.
        let ns = topo.nodes_by_name["ns"];
        // Zones: fwd, parent, child5, child9, child7 — index 2 is child5.
        // (Private field access via a fresh server rebuild.)
        let mut server = DnsServerState::new();
        let mut z = Zone::new("200.128.in-addr.arpa".parse().unwrap());
        z.delegations
            .push("5.200.128.in-addr.arpa".parse().unwrap());
        server.add_zone(z);
        let mut z5 = Zone::new("5.200.128.in-addr.arpa".parse().unwrap());
        z5.allow_axfr = false;
        z5.add_ptr(
            DnsName::reverse_for("128.200.5.20".parse().unwrap()),
            "alpha.example.edu".parse().unwrap(),
        );
        server.add_zone(z5);
        sim.nodes[ns.0].dns = Some(server);

        let prober = topo.nodes_by_name["prober"];
        let cfg = DnsExplorerConfig::new(
            "128.200.0.0/16".parse().unwrap(),
            "128.200.5.53".parse().unwrap(),
        );
        let h = sim.spawn(prober, Box::new(DnsExplorer::new(cfg)));
        sim.run_for(SimDuration::from_mins(5));
        let p = sim.process_mut::<DnsExplorer>(h).unwrap();
        assert!(p.done());
        let (ok, refused) = p.zone_counts();
        assert_eq!(ok, 1);
        assert_eq!(refused, 1);
        assert!(p.pairs().is_empty(), "refused zone yields no pairs");
    }
}
