//! The ARPwatch Explorer Module.
//!
//! "Fremont's ARPwatch Explorer Module passively monitors ARP message
//! exchanges, and builds a table of Ethernet/IP address pairs for the
//! directly attached subnets. Because this module uses the Network
//! Interface Tap (NIT) feature of SunOS, this module must be run with
//! system privileges." It "generates no network traffic, and can be left
//! to run for long periods of time", but "will not discover hosts that are
//! not recipients of traffic from other hosts".

use std::collections::HashMap;
use std::net::Ipv4Addr;

use fremont_journal::observation::{Observation, Source};
use fremont_net::{ArpOp, ArpPacket, EtherType, EthernetFrame, MacAddr};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::{SimDuration, SimTime};

/// Configuration for [`ArpWatch`].
#[derive(Debug, Clone)]
pub struct ArpWatchConfig {
    /// Re-emit a known pair to the Journal at most this often (keeps the
    /// record's verification timestamp fresh without flooding).
    pub reverify_interval: SimDuration,
}

impl Default for ArpWatchConfig {
    fn default() -> Self {
        ArpWatchConfig {
            reverify_interval: SimDuration::from_mins(10),
        }
    }
}

/// The passive ARP monitor.
pub struct ArpWatch {
    cfg: ArpWatchConfig,
    /// `(ip, mac)` pairs seen, with the last time each was reported.
    seen: HashMap<(Ipv4Addr, MacAddr), SimTime>,
    frames_observed: u64,
}

impl ArpWatch {
    /// Creates the module.
    pub fn new(cfg: ArpWatchConfig) -> Self {
        ArpWatch {
            cfg,
            seen: HashMap::new(),
            frames_observed: 0,
        }
    }

    /// Distinct `(ip, mac)` pairs observed so far.
    pub fn pairs(&self) -> Vec<(Ipv4Addr, MacAddr)> {
        let mut v: Vec<_> = self.seen.keys().copied().collect();
        v.sort();
        v
    }

    /// Distinct IP addresses observed.
    pub fn distinct_ips(&self) -> usize {
        let mut ips: Vec<Ipv4Addr> = self.seen.keys().map(|(ip, _)| *ip).collect();
        ips.sort();
        ips.dedup();
        ips.len()
    }

    /// ARP frames inspected.
    pub fn frames_observed(&self) -> u64 {
        self.frames_observed
    }

    fn record(&mut self, ip: Ipv4Addr, mac: MacAddr, ctx: &mut ProcCtx<'_>) {
        if ip.is_unspecified() {
            return;
        }
        let now = ctx.now();
        let due = match self.seen.get(&(ip, mac)) {
            Some(last) => now.since(*last) >= self.cfg.reverify_interval,
            None => true,
        };
        if due {
            self.seen.insert((ip, mac), now);
            ctx.emit(Observation::arp_pair(Source::ArpWatch, ip, mac));
        }
    }
}

impl Process for ArpWatch {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.enable_tap(true);
    }

    fn on_tap(&mut self, frame: &EthernetFrame, ctx: &mut ProcCtx<'_>) {
        if frame.ethertype != EtherType::Arp {
            return;
        }
        let Ok(arp) = ArpPacket::decode(&frame.payload) else {
            return;
        };
        self.frames_observed += 1;
        // The sender binding is trustworthy in both requests and replies.
        // In a reply the sender *is* answering for `sender_ip` — if that is
        // proxy ARP, the same MAC accumulates many IPs, which the Journal
        // keeps visible for the analysis programs.
        self.record(arp.sender_ip, arp.sender_mac, ctx);
        if arp.op == ArpOp::Reply && !arp.target_mac.is_broadcast() {
            self.record(arp.target_ip, arp.target_mac, ctx);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::lan;
    use fremont_journal::observation::Fact;
    use fremont_netsim::time::SimDuration;
    use fremont_netsim::traffic::{Flow, TrafficModel};

    #[test]
    fn quiet_network_yields_nothing() {
        let (mut sim, topo) = lan(4);
        let h = sim.spawn(topo.hosts[0], Box::new(ArpWatch::new(Default::default())));
        sim.run_for(SimDuration::from_mins(5));
        assert_eq!(sim.process_mut::<ArpWatch>(h).unwrap().distinct_ips(), 0);
        assert!(sim.drain_observations().is_empty());
    }

    #[test]
    fn traffic_reveals_talking_hosts() {
        let (mut sim, topo) = lan(6);
        // Hosts 1 and 2 chat (host 0 runs the watcher and stays silent).
        // The watcher starts before traffic so its tap sees the exchange.
        let h = sim.spawn(topo.hosts[0], Box::new(ArpWatch::new(Default::default())));
        let dst1 = sim.nodes[topo.hosts[2].0].ifaces[0].ip;
        let dst2 = sim.nodes[topo.hosts[1].0].ifaces[0].ip;
        sim.set_traffic(TrafficModel::new(
            vec![
                Flow {
                    src: topo.hosts[1],
                    dst: dst1,
                    weight: 1.0,
                },
                Flow {
                    src: topo.hosts[2],
                    dst: dst2,
                    weight: 1.0,
                },
            ],
            SimDuration::from_secs(5),
            1,
        ));
        sim.run_for(SimDuration::from_mins(3));
        let w = sim.process_mut::<ArpWatch>(h).unwrap();
        assert_eq!(
            w.distinct_ips(),
            2,
            "both talkers discovered: {:?}",
            w.pairs()
        );
        assert!(w.frames_observed() >= 2);
        // Observations flowed to the outbox with the right source.
        let obs = sim.drain_observations();
        assert!(!obs.is_empty());
        assert!(obs.iter().all(|(_, _, o)| o.source == Source::ArpWatch));
        assert!(obs.iter().all(|(_, _, o)| matches!(
            o.fact,
            Fact::Interface {
                mac: Some(_),
                ip: Some(_),
                ..
            }
        )));
    }

    #[test]
    fn reverify_interval_limits_duplicate_emissions() {
        let (mut sim, topo) = lan(3);
        let dst = sim.nodes[topo.hosts[2].0].ifaces[0].ip;
        sim.set_traffic(TrafficModel::new(
            vec![Flow {
                src: topo.hosts[1],
                dst,
                weight: 1.0,
            }],
            SimDuration::from_secs(2),
            1,
        ));
        let _h = sim.spawn(topo.hosts[0], Box::new(ArpWatch::new(Default::default())));
        sim.run_for(SimDuration::from_mins(5));
        let obs = sim.drain_observations();
        // Host 1 ARPs for host 2 repeatedly (cache expiry >> 5 min means
        // one exchange, but the watcher would re-emit only after 10 min
        // anyway). At most one emission per pair per 10 minutes.
        assert!(
            obs.len() <= 4,
            "rate-limited re-verification, got {} observations",
            obs.len()
        );
    }
}
