//! The EtherHostProbe Explorer Module.
//!
//! "Fremont also has an EtherHostProbe Explorer Module, which attempts to
//! send an IP packet to the UDP Echo port of each host in a range of
//! addresses. Doing so causes the originating host to generate ARP
//! requests, the responses for which are entered into the host's ARP
//! table, and then read by the EtherHostProbe Explorer Module. ... The
//! module limits the rate of generated packets to four per second. It does
//! not use the Network Interface Tap and does not require special
//! privileges."

use std::net::Ipv4Addr;

use bytes::Bytes;
use fremont_journal::observation::{Observation, Source};
use fremont_net::udp::ECHO_PORT;
use fremont_net::{IpRange, MacAddr};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::SimDuration;

/// Configuration for [`EtherHostProbe`].
#[derive(Debug, Clone)]
pub struct EtherHostProbeConfig {
    /// Addresses to probe (must be on the directly attached subnet — the
    /// ARP mechanism "is limited to gathering information only about hosts
    /// that are on a directly attached, locally shared subnet").
    pub range: IpRange,
    /// Gap between probes (paper: four packets per second).
    pub interval: SimDuration,
    /// How long to wait after the sweep before harvesting the ARP cache.
    pub harvest_grace: SimDuration,
}

impl EtherHostProbeConfig {
    /// The paper's defaults over a range.
    pub fn over(range: IpRange) -> Self {
        EtherHostProbeConfig {
            range,
            interval: SimDuration::from_millis(250),
            harvest_grace: SimDuration::from_secs(5),
        }
    }
}

/// Module state.
pub struct EtherHostProbe {
    cfg: EtherHostProbeConfig,
    queue: Vec<Ipv4Addr>,
    next: usize,
    found: Vec<(Ipv4Addr, MacAddr)>,
    probes_sent: u64,
    finished: bool,
}

const TIMER_NEXT: u64 = 1;
const TIMER_HARVEST: u64 = 2;

impl EtherHostProbe {
    /// Creates the module.
    pub fn new(cfg: EtherHostProbeConfig) -> Self {
        let queue = cfg.range.iter().collect();
        EtherHostProbe {
            cfg,
            queue,
            next: 0,
            found: Vec::new(),
            probes_sent: 0,
            finished: false,
        }
    }

    /// `(ip, mac)` pairs harvested from the ARP cache.
    pub fn found(&self) -> &[(Ipv4Addr, MacAddr)] {
        &self.found
    }

    /// Probes transmitted.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }
}

impl Process for EtherHostProbe {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, TIMER_NEXT);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut ProcCtx<'_>) {
        match token {
            TIMER_NEXT => {
                if self.next >= self.queue.len() {
                    ctx.set_timer(self.cfg.harvest_grace, TIMER_HARVEST);
                    return;
                }
                let target = self.queue[self.next];
                self.next += 1;
                self.probes_sent += 1;
                // The UDP packet itself is almost irrelevant; what matters
                // is the ARP request the host stack emits to deliver it.
                let _ = ctx.send_udp(target, 1042, ECHO_PORT, Bytes::from_static(b"fremont"));
                ctx.set_timer(self.cfg.interval, TIMER_NEXT);
            }
            TIMER_HARVEST => {
                // Read the kernel ARP table (no privileges needed).
                for (ip, mac) in ctx.arp_snapshot() {
                    if self.cfg.range.contains(ip) {
                        self.found.push((ip, mac));
                        ctx.emit(Observation::arp_pair(Source::EtherHostProbe, ip, mac));
                    }
                }
                self.finished = true;
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::lan;
    use fremont_journal::observation::Fact;

    #[test]
    fn harvests_macs_of_up_hosts() {
        let (mut sim, topo) = lan(4);
        let range = IpRange::new("10.7.7.1".parse().unwrap(), "10.7.7.30".parse().unwrap());
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(EtherHostProbe::new(EtherHostProbeConfig::over(range))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<EtherHostProbe>(h).unwrap();
        assert!(p.done());
        assert_eq!(p.probes_sent(), 30);
        // 3 other hosts + gateway = 4 ARP entries (own address never ARPs).
        assert_eq!(p.found().len(), 4, "found: {:?}", p.found());
        // MACs are real vendor-prefixed addresses.
        let obs = sim.drain_observations();
        assert_eq!(obs.len(), 4);
        for (_, _, o) in &obs {
            assert_eq!(o.source, Source::EtherHostProbe);
            match &o.fact {
                Fact::Interface { mac: Some(m), .. } => {
                    assert!(m.vendor().is_some(), "vendor for {m}")
                }
                other => panic!("wrong fact {other:?}"),
            }
        }
    }

    #[test]
    fn down_hosts_never_enter_the_cache() {
        let (mut sim, topo) = lan(4);
        sim.set_node_up(topo.hosts[1], false);
        let range = IpRange::new("10.7.7.10".parse().unwrap(), "10.7.7.13".parse().unwrap());
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(EtherHostProbe::new(EtherHostProbeConfig::over(range))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<EtherHostProbe>(h).unwrap();
        assert_eq!(p.found().len(), 2, "hosts .12/.13; .11 down, .10 is self");
    }

    #[test]
    fn rate_is_four_per_second() {
        let (mut sim, topo) = lan(1);
        let range = IpRange::new("10.7.7.10".parse().unwrap(), "10.7.7.49".parse().unwrap());
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(EtherHostProbe::new(EtherHostProbeConfig::over(range))),
        );
        // 40 probes at 4/s = 10 s; not done at 5 s.
        sim.run_for(SimDuration::from_secs(5));
        {
            let p = sim.process_mut::<EtherHostProbe>(h).unwrap();
            assert!(!p.done());
            assert!(
                p.probes_sent() >= 18 && p.probes_sent() <= 22,
                "{}",
                p.probes_sent()
            );
        }
        sim.run_for(SimDuration::from_secs(30));
        assert!(sim.process_mut::<EtherHostProbe>(h).unwrap().done());
    }
}
