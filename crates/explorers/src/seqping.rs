//! The Sequential Ping Explorer Module.
//!
//! "The Sequential Ping Explorer Module is the simplest and most reliable
//! of the modules, because virtually every host implements the ICMP Echo
//! Request/Reply protocol. The load presented to the network is low,
//! because request packets are sent only once every two seconds. ... If
//! the module receives no response to a packet after issuing one request
//! to each destination address, it sends one more request packet to each
//! destination that did not respond."

use std::collections::HashSet;
use std::net::Ipv4Addr;

use fremont_journal::observation::{Observation, Source};
use fremont_net::{IcmpMessage, IpProtocol, IpRange, Ipv4Packet};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::SimDuration;

/// Configuration for [`SeqPing`].
#[derive(Debug, Clone)]
pub struct SeqPingConfig {
    /// Addresses to sweep.
    pub range: IpRange,
    /// Gap between requests (paper: 2 seconds).
    pub interval: SimDuration,
    /// ICMP identifier for this run.
    pub ident: u16,
}

impl SeqPingConfig {
    /// The paper's defaults over a range.
    pub fn over(range: IpRange) -> Self {
        SeqPingConfig {
            range,
            interval: SimDuration::from_secs(2),
            ident: 0x5EC1,
        }
    }
}

/// Module state.
pub struct SeqPing {
    cfg: SeqPingConfig,
    queue: Vec<Ipv4Addr>,
    next: usize,
    pass: u8,
    responders: HashSet<Ipv4Addr>,
    sent: u64,
    finished: bool,
}

const TIMER_NEXT: u64 = 1;

impl SeqPing {
    /// Creates the module.
    pub fn new(cfg: SeqPingConfig) -> Self {
        let queue: Vec<Ipv4Addr> = cfg.range.iter().collect();
        SeqPing {
            cfg,
            queue,
            next: 0,
            pass: 1,
            responders: HashSet::new(),
            sent: 0,
            finished: false,
        }
    }

    /// Addresses that answered.
    pub fn responders(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<_> = self.responders.iter().copied().collect();
        v.sort_by_key(|ip| u32::from(*ip));
        v
    }

    /// Echo requests sent.
    pub fn requests_sent(&self) -> u64 {
        self.sent
    }

    fn send_next(&mut self, ctx: &mut ProcCtx<'_>) {
        loop {
            if self.next >= self.queue.len() {
                if self.pass == 1 {
                    // Second pass over non-responders.
                    self.pass = 2;
                    self.queue.retain(|ip| !self.responders.contains(ip));
                    self.next = 0;
                    if self.queue.is_empty() {
                        self.finished = true;
                        return;
                    }
                } else {
                    // Allow stragglers a final timeout window.
                    ctx.set_timer(SimDuration::from_secs(5), 2);
                    return;
                }
            }
            let target = self.queue[self.next];
            self.next += 1;
            if self.pass == 2 && self.responders.contains(&target) {
                continue;
            }
            let msg = IcmpMessage::EchoRequest {
                ident: self.cfg.ident,
                seq: self.sent as u16,
                payload: vec![0u8; 8],
            };
            self.sent += 1;
            let _ = ctx.send_icmp(target, &msg);
            ctx.set_timer(self.cfg.interval, TIMER_NEXT);
            return;
        }
    }
}

impl Process for SeqPing {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        self.send_next(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut ProcCtx<'_>) {
        match token {
            TIMER_NEXT => self.send_next(ctx),
            _ => self.finished = true,
        }
    }

    fn on_ip(&mut self, pkt: &Ipv4Packet, ctx: &mut ProcCtx<'_>) {
        if pkt.protocol != IpProtocol::Icmp {
            return;
        }
        let Ok(IcmpMessage::EchoReply { ident, .. }) = IcmpMessage::decode(&pkt.payload) else {
            return;
        };
        if ident != self.cfg.ident {
            return;
        }
        if self.cfg.range.contains(pkt.src) && self.responders.insert(pkt.src) {
            ctx.emit(Observation::ip_alive(Source::SeqPing, pkt.src));
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::lan;

    #[test]
    fn finds_all_up_hosts_in_range() {
        let (mut sim, topo) = lan(5);
        let range = IpRange::new("10.7.7.1".parse().unwrap(), "10.7.7.20".parse().unwrap());
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SeqPing::new(SeqPingConfig::over(range))),
        );
        sim.run_for(SimDuration::from_mins(3));
        let p = sim.process_mut::<SeqPing>(h).unwrap();
        assert!(p.done());
        // 4 other hosts + gateway answer; the prober does not probe itself
        // out of existence (its own address replies too via loopback-less
        // stack? no — it never receives its own echo), so expect 5.
        let got = p.responders();
        assert_eq!(got.len(), 5, "responders: {got:?}");
        assert!(
            got.contains(&"10.7.7.1".parse().unwrap()),
            "gateway replies"
        );
    }

    #[test]
    fn down_hosts_are_missed() {
        let (mut sim, topo) = lan(5);
        sim.set_node_up(topo.hosts[2], false);
        sim.set_node_up(topo.hosts[3], false);
        let range = IpRange::new("10.7.7.10".parse().unwrap(), "10.7.7.14".parse().unwrap());
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SeqPing::new(SeqPingConfig::over(range))),
        );
        sim.run_for(SimDuration::from_mins(3));
        let p = sim.process_mut::<SeqPing>(h).unwrap();
        assert_eq!(
            p.responders().len(),
            2,
            "hosts 1 and 4 (prober's own address never replies)"
        );
    }

    #[test]
    fn retry_pass_doubles_requests_for_dead_space() {
        let (mut sim, topo) = lan(1);
        // Range of 4 entirely-unused addresses: 4 + 4 retries.
        let range = IpRange::new("10.7.7.100".parse().unwrap(), "10.7.7.103".parse().unwrap());
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SeqPing::new(SeqPingConfig::over(range))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let p = sim.process_mut::<SeqPing>(h).unwrap();
        assert_eq!(p.requests_sent(), 8);
        assert!(p.responders().is_empty());
        assert!(p.done());
    }

    #[test]
    fn paces_at_configured_interval() {
        let (mut sim, topo) = lan(1);
        let range = IpRange::new("10.7.7.50".parse().unwrap(), "10.7.7.59".parse().unwrap());
        let before = sim.now();
        let h = sim.spawn(
            topo.hosts[0],
            Box::new(SeqPing::new(SeqPingConfig::over(range))),
        );
        // 10 addresses * 2s + retries 10 * 2s ≈ 40s minimum.
        sim.run_for(SimDuration::from_secs(30));
        let p = sim.process_mut::<SeqPing>(h).unwrap();
        assert!(!p.done(), "sweep must still be running at 30s");
        sim.run_for(SimDuration::from_secs(60));
        let p = sim.process_mut::<SeqPing>(h).unwrap();
        assert!(p.done());
        let _ = before;
    }

    #[test]
    fn observations_are_emitted_per_responder() {
        let (mut sim, topo) = lan(3);
        let range = IpRange::new("10.7.7.10".parse().unwrap(), "10.7.7.12".parse().unwrap());
        sim.spawn(
            topo.hosts[0],
            Box::new(SeqPing::new(SeqPingConfig::over(range))),
        );
        sim.run_for(SimDuration::from_mins(2));
        let obs = sim.drain_observations();
        assert_eq!(obs.len(), 2, "hosts .11 and .12 respond (prober is .10)");
        assert!(obs.iter().all(|(_, _, o)| o.source == Source::SeqPing));
    }
}
