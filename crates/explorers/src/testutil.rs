//! Shared test fixtures for the explorer-module unit tests.

use fremont_netsim::builder::{Topology, TopologyBuilder};
use fremont_netsim::engine::Sim;

/// A single /24 LAN (`10.7.7.0/24`) with `n` hosts at `.10`, `.11`, ...
/// and a router at `.1` uplinking to a stub backbone.
pub fn lan(n: usize) -> (Sim, Topology) {
    let mut b = TopologyBuilder::new();
    let lan = b.segment("lan", "10.7.7.0/24");
    let bb = b.segment("bb", "10.7.0.0/24");
    for i in 0..n {
        b.host(&format!("host{i}"), lan, 10 + i as u32);
    }
    b.router("gw", &[(lan, 1), (bb, 1)]);
    b.build(0xF0E)
}

/// Three subnets in a line with hosts on each end:
/// `10.1.1.0/24 --r1-- 10.1.2.0/24 --r2-- 10.1.3.0/24`.
pub fn line3() -> (Sim, Topology) {
    let mut b = TopologyBuilder::new();
    let a = b.segment("net-a", "10.1.1.0/24");
    let m = b.segment("net-m", "10.1.2.0/24");
    let c = b.segment("net-c", "10.1.3.0/24");
    b.host("left", a, 10);
    b.host("right", c, 10);
    b.router("r1", &[(a, 1), (m, 1)]);
    b.router("r2", &[(m, 2), (c, 1)]);
    b.build(0x11E3)
}
