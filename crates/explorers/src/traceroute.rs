//! The Traceroute Explorer Module.
//!
//! "Fremont's Traceroute Explorer Module uses this mechanism to determine
//! the structure of the network surrounding the host on which the module
//! is running ... by using the traceroute scheme to identify gateways and
//! the subnets to which those gateways are connected."
//!
//! Faithful to the paper's description:
//! * probes **three addresses per target subnet** — host zero, `.1`, and
//!   `.2` — to maximize the chance of both a reply from the subnet and a
//!   final Time Exceeded from its gateway;
//! * runs destinations **in parallel**, limited to 8 packets/second and at
//!   most 80 outstanding probes, with a 10-second probe timeout;
//! * **stops on routing loops** and at a configurable boundary (the
//!   "national backbone" stop list);
//! * tolerates the broken-router modes (silent drops, TTL-reflected
//!   errors) by giving up on a destination after repeated timeouts;
//! * sees only the **near-side interface** of each transit router, so a
//!   single run discovers "half the interfaces traversed".

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use bytes::Bytes;
use fremont_journal::observation::{Fact, Observation, Source};
use fremont_net::icmp::UnreachableCode;
use fremont_net::udp::TRACEROUTE_BASE_PORT;
use fremont_net::{IcmpMessage, IpProtocol, Ipv4Packet, Subnet, SubnetMask, UdpDatagram};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::{SimDuration, SimTime};

/// Configuration for [`Traceroute`].
#[derive(Debug, Clone)]
pub struct TracerouteConfig {
    /// Target subnets to trace toward.
    pub targets: Vec<Subnet>,
    /// Maximum TTL per destination.
    pub max_ttl: u8,
    /// Probe timeout (paper: ten seconds).
    pub probe_timeout: SimDuration,
    /// Gap between transmissions (paper: ≤ 8 packets/second).
    pub send_interval: SimDuration,
    /// Maximum outstanding probes (paper: up to 80).
    pub max_outstanding: usize,
    /// Stop tracing once a hop falls outside this boundary (`None` = no
    /// stop list). The paper "stops tracing towards a particular
    /// destination if that trace reaches any of several national backbone
    /// networks".
    pub boundary: Option<Subnet>,
    /// Mask assumed when grouping hop addresses into subnets (the real
    /// module took masks from the Journal; /24 matches the campus).
    pub mask_hint: SubnetMask,
    /// Consecutive probe timeouts on one destination before giving up.
    pub max_timeouts: u8,
    /// First TTL tried. The paper's future-work optimization: "if the
    /// network to be traced is only reachable through node G, and if G is
    /// exactly and always H hops away ... all traces can start with a TTL
    /// of H+1 rather than 1, because every packet will follow the same
    /// path for the first H hops."
    pub start_ttl: u8,
}

impl TracerouteConfig {
    /// The paper's defaults toward a set of target subnets.
    pub fn over(targets: Vec<Subnet>) -> Self {
        TracerouteConfig {
            targets,
            max_ttl: 30,
            probe_timeout: SimDuration::from_secs(10),
            send_interval: SimDuration::from_millis(125),
            max_outstanding: 80,
            boundary: None,
            mask_hint: SubnetMask::CLASS_C,
            max_timeouts: 2,
            start_ttl: 1,
        }
    }
}

/// Terminal status of one traced destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStatus {
    /// Still being probed.
    Active,
    /// A final (Port/Host/Protocol Unreachable) reply arrived from this
    /// address.
    Reached(Ipv4Addr),
    /// The same hop appeared twice: routing loop.
    Loop,
    /// A hop fell outside the configured boundary.
    Boundary,
    /// Too many timeouts or TTL exhausted.
    GaveUp,
    /// A transit router reported the network unreachable.
    Unreachable,
}

/// Per-destination trace state.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Probed destination address.
    pub dest: Ipv4Addr,
    /// The target subnet this destination belongs to.
    pub subnet: Subnet,
    /// Hop addresses by TTL (index 0 = TTL 1); `None` = timeout at that
    /// TTL.
    pub hops: Vec<Option<Ipv4Addr>>,
    /// Terminal status.
    pub status: TraceStatus,
    ttl: u8,
    awaiting: Option<u16>,
    timeouts: u8,
}

/// The traceroute module.
pub struct Traceroute {
    cfg: TracerouteConfig,
    traces: Vec<Trace>,
    /// Outstanding probes: destination port → (trace idx, ttl, sent at).
    outstanding: HashMap<u16, (usize, u8, SimTime)>,
    next_port: u16,
    cursor: usize,
    probes_sent: u64,
    finished: bool,
}

const TIMER_TICK: u64 = 1;

impl Traceroute {
    /// Creates the module: three destinations per target subnet.
    pub fn new(cfg: TracerouteConfig) -> Self {
        let mut traces = Vec::with_capacity(cfg.targets.len() * 3);
        for &subnet in &cfg.targets {
            // Host zero plus the two lowest host numbers: "although one of
            // those addresses may actually be the interface address of the
            // gateway ... the other address will not be that same gateway".
            for n in 0..3u32 {
                if let Some(dest) = subnet.nth(n) {
                    traces.push(Trace {
                        dest,
                        subnet,
                        hops: Vec::new(),
                        status: TraceStatus::Active,
                        ttl: cfg.start_ttl.max(1),
                        awaiting: None,
                        timeouts: 0,
                    });
                }
            }
        }
        Traceroute {
            cfg,
            traces,
            outstanding: HashMap::new(),
            next_port: TRACEROUTE_BASE_PORT,
            cursor: 0,
            probes_sent: 0,
            finished: false,
        }
    }

    /// All per-destination traces.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Target subnets confirmed reachable (a final reply arrived for at
    /// least one of their three destinations).
    pub fn reached_subnets(&self) -> Vec<Subnet> {
        let mut v: Vec<Subnet> = self
            .traces
            .iter()
            .filter(|t| matches!(t.status, TraceStatus::Reached(_)))
            .map(|t| t.subnet)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Every distinct gateway interface address seen as a hop.
    pub fn gateway_interfaces(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self
            .traces
            .iter()
            .flat_map(|t| t.hops.iter().flatten().copied())
            .collect();
        v.sort_by_key(|ip| u32::from(*ip));
        v.dedup();
        v
    }

    /// Probes transmitted.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    fn tick(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.finished {
            return;
        }
        self.expire(ctx.now());
        self.fill_pipeline(ctx);
        if self.all_terminal() && self.outstanding.is_empty() {
            self.finalize(ctx);
            return;
        }
        ctx.set_timer(self.cfg.send_interval, TIMER_TICK);
    }

    fn expire(&mut self, now: SimTime) {
        let timeout = self.cfg.probe_timeout;
        let expired: Vec<u16> = self
            .outstanding
            .iter()
            .filter(|(_, (_, _, at))| now.since(*at) >= timeout)
            .map(|(p, _)| *p)
            .collect();
        for port in expired {
            let Some((idx, ttl, _)) = self.outstanding.remove(&port) else {
                continue;
            };
            let t = &mut self.traces[idx];
            if t.awaiting != Some(port) {
                continue; // A stale reply for a superseded probe.
            }
            t.awaiting = None;
            record_hop(t, ttl, None);
            t.timeouts += 1;
            if t.timeouts >= self.cfg.max_timeouts || t.ttl >= self.cfg.max_ttl {
                t.status = TraceStatus::GaveUp;
            } else {
                t.ttl += 1;
            }
        }
    }

    /// Sends at most one probe per tick ("ensures that no more than eight
    /// packets per second appear on the network").
    fn fill_pipeline(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.outstanding.len() >= self.cfg.max_outstanding {
            return;
        }
        let n = self.traces.len();
        for _ in 0..n {
            let idx = self.cursor % n.max(1);
            self.cursor += 1;
            let t = &mut self.traces[idx];
            if t.status != TraceStatus::Active || t.awaiting.is_some() {
                continue;
            }
            // Allocate a fresh improbable port.
            self.next_port = self.next_port.wrapping_add(1);
            if self.next_port < TRACEROUTE_BASE_PORT {
                self.next_port = TRACEROUTE_BASE_PORT;
            }
            let port = self.next_port;
            let dgram = UdpDatagram::new(40000, port, Bytes::from_static(&[0u8; 12]));
            let dest = t.dest;
            let ttl = t.ttl;
            t.awaiting = Some(port);
            self.outstanding.insert(port, (idx, ttl, ctx.now()));
            self.probes_sent += 1;
            if ctx
                .send_ip(
                    dest,
                    IpProtocol::Udp,
                    Bytes::from(dgram.encode()),
                    Some(ttl),
                    None,
                )
                .is_err()
            {
                // The stack refused the probe (no route): don't wait out
                // the full timeout for a packet that never left.
                self.outstanding.remove(&port);
                let t = &mut self.traces[idx];
                t.awaiting = None;
                t.status = TraceStatus::Unreachable;
            }
            return;
        }
    }

    fn all_terminal(&self) -> bool {
        self.traces.iter().all(|t| t.status != TraceStatus::Active)
    }

    /// Emits Journal observations synthesized from the collected traces.
    ///
    /// For a path `h1, h2, ..., hk` toward subnet `T`: hop `h_i` is the
    /// near-side interface of gateway `i`, which is also attached to the
    /// subnet containing `h_(i+1)` (it forwarded the probe onto it). If a
    /// final reply arrived from `f`, the last gateway connects its hop
    /// subnet and `T` — even when `f` itself is the only evidence and "the
    /// address of the interface on that subnet" is unknown.
    fn finalize(&mut self, ctx: &mut ProcCtx<'_>) {
        let mask = self.cfg.mask_hint;
        let sub_of = |ip: Ipv4Addr| Subnet::containing(ip, mask);
        let mut emitted_gateways: HashSet<(Ipv4Addr, Subnet)> = HashSet::new();
        let mut emitted_subnets: HashSet<Subnet> = HashSet::new();
        let mut observations: Vec<Observation> = Vec::new();

        for t in &self.traces {
            // Keep TTL positions: a gateway may only be linked to the next
            // hop's subnet when that hop answered at the *adjacent* TTL —
            // a silent router in between means the two visible hops do NOT
            // share a wire.
            let hops: Vec<(usize, Ipv4Addr)> = t
                .hops
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.map(|a| (i, a)))
                .collect();
            for (k, &(ttl_i, h)) in hops.iter().enumerate() {
                let mut subnets = vec![sub_of(h)];
                if let Some(&(ttl_j, next)) = hops.get(k + 1) {
                    if ttl_j == ttl_i + 1 && sub_of(next) != sub_of(h) {
                        subnets.push(sub_of(next));
                    }
                }
                let is_last_recorded = ttl_i + 1 == t.hops.len();
                if let (true, true, TraceStatus::Reached(f)) =
                    (k + 1 == hops.len(), is_last_recorded, t.status)
                {
                    // Last transit gateway also touches the final subnet —
                    // but only when the reply came right after this hop
                    // (no timed-out TTLs in between).
                    if sub_of(f) != sub_of(h) {
                        subnets.push(sub_of(f));
                    }
                }
                let key_new = subnets.iter().any(|s| emitted_gateways.insert((h, *s)));
                if key_new {
                    observations.push(Observation::new(
                        Source::Traceroute,
                        Fact::Gateway {
                            interface_ips: vec![h],
                            interface_names: vec![],
                            subnets: subnets.clone(),
                        },
                    ));
                }
                for s in subnets {
                    if emitted_subnets.insert(s) {
                        observations.push(Observation::subnet(Source::Traceroute, s, true));
                    }
                }
            }
            if let TraceStatus::Reached(f) = t.status {
                // The target subnet exists; the responder is an interface.
                if emitted_subnets.insert(t.subnet) {
                    observations.push(Observation::subnet(Source::Traceroute, t.subnet, true));
                }
                observations.push(Observation::ip_alive(Source::Traceroute, f));
                // A final responder answering for a different target
                // address from within the subnet is a gateway interface on
                // that subnet.
                if f != t.dest && t.subnet.contains(f) && emitted_gateways.insert((f, t.subnet)) {
                    observations.push(Observation::new(
                        Source::Traceroute,
                        Fact::Gateway {
                            interface_ips: vec![f],
                            interface_names: vec![],
                            subnets: vec![t.subnet],
                        },
                    ));
                }
            }
        }
        for o in observations {
            ctx.emit(o);
        }
        self.finished = true;
    }

    fn on_icmp(&mut self, pkt: &Ipv4Packet, msg: &IcmpMessage) {
        let Some(embedded) = msg.embedded_packet() else {
            return;
        };
        let Some((_, dst_port)) = embedded.udp_ports() else {
            return;
        };
        let Some((idx, ttl, _)) = self.outstanding.remove(&dst_port) else {
            return;
        };
        let t = &mut self.traces[idx];
        if t.awaiting == Some(dst_port) {
            t.awaiting = None;
        }
        if t.status != TraceStatus::Active {
            return;
        }
        match msg {
            IcmpMessage::TimeExceeded { .. } => {
                // Routing-loop guard: the same router answering at two
                // TTLs means the probe is circling.
                if t.hops.iter().flatten().any(|h| *h == pkt.src) {
                    t.status = TraceStatus::Loop;
                    return;
                }
                record_hop(t, ttl, Some(pkt.src));
                t.timeouts = 0;
                if let Some(boundary) = self.cfg.boundary {
                    if !boundary.contains(pkt.src) {
                        t.status = TraceStatus::Boundary;
                        return;
                    }
                }
                if t.ttl >= self.cfg.max_ttl {
                    t.status = TraceStatus::GaveUp;
                } else {
                    t.ttl += 1;
                }
            }
            IcmpMessage::DestinationUnreachable { code, .. } => match code {
                UnreachableCode::Port | UnreachableCode::Protocol | UnreachableCode::Host => {
                    t.status = TraceStatus::Reached(pkt.src);
                }
                _ => {
                    t.status = TraceStatus::Unreachable;
                }
            },
            _ => {}
        }
    }
}

fn record_hop(t: &mut Trace, ttl: u8, addr: Option<Ipv4Addr>) {
    let i = usize::from(ttl).saturating_sub(1);
    if t.hops.len() <= i {
        t.hops.resize(i + 1, None);
    }
    t.hops[i] = addr;
}

impl Process for Traceroute {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.traces.is_empty() {
            self.finished = true;
            return;
        }
        self.tick(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut ProcCtx<'_>) {
        if token == TIMER_TICK {
            self.tick(ctx);
        }
    }

    fn on_ip(&mut self, pkt: &Ipv4Packet, _ctx: &mut ProcCtx<'_>) {
        if pkt.protocol != IpProtocol::Icmp {
            return;
        }
        let Ok(msg) = IcmpMessage::decode(&pkt.payload) else {
            return;
        };
        if msg.is_error() {
            self.on_icmp(pkt, &msg);
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::line3;
    use fremont_netsim::node::TracerouteBug;

    fn subnet(s: &str) -> Subnet {
        s.parse().unwrap()
    }

    fn run_trace(
        mutate: impl FnOnce(&mut fremont_netsim::engine::Sim, &fremont_netsim::builder::Topology),
        targets: Vec<Subnet>,
    ) -> (Vec<Trace>, Vec<Observation>, Vec<Ipv4Addr>) {
        let (mut sim, topo) = line3();
        mutate(&mut sim, &topo);
        let left = topo.nodes_by_name["left"];
        let h = sim.spawn(
            left,
            Box::new(Traceroute::new(TracerouteConfig::over(targets))),
        );
        sim.run_for(SimDuration::from_mins(10));
        let p = sim.process_mut::<Traceroute>(h).unwrap();
        assert!(p.done(), "traceroute must finish");
        let traces = p.traces().to_vec();
        let gws = p.gateway_interfaces();
        let obs = sim
            .drain_observations()
            .into_iter()
            .map(|(_, _, o)| o)
            .collect();
        (traces, obs, gws)
    }

    #[test]
    fn traces_two_hops_to_far_subnet() {
        let (traces, obs, gws) = run_trace(|_, _| {}, vec![subnet("10.1.3.0/24")]);
        assert_eq!(traces.len(), 3, "three destinations per subnet");
        // At least one destination reached a final reply.
        assert!(
            traces
                .iter()
                .any(|t| matches!(t.status, TraceStatus::Reached(_))),
            "statuses: {:?}",
            traces.iter().map(|t| t.status).collect::<Vec<_>>()
        );
        // Hops are the near-side router interfaces: r1 @ 10.1.1.1, r2 @ 10.1.2.2.
        assert!(gws.contains(&"10.1.1.1".parse().unwrap()), "{gws:?}");
        assert!(gws.contains(&"10.1.2.2".parse().unwrap()), "{gws:?}");
        // Far-side transit interfaces (10.1.2.1) are NOT seen as hops —
        // "the Traceroute module will only discover half the interfaces".
        assert!(!gws.contains(&"10.1.2.1".parse().unwrap()), "{gws:?}");
        // Gateway observations link hop subnets: r1 connects 10.1.1/24
        // and 10.1.2/24.
        let r1_links = obs.iter().any(|o| {
            matches!(&o.fact, Fact::Gateway { interface_ips, subnets, .. }
                if interface_ips.contains(&"10.1.1.1".parse().unwrap())
                && subnets.contains(&subnet("10.1.1.0/24"))
                && subnets.contains(&subnet("10.1.2.0/24")))
        });
        assert!(r1_links, "r1 linked to both its subnets: {obs:#?}");
        // And the target subnet is reported to exist.
        assert!(obs.iter().any(|o| matches!(&o.fact,
            Fact::Subnet { subnet: s, .. } if *s == subnet("10.1.3.0/24"))));
    }

    #[test]
    fn local_subnet_needs_no_hops() {
        let (traces, _, _) = run_trace(|_, _| {}, vec![subnet("10.1.1.0/24")]);
        assert!(traces
            .iter()
            .any(|t| matches!(t.status, TraceStatus::Reached(_))));
        // No transit router involved: no hops recorded for reached traces.
        for t in &traces {
            if matches!(t.status, TraceStatus::Reached(_)) {
                assert!(t.hops.iter().flatten().count() == 0, "{t:?}");
            }
        }
    }

    #[test]
    fn silent_drop_router_hides_itself_but_probe_still_arrives() {
        let (traces, _, gws) = run_trace(
            |sim, topo| {
                let r2 = topo.nodes_by_name["r2"];
                sim.nodes[r2.0].behavior.traceroute_bug = TracerouteBug::SilentDrop;
            },
            vec![subnet("10.1.3.0/24")],
        );
        // r2 never sends Time Exceeded, so its interface is unseen...
        assert!(!gws.contains(&"10.1.2.2".parse().unwrap()), "{gws:?}");
        // ...but after the timeout the TTL grows past it and the probes
        // still reach the target subnet.
        assert!(traces
            .iter()
            .any(|t| matches!(t.status, TraceStatus::Reached(_))));
    }

    #[test]
    fn probe_filtering_router_blocks_discovery() {
        let (traces, obs, _) = run_trace(
            |sim, topo| {
                let r2 = topo.nodes_by_name["r2"];
                sim.nodes[r2.0].behavior.filter_udp_probes = true;
            },
            vec![subnet("10.1.3.0/24")],
        );
        assert!(
            traces.iter().all(|t| t.status == TraceStatus::GaveUp),
            "all probes die at the filtering gateway: {traces:?}"
        );
        // The target subnet must NOT be claimed to exist.
        assert!(!obs.iter().any(|o| matches!(&o.fact,
            Fact::Subnet { subnet: s, .. } if *s == subnet("10.1.3.0/24"))));
    }

    #[test]
    fn boundary_stops_traces() {
        let (traces, _, _) = run_trace(|_, _| {}, vec![subnet("10.1.3.0/24")]);
        let _ = traces;
        // Re-run with a boundary excluding everything beyond 10.1.1/24.
        let (traces, _, gws) = {
            let (mut sim, topo) = line3();
            let left = topo.nodes_by_name["left"];
            let mut cfg = TracerouteConfig::over(vec![subnet("10.1.3.0/24")]);
            cfg.boundary = Some(subnet("10.1.1.0/24"));
            let h = sim.spawn(left, Box::new(Traceroute::new(cfg)));
            sim.run_for(SimDuration::from_mins(5));
            let p = sim.process_mut::<Traceroute>(h).unwrap();
            assert!(p.done());
            (p.traces().to_vec(), (), p.gateway_interfaces())
        };
        // `.0` and `.1` probes are *delivered* at r2 (host-zero / its own
        // interface) and come back Reached before any boundary test, but
        // the `.2` probe expires at r2 — whose address 10.1.2.2 is outside
        // the boundary — and stops.
        assert!(
            traces.iter().any(|t| t.status == TraceStatus::Boundary),
            "{traces:?}"
        );
        assert!(gws.contains(&"10.1.1.1".parse().unwrap()));
        // No hop beyond the out-of-boundary router was ever recorded.
        assert!(gws
            .iter()
            .all(|g| *g == "10.1.1.1".parse::<Ipv4Addr>().unwrap()
                || *g == "10.1.2.2".parse::<Ipv4Addr>().unwrap()));
    }

    #[test]
    fn respects_packet_rate() {
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        let targets = vec![subnet("10.1.2.0/24"), subnet("10.1.3.0/24")];
        let h = sim.spawn(
            left,
            Box::new(Traceroute::new(TracerouteConfig::over(targets))),
        );
        sim.run_for(SimDuration::from_secs(2));
        let p = sim.process_mut::<Traceroute>(h).unwrap();
        assert!(
            p.probes_sent() <= 17,
            "≤8 probes/sec budget, sent {} in 2s",
            p.probes_sent()
        );
    }

    #[test]
    fn start_ttl_skips_known_initial_hops() {
        // The paper's future-work optimization: every destination is
        // behind r1 (1 hop away), so start tracing at TTL 2 and skip
        // re-tracing the shared first hop.
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        let mut cfg = TracerouteConfig::over(vec![subnet("10.1.3.0/24")]);
        cfg.start_ttl = 2;
        let h = sim.spawn(left, Box::new(Traceroute::new(cfg)));
        sim.run_for(SimDuration::from_mins(5));
        let p = sim.process_mut::<Traceroute>(h).unwrap();
        assert!(p.done());
        let gws = p.gateway_interfaces();
        // r1's near side (hop 1) was never probed...
        assert!(!gws.contains(&"10.1.1.1".parse().unwrap()), "{gws:?}");
        // ...and the target is still reached (with fewer probes).
        assert!(p
            .traces()
            .iter()
            .any(|t| matches!(t.status, TraceStatus::Reached(_))));
        assert!(
            p.probes_sent() <= 6,
            "skipping hop 1 saves probes: {}",
            p.probes_sent()
        );
    }

    #[test]
    fn empty_target_list_finishes() {
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        let h = sim.spawn(
            left,
            Box::new(Traceroute::new(TracerouteConfig::over(vec![]))),
        );
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.process_done(h));
    }
}
