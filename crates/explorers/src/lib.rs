//! # fremont-explorers
//!
//! The eight Explorer Modules of the Fremont prototype (paper Table 3),
//! implemented as event-driven [`fremont_netsim::process::Process`]es:
//!
//! | Source | Module | Style |
//! |--------|--------|-------|
//! | ARP    | [`arpwatch::ArpWatch`] | passive (tap) |
//! | ARP    | [`etherhostprobe::EtherHostProbe`] | active, ≤4 pkt/s |
//! | ICMP   | [`seqping::SeqPing`] | active, 1 req / 2 s |
//! | ICMP   | [`brdcastping::BrdcastPing`] | active, directed broadcast |
//! | ICMP   | [`subnetmasks::SubnetMasks`] | active, mask requests |
//! | ICMP   | [`traceroute::Traceroute`] | active, TTL-stepped, ≤8 pkt/s |
//! | RIP    | [`ripwatch::RipWatch`] | passive (tap) |
//! | DNS    | [`dns_explorer::DnsExplorer`] | zone transfers |
//!
//! A ninth module, [`ripprobe::RipProbe`], implements the paper's
//! future-work extension: directed RIP Request/Poll queries that can be
//! routed across the network.
//!
//! Each module reports what it discovers as
//! [`fremont_journal::Observation`]s, which the driving deployment stores
//! in the Journal; modules never share state with each other except
//! through the Journal, exactly as the paper prescribes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arpwatch;
pub mod brdcastping;
pub mod dns_explorer;
pub mod etherhostprobe;
pub mod ripprobe;
pub mod ripwatch;
pub mod seqping;
pub mod subnetmasks;
pub mod traceroute;

#[cfg(test)]
mod testutil;

pub use arpwatch::{ArpWatch, ArpWatchConfig};
pub use brdcastping::{BrdcastPing, BrdcastPingConfig};
pub use dns_explorer::{DnsExplorer, DnsExplorerConfig, DnsGateway, GatewayHeuristic};
pub use etherhostprobe::{EtherHostProbe, EtherHostProbeConfig};
pub use ripprobe::{RipProbe, RipProbeConfig};
pub use ripwatch::{RipWatch, RipWatchConfig};
pub use seqping::{SeqPing, SeqPingConfig};
pub use subnetmasks::{SubnetMasks, SubnetMasksConfig};
pub use traceroute::{Trace, TraceStatus, Traceroute, TracerouteConfig};
