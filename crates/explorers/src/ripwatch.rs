//! The RIPwatch Explorer Module.
//!
//! "The RIP module monitors RIP advertisements on shared subnets, building
//! a list of hosts, subnets, and networks as they are seen in the
//! advertisements. ... Like the ARPwatch module, the RIPwatch module uses
//! the Sun NIT with a packet filter to watch the RIP packets on the shared
//! subnets." It also "attempts to identify those RIP sources that appear
//! to be operating in this erroneous (promiscuous) manner".

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use fremont_journal::observation::{Fact, Observation, Source};
use fremont_net::rip::{classify_route, RipCommand, RipPacket, RouteKind};
use fremont_net::udp::RIP_PORT;
use fremont_net::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, Subnet, UdpDatagram};
use fremont_netsim::engine::ProcCtx;
use fremont_netsim::process::Process;
use fremont_netsim::time::SimDuration;

/// Configuration for [`RipWatch`].
#[derive(Debug, Clone)]
pub struct RipWatchConfig {
    /// How long to monitor before finishing (paper Table 4: 2 minutes —
    /// enough for every router's 30-second advertisement cycle).
    pub duration: SimDuration,
}

impl Default for RipWatchConfig {
    fn default() -> Self {
        RipWatchConfig {
            duration: SimDuration::from_mins(2),
        }
    }
}

/// What one RIP source advertised.
#[derive(Debug, Clone, Default)]
pub struct RipSourceInfo {
    /// MAC the advertisements came from.
    pub mac: Option<MacAddr>,
    /// Advertised destinations with the lowest metric heard for each.
    pub routes: HashMap<Ipv4Addr, u32>,
    /// `true` when the source advertised a route to the very subnet it is
    /// attached to — one promiscuous-rebroadcast signature.
    pub advertises_local_subnet: bool,
}

/// The passive RIP monitor.
pub struct RipWatch {
    cfg: RipWatchConfig,
    local_subnet: Option<Subnet>,
    sources: HashMap<Ipv4Addr, RipSourceInfo>,
    subnets: HashSet<Subnet>,
    networks: HashSet<Subnet>,
    hosts: HashSet<Ipv4Addr>,
    emitted_subnets: HashSet<Subnet>,
    finished: bool,
}

impl RipWatch {
    /// Creates the module.
    pub fn new(cfg: RipWatchConfig) -> Self {
        RipWatch {
            cfg,
            local_subnet: None,
            sources: HashMap::new(),
            subnets: HashSet::new(),
            networks: HashSet::new(),
            hosts: HashSet::new(),
            emitted_subnets: HashSet::new(),
            finished: false,
        }
    }

    /// Subnet routes heard (within the local classful network).
    pub fn subnets(&self) -> Vec<Subnet> {
        let mut v: Vec<_> = self.subnets.iter().copied().collect();
        v.sort();
        v
    }

    /// External network routes heard.
    pub fn networks(&self) -> Vec<Subnet> {
        let mut v: Vec<_> = self.networks.iter().copied().collect();
        v.sort();
        v
    }

    /// Host routes heard.
    pub fn hosts(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<_> = self.hosts.iter().copied().collect();
        v.sort_by_key(|ip| u32::from(*ip));
        v
    }

    /// Advertisement sources and what they said.
    pub fn sources(&self) -> &HashMap<Ipv4Addr, RipSourceInfo> {
        &self.sources
    }

    /// Sources flagged as promiscuous rebroadcasters.
    ///
    /// Two signatures, either suffices: (a) the source advertises the very
    /// subnet it broadcasts onto (a real router's split horizon suppresses
    /// that); (b) nearly everything it advertises duplicates another
    /// source on the segment at an equal-or-better metric — it is merely
    /// echoing "learned routing information without regard to the subnet
    /// from which that information was learned".
    pub fn promiscuous_sources(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self
            .sources
            .iter()
            .filter(|(ip, info)| info.advertises_local_subnet || self.is_echoer(**ip, info))
            .map(|(ip, _)| *ip)
            .collect();
        v.sort_by_key(|ip| u32::from(*ip));
        v
    }

    fn is_echoer(&self, ip: Ipv4Addr, info: &RipSourceInfo) -> bool {
        if info.routes.len() < 3 {
            return false;
        }
        let covered = info
            .routes
            .iter()
            .filter(|(dest, metric)| {
                self.sources.iter().any(|(other_ip, other)| {
                    *other_ip != ip && other.routes.get(dest).map(|m| m <= metric).unwrap_or(false)
                })
            })
            .count();
        covered * 10 >= info.routes.len() * 8
    }
}

impl Process for RipWatch {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        let iface = ctx.primary_iface();
        let local = iface.subnet();
        self.local_subnet = Some(local);
        ctx.enable_tap(true);
        ctx.set_timer(self.cfg.duration, 1);
        // The watcher knows its own attached subnet (from its interface
        // configuration) — that is how the paper's module reaches 111/111:
        // 110 advertised plus the one it sits on.
        self.subnets.insert(local);
        ctx.emit(Observation::subnet(Source::RipWatch, local, false));
        self.emitted_subnets.insert(local);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut ProcCtx<'_>) {
        // Final report: sources (with promiscuity judgment).
        let flagged = self.promiscuous_sources();
        let sources: Vec<(Ipv4Addr, RipSourceInfo)> = self
            .sources
            .iter()
            .map(|(ip, info)| (*ip, info.clone()))
            .collect();
        for (ip, info) in sources {
            ctx.emit(Observation::new(
                Source::RipWatch,
                Fact::RipSource {
                    ip,
                    mac: info.mac,
                    advertised_routes: info.routes.len() as u32,
                    promiscuous: flagged.contains(&ip),
                },
            ));
        }
        ctx.enable_tap(false);
        self.finished = true;
    }

    fn on_tap(&mut self, frame: &EthernetFrame, ctx: &mut ProcCtx<'_>) {
        if self.finished || frame.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(pkt) = Ipv4Packet::decode(&frame.payload) else {
            return;
        };
        if pkt.protocol != IpProtocol::Udp {
            return;
        }
        let Ok(dgram) = UdpDatagram::decode(&pkt.payload) else {
            return;
        };
        if dgram.dst_port != RIP_PORT {
            return;
        }
        let Ok(rip) = RipPacket::decode(&dgram.payload) else {
            return;
        };
        if rip.command != RipCommand::Response {
            return;
        }
        let Some(local) = self.local_subnet else {
            return; // No packet can precede on_start setting this.
        };

        let entry = self.sources.entry(pkt.src).or_default();
        entry.mac = Some(frame.src);
        for e in &rip.entries {
            entry
                .routes
                .entry(e.addr)
                .and_modify(|m| *m = (*m).min(e.metric))
                .or_insert(e.metric);
            if e.addr == local.network() {
                // Advertising the segment's own subnet onto that segment:
                // either a missing split horizon or a promiscuous host.
                entry.advertises_local_subnet = true;
            }
        }

        // Classify and emit the learned destinations.
        for e in &rip.entries {
            if e.metric >= fremont_net::rip::METRIC_INFINITY {
                continue;
            }
            match classify_route(e.addr, local) {
                RouteKind::SubnetRoute(s) => {
                    self.subnets.insert(s);
                    if self.emitted_subnets.insert(s) {
                        ctx.emit(Observation::subnet(Source::RipWatch, s, true));
                    }
                }
                RouteKind::Network(n) => {
                    self.networks.insert(n);
                    if self.emitted_subnets.insert(n) {
                        ctx.emit(Observation::subnet(Source::RipWatch, n, true));
                    }
                }
                RouteKind::Host(h) => {
                    if self.hosts.insert(h) {
                        ctx.emit(Observation::ip_alive(Source::RipWatch, h));
                    }
                }
                RouteKind::Default => {}
            }
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::line3;
    use fremont_netsim::node::RipConfig;

    #[test]
    fn hears_advertised_subnets() {
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        let h = sim.spawn(left, Box::new(RipWatch::new(Default::default())));
        sim.run_for(SimDuration::from_mins(3));
        let w = sim.process_mut::<RipWatch>(h).unwrap();
        assert!(w.done());
        let subnets = w.subnets();
        // r1 advertises 10.1.2/24 and 10.1.3/24 onto net-a (split horizon
        // hides 10.1.1/24); the watcher adds its own subnet.
        assert!(
            subnets.contains(&"10.1.1.0/24".parse().unwrap()),
            "{subnets:?}"
        );
        assert!(
            subnets.contains(&"10.1.2.0/24".parse().unwrap()),
            "{subnets:?}"
        );
        assert!(
            subnets.contains(&"10.1.3.0/24".parse().unwrap()),
            "{subnets:?}"
        );
        // The advertising source was recorded with its MAC.
        assert_eq!(w.sources().len(), 1);
        let info = w.sources().values().next().unwrap();
        assert!(info.mac.is_some());
        // A split-horizon router is not promiscuous.
        assert!(w.promiscuous_sources().is_empty());
    }

    #[test]
    fn flags_promiscuous_host() {
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        let right_ip: Ipv4Addr = "10.1.1.99".parse().unwrap();
        // Add a promiscuous host on net-a that learned routes from r1 and
        // rebroadcasts them — including net-a's own route.
        let b = fremont_netsim::builder::TopologyBuilder::new();
        let _ = b; // (constructed inline below instead)
        let seg = sim.nodes[left.0].ifaces[0].segment;
        let mut node = fremont_netsim::node::Node::new(
            "promisc",
            fremont_netsim::node::NodeKind::Host,
            vec![fremont_netsim::node::Iface {
                mac: MacAddr::new([0, 0, 0xc0, 9, 9, 9]),
                ip: right_ip,
                mask: fremont_net::SubnetMask::from_prefix_len(24).unwrap(),
                segment: seg,
            }],
        );
        node.behavior.rip = Some(RipConfig {
            promiscuous: true,
            split_horizon: false,
            ..Default::default()
        });
        // Pretend it already learned the local subnet route.
        node.rip_learned.push(("10.1.1.0".parse().unwrap(), 1));
        node.rip_learned.push(("10.1.3.0".parse().unwrap(), 2));
        node.rip_learned.push(("10.1.2.0".parse().unwrap(), 1));
        sim.add_node(node);

        let h = sim.spawn(left, Box::new(RipWatch::new(Default::default())));
        sim.run_for(SimDuration::from_mins(3));
        let w = sim.process_mut::<RipWatch>(h).unwrap();
        assert_eq!(w.promiscuous_sources(), vec![right_ip]);
        // The observation stream carries the flag.
        let obs = sim.drain_observations();
        let flagged = obs.iter().any(|(_, _, o)| {
            matches!(
                &o.fact,
                Fact::RipSource { ip, promiscuous: true, .. } if *ip == right_ip
            )
        });
        assert!(flagged, "promiscuous source observation emitted");
    }

    #[test]
    fn finishes_after_configured_duration() {
        let (mut sim, topo) = line3();
        let left = topo.nodes_by_name["left"];
        let h = sim.spawn(
            left,
            Box::new(RipWatch::new(RipWatchConfig {
                duration: SimDuration::from_secs(10),
            })),
        );
        sim.run_for(SimDuration::from_secs(5));
        assert!(!sim.process_done(h));
        sim.run_for(SimDuration::from_secs(10));
        assert!(sim.process_done(h));
    }
}
