//! # fremont-obs
//!
//! Observability tooling over the telemetry crate's trace stream:
//!
//! * [`stitch`] — merges per-process JSONL traces (driver + Journal
//!   Server) into one causal tree, resolving the `trace_id` /
//!   `remote_parent` links that rode inside request frames;
//! * folded-stack profiles — re-exported from
//!   [`fremont_telemetry::profile`];
//! * structural validation — re-exported from
//!   [`fremont_telemetry::trace::validate`].
//!
//! ## The stitching contract
//!
//! Each process writes its own trace (its span ids are only unique
//! locally). A file *owns* a distributed trace `T` when it contains a
//! `span_start` with `trace_id == T` and `remote_parent == 0` — that
//! is the client-side RPC span whose id travelled in the frame. A span
//! with `remote_parent == S` attaches under span `S` of the owning
//! file. The stitched output is a canonical depth-first rendering
//! under one synthetic root: span ids are renumbered sequentially (so
//! [`validate`] accepts the result), siblings are ordered by
//! `(start timestamp, file index, original position)`, and the
//! `trace_id`/`remote_parent` fields are cleared — the causality they
//! encoded is now structural. Because every input is deterministic for
//! a fixed seed, the stitched bytes are too.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;

pub use fremont_telemetry::profile::fold_events;
pub use fremont_telemetry::trace::{parse_jsonl, validate, TraceSummary};
pub use fremont_telemetry::TraceEvent;

/// Where a span's parent lives before links are resolved.
enum ParentRef {
    /// Top-level in its own file: a child of the synthetic root.
    Root,
    /// A span earlier in the same file.
    Local(usize),
    /// A span in the file owning `trace_id`, by original span id.
    Remote { trace_id: u64, remote_parent: u64 },
}

/// One span reassembled from a `span_start`/`span_end` pair.
struct Node {
    start: TraceEvent,
    end: Option<TraceEvent>,
    file: usize,
    pos: usize,
    /// `work`/`event` records attached to the span, original order.
    items: Vec<TraceEvent>,
    children: Vec<usize>,
}

/// Merges per-process traces into one causal tree (see the module
/// docs for the contract). `files` is ordered — by convention the
/// trace-owning process (the driver) first — and the order only
/// breaks timestamp ties. Returns the stitched event stream, which
/// always passes [`validate`].
pub fn stitch(files: &[Vec<TraceEvent>]) -> Result<Vec<TraceEvent>, String> {
    // Pass 1: which file owns each distributed trace id.
    let mut owners: HashMap<u64, usize> = HashMap::new();
    for (fi, events) in files.iter().enumerate() {
        for ev in events {
            if ev.kind == "span_start" && ev.trace_id != 0 && ev.remote_parent == 0 {
                match owners.insert(ev.trace_id, fi) {
                    Some(prev) if prev != fi => {
                        return Err(format!(
                            "trace {} owned by both file {prev} and file {fi}",
                            ev.trace_id
                        ));
                    }
                    _ => {}
                }
            }
        }
    }

    // Pass 2: rebuild each file's spans and attachment requests.
    let mut nodes: Vec<Node> = Vec::new();
    let mut by_file_id: Vec<HashMap<u64, usize>> = vec![HashMap::new(); files.len()];
    let mut parents: Vec<ParentRef> = Vec::new();
    // Top-level `work`/`event` records (no open span), with sort keys.
    let mut loose: Vec<(u64, usize, usize, TraceEvent)> = Vec::new();
    for (fi, events) in files.iter().enumerate() {
        for (pos, ev) in events.iter().enumerate() {
            match ev.kind.as_str() {
                "span_start" => {
                    let parent = if ev.remote_parent != 0 {
                        ParentRef::Remote {
                            trace_id: ev.trace_id,
                            remote_parent: ev.remote_parent,
                        }
                    } else if ev.parent != 0 {
                        let idx = *by_file_id[fi].get(&ev.parent).ok_or_else(|| {
                            format!(
                                "file {fi} record {pos}: span {} starts under unknown parent {}",
                                ev.id, ev.parent
                            )
                        })?;
                        ParentRef::Local(idx)
                    } else {
                        ParentRef::Root
                    };
                    let idx = nodes.len();
                    nodes.push(Node {
                        start: ev.clone(),
                        end: None,
                        file: fi,
                        pos,
                        items: Vec::new(),
                        children: Vec::new(),
                    });
                    parents.push(parent);
                    by_file_id[fi].insert(ev.id, idx);
                }
                "span_end" => {
                    let idx = *by_file_id[fi].get(&ev.id).ok_or_else(|| {
                        format!(
                            "file {fi} record {pos}: span_end for unknown span {}",
                            ev.id
                        )
                    })?;
                    if nodes[idx].end.is_some() {
                        return Err(format!(
                            "file {fi} record {pos}: span {} ended twice",
                            ev.id
                        ));
                    }
                    nodes[idx].end = Some(ev.clone());
                }
                "work" => match by_file_id[fi].get(&ev.id) {
                    Some(&idx) if ev.id != 0 => nodes[idx].items.push(ev.clone()),
                    _ if ev.id == 0 => loose.push((ev.at, fi, pos, ev.clone())),
                    _ => {
                        return Err(format!(
                            "file {fi} record {pos}: work {:?} references unknown span {}",
                            ev.name, ev.id
                        ));
                    }
                },
                "event" => match by_file_id[fi].get(&ev.parent) {
                    Some(&idx) if ev.parent != 0 => nodes[idx].items.push(ev.clone()),
                    _ if ev.parent == 0 => loose.push((ev.at, fi, pos, ev.clone())),
                    _ => {
                        return Err(format!(
                            "file {fi} record {pos}: event {:?} references unknown span {}",
                            ev.name, ev.parent
                        ));
                    }
                },
                other => {
                    return Err(format!("file {fi} record {pos}: unknown kind {other:?}"));
                }
            }
        }
    }

    // Pass 3: resolve links into child lists; collect roots.
    let mut roots: Vec<usize> = Vec::new();
    for idx in 0..nodes.len() {
        match parents[idx] {
            ParentRef::Root => roots.push(idx),
            ParentRef::Local(p) => nodes[p].children.push(idx),
            ParentRef::Remote {
                trace_id,
                remote_parent,
            } => {
                let owner = *owners.get(&trace_id).ok_or_else(|| {
                    format!(
                        "span {:?} references unowned trace {trace_id}",
                        nodes[idx].start.name
                    )
                })?;
                let p = *by_file_id[owner].get(&remote_parent).ok_or_else(|| {
                    format!(
                        "span {:?} references span {remote_parent} missing from \
                         trace {trace_id}'s owning file {owner}",
                        nodes[idx].start.name
                    )
                })?;
                nodes[p].children.push(idx);
            }
        }
    }
    for (idx, node) in nodes.iter().enumerate() {
        if node.end.is_none() {
            return Err(format!(
                "file {} span {} ({:?}) never ends",
                node.file, node.start.id, node.start.name
            ));
        }
        let _ = idx;
    }

    // Canonical sibling order, then a deterministic DFS renumbering.
    let key = |nodes: &[Node], i: usize| (nodes[i].start.at, nodes[i].file, nodes[i].pos);
    for i in 0..nodes.len() {
        let mut kids = std::mem::take(&mut nodes[i].children);
        kids.sort_by_key(|&k| key(&nodes, k));
        nodes[i].children = kids;
    }
    roots.sort_by_key(|&k| key(&nodes, k));
    loose.sort_by_key(|a| (a.0, a.1, a.2));

    let lo = files
        .iter()
        .flatten()
        .map(|e| e.at)
        .min()
        .unwrap_or_default();
    let hi = files
        .iter()
        .flatten()
        .map(|e| e.at)
        .max()
        .unwrap_or_default();
    let mut out = Vec::new();
    let root_id = 1u64;
    out.push(TraceEvent {
        at: lo,
        kind: "span_start".into(),
        id: root_id,
        parent: 0,
        name: "stitch".into(),
        detail: format!("files={}", files.len()),
        trace_id: 0,
        remote_parent: 0,
    });
    for (_, _, _, ev) in &loose {
        let mut ev = ev.clone();
        if ev.kind == "event" {
            ev.parent = root_id;
        }
        out.push(ev);
    }
    let mut next_id = root_id + 1;
    for &r in &roots {
        emit(&nodes, r, root_id, &mut next_id, &mut out);
    }
    out.push(TraceEvent {
        at: hi,
        kind: "span_end".into(),
        id: root_id,
        parent: 0,
        name: "stitch".into(),
        detail: format!("spans={}", next_id - 2),
        trace_id: 0,
        remote_parent: 0,
    });
    Ok(out)
}

/// Depth-first canonical emission with fresh sequential span ids.
fn emit(nodes: &[Node], idx: usize, parent_id: u64, next_id: &mut u64, out: &mut Vec<TraceEvent>) {
    let node = &nodes[idx];
    let id = *next_id;
    *next_id += 1;
    out.push(TraceEvent {
        at: node.start.at,
        kind: "span_start".into(),
        id,
        parent: parent_id,
        name: node.start.name.clone(),
        detail: node.start.detail.clone(),
        trace_id: 0,
        remote_parent: 0,
    });
    for item in &node.items {
        let mut item = item.clone();
        if item.kind == "work" {
            item.id = id;
        } else {
            item.parent = id;
        }
        item.trace_id = 0;
        item.remote_parent = 0;
        out.push(item);
    }
    for &child in &node.children {
        emit(nodes, child, id, next_id, out);
    }
    let end = node.end.as_ref().map(|e| (e.at, e.detail.clone()));
    let (at, detail) = end.unwrap_or((node.start.at, String::new()));
    out.push(TraceEvent {
        at,
        kind: "span_end".into(),
        id,
        parent: parent_id,
        name: node.start.name.clone(),
        detail,
        trace_id: 0,
        remote_parent: 0,
    });
}

/// Renders events as JSON Lines, one per line, matching
/// [`fremont_telemetry::TraceBuffer::to_jsonl`]'s byte format.
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        if let Ok(line) = serde_json::to_string(ev) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parses, stitches, and re-renders: the `fremont-obs stitch` core.
pub fn stitch_jsonl(texts: &[String]) -> Result<String, String> {
    let mut files = Vec::with_capacity(texts.len());
    for (i, text) in texts.iter().enumerate() {
        files.push(parse_jsonl(text).map_err(|e| format!("input {}: {e}", i + 1))?);
    }
    let events = stitch(&files)?;
    validate(&events).map_err(|e| format!("stitched trace invalid: {e}"))?;
    Ok(render_jsonl(&events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        kind: &str,
        id: u64,
        parent: u64,
        name: &str,
        tid: u64,
        rp: u64,
        at: u64,
    ) -> TraceEvent {
        TraceEvent {
            at,
            kind: kind.into(),
            id,
            parent,
            name: name.into(),
            detail: String::new(),
            trace_id: tid,
            remote_parent: rp,
        }
    }

    fn work(id: u64, unit: &str, amount: u64) -> TraceEvent {
        TraceEvent {
            at: 1,
            kind: "work".into(),
            id,
            parent: 0,
            name: unit.into(),
            detail: amount.to_string(),
            trace_id: 0,
            remote_parent: 0,
        }
    }

    /// driver: pump > store_batch (owns trace 7); server: rpc > apply,
    /// rpc hangs off the client span via remote_parent.
    fn two_files() -> Vec<Vec<TraceEvent>> {
        let driver = vec![
            span("span_start", 1, 0, "driver.pump", 0, 0, 10),
            span("span_start", 2, 1, "client.store_batch", 7, 0, 10),
            work(2, "observations", 3),
            span("span_end", 2, 1, "client.store_batch", 0, 0, 10),
            span("span_end", 1, 0, "driver.pump", 0, 0, 10),
        ];
        let server = vec![
            span("span_start", 1, 0, "server.rpc", 7, 2, 10),
            span("span_start", 2, 1, "server.apply", 0, 0, 10),
            span("span_end", 2, 1, "server.apply", 0, 0, 10),
            span("span_end", 1, 0, "server.rpc", 0, 0, 10),
        ];
        vec![driver, server]
    }

    #[test]
    fn stitches_server_rpc_under_client_span() {
        let stitched = stitch(&two_files()).unwrap();
        validate(&stitched).unwrap();
        let names: Vec<(&str, &str)> = stitched
            .iter()
            .map(|e| (e.kind.as_str(), e.name.as_str()))
            .collect();
        assert_eq!(
            names,
            [
                ("span_start", "stitch"),
                ("span_start", "driver.pump"),
                ("span_start", "client.store_batch"),
                ("work", "observations"),
                ("span_start", "server.rpc"),
                ("span_start", "server.apply"),
                ("span_end", "server.apply"),
                ("span_end", "server.rpc"),
                ("span_end", "client.store_batch"),
                ("span_end", "driver.pump"),
                ("span_end", "stitch"),
            ]
        );
        // The server.rpc span's parent is the renumbered client span.
        let client = stitched
            .iter()
            .find(|e| e.kind == "span_start" && e.name == "client.store_batch")
            .unwrap();
        let rpc = stitched
            .iter()
            .find(|e| e.kind == "span_start" && e.name == "server.rpc")
            .unwrap();
        assert_eq!(rpc.parent, client.id);
        assert!(stitched
            .iter()
            .all(|e| e.trace_id == 0 && e.remote_parent == 0));
    }

    #[test]
    fn stitch_is_deterministic() {
        let a = render_jsonl(&stitch(&two_files()).unwrap());
        let b = render_jsonl(&stitch(&two_files()).unwrap());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn unowned_trace_is_an_error() {
        let server = vec![
            span("span_start", 1, 0, "server.rpc", 9, 4, 10),
            span("span_end", 1, 0, "server.rpc", 0, 0, 10),
        ];
        let err = stitch(&[server]).unwrap_err();
        assert!(err.contains("unowned trace 9"), "{err}");
    }

    #[test]
    fn unfinished_span_is_an_error() {
        let f = vec![span("span_start", 1, 0, "x", 0, 0, 1)];
        let err = stitch(&[f]).unwrap_err();
        assert!(err.contains("never ends"), "{err}");
    }

    #[test]
    fn stitched_trace_folds() {
        let stitched = stitch(&two_files()).unwrap();
        let folded = fold_events(&stitched);
        assert_eq!(
            folded,
            "observations;stitch;driver.pump;client.store_batch 3\n"
        );
    }
}
