//! `fremont-obs`: trace stitching, folding, and validation from the
//! command line.
//!
//! ```text
//! fremont-obs stitch driver.jsonl server.jsonl [--out stitched.jsonl]
//! fremont-obs fold trace.jsonl [--out profile.folded]
//! fremont-obs validate trace.jsonl [more.jsonl ...]
//! ```
//!
//! `stitch` merges per-process JSONL traces into one causal tree
//! (driver file first — input order breaks timestamp ties). `fold`
//! renders a trace as flamegraph-compatible folded stacks keyed by
//! logical work units. `validate` checks structural invariants and
//! prints a one-line summary per file. Output goes to stdout unless
//! `--out` is given; errors exit nonzero.

use std::process::ExitCode;

use fremont_obs::{fold_events, parse_jsonl, stitch_jsonl, validate};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fremont-obs: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: fremont-obs <stitch|fold|validate> <trace.jsonl>... [--out PATH]";

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(USAGE.into());
    };
    let (files, out) = split_out(rest)?;
    if files.is_empty() {
        return Err(USAGE.into());
    }
    match cmd.as_str() {
        "stitch" => {
            let texts: Vec<String> = files
                .iter()
                .map(|p| read(p))
                .collect::<Result<_, String>>()?;
            write_out(out, &stitch_jsonl(&texts)?)
        }
        "fold" => {
            if files.len() != 1 {
                return Err("fold takes exactly one trace file".into());
            }
            let events = parse_jsonl(&read(&files[0])?).map_err(|e| fmt_err(&files[0], &e))?;
            write_out(out, &fold_events(&events))
        }
        "validate" => {
            if out.is_some() {
                return Err("validate does not take --out".into());
            }
            for path in &files {
                let events = parse_jsonl(&read(path)?).map_err(|e| fmt_err(path, &e))?;
                let s = validate(&events).map_err(|e| fmt_err(path, &e))?;
                println!(
                    "{path}: ok events={} spans={} max_depth={}",
                    s.events, s.spans, s.max_depth
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Splits `--out PATH` (anywhere in the tail) from the file list.
fn split_out(rest: &[String]) -> Result<(Vec<String>, Option<String>), String> {
    let mut files = Vec::new();
    let mut out = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            let path = it.next().ok_or("--out needs a path")?;
            if out.replace(path.clone()).is_some() {
                return Err("--out given twice".into());
            }
        } else if let Some(stripped) = arg.strip_prefix("--") {
            return Err(format!("unknown flag --{stripped}\n{USAGE}"));
        } else {
            files.push(arg.clone());
        }
    }
    Ok((files, out))
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn write_out(out: Option<String>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(&path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn fmt_err(path: &str, e: &str) -> String {
    format!("{path}: {e}")
}
