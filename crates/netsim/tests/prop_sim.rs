//! Property tests over the simulator: determinism, routing completeness,
//! and conservation-style invariants.

use proptest::prelude::*;

use fremont_netsim::builder::TopologyBuilder;
use fremont_netsim::campus::{generate, CampusConfig};
use fremont_netsim::time::SimDuration;
use fremont_netsim::traffic::{Flow, TrafficModel};

/// A random small topology: `n_subnets` in a star around a backbone, with
/// a couple of hosts each.
fn star(
    n_subnets: usize,
    hosts_per: usize,
    seed: u64,
) -> (
    fremont_netsim::engine::Sim,
    fremont_netsim::builder::Topology,
) {
    let mut b = TopologyBuilder::new();
    let bb = b.segment("bb", "10.9.0.0/24");
    let mut segs = Vec::new();
    for i in 0..n_subnets {
        segs.push(b.segment(&format!("n{i}"), &format!("10.9.{}.0/24", i + 1)));
    }
    for (i, seg) in segs.iter().enumerate() {
        b.router(&format!("r{i}"), &[(bb, 2 + i as u32), (*seg, 1)]);
        for h in 0..hosts_per {
            b.host(&format!("h{i}x{h}"), *seg, 10 + h as u32);
        }
    }
    b.build(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical seeds produce byte-identical event streams.
    #[test]
    fn same_seed_same_world(n in 1usize..5, hosts in 1usize..4, seed in any::<u64>()) {
        let run = || {
            let (mut sim, topo) = star(n, hosts, seed);
            // Drive some traffic between the first and last hosts.
            if topo.hosts.len() >= 2 {
                let dst = sim.nodes[topo.hosts[topo.hosts.len() - 1].0].ifaces[0].ip;
                sim.set_traffic(TrafficModel::new(
                    vec![Flow { src: topo.hosts[0], dst, weight: 1.0 }],
                    SimDuration::from_secs(5),
                    1,
                ));
            }
            sim.run_for(SimDuration::from_mins(10));
            (
                sim.stats.events_processed,
                sim.stats.packets_originated,
                sim.stats.packets_forwarded,
                sim.stats.arp_requests,
                sim.now(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Every router in a random star can route to every subnet.
    #[test]
    fn routing_is_complete(n in 1usize..6, hosts in 1usize..3, seed in any::<u64>()) {
        let (sim, topo) = star(n, hosts, seed);
        for r in &topo.routers {
            for (_, subnet, _) in &topo.segments {
                let probe = subnet.nth(77).expect("fits /24");
                prop_assert!(
                    sim.nodes[r.0].routes.lookup(probe).is_some(),
                    "router {} has no route to {}",
                    sim.nodes[r.0].name,
                    subnet
                );
            }
        }
    }

    /// Hosts' default routes point at a router attached to their segment.
    #[test]
    fn host_default_routes_are_local(n in 1usize..5, seed in any::<u64>()) {
        let (sim, topo) = star(n, 2, seed);
        for h in &topo.hosts {
            let host = &sim.nodes[h.0];
            let via = host
                .routes
                .lookup("192.0.2.1".parse().expect("ip"))
                .and_then(|r| r.gateway);
            if let Some(gw) = via {
                let my_subnet = host.ifaces[0].subnet();
                prop_assert!(my_subnet.contains(gw), "gateway {gw} not on {my_subnet}");
            }
        }
    }

    /// The campus generator always produces the configured shape, for any
    /// seed.
    #[test]
    fn campus_shape_for_any_seed(seed in any::<u64>()) {
        let cfg = CampusConfig {
            seed,
            subnets_assigned: 20,
            subnets_connected: 17,
            cs_hosts: 10,
            cs_traffic: false,
            ..Default::default()
        };
        let (sim, truth) = generate(&cfg);
        prop_assert_eq!(truth.assigned_subnets.len(), 20);
        prop_assert_eq!(truth.connected_subnets.len(), 17);
        prop_assert!(truth.topology.routers.len() >= 5);
        // The name server exists and serves zones.
        let ns = sim.node_by_name("ns").expect("ns exists");
        prop_assert!(sim.nodes[ns.0].dns.as_ref().expect("dns").zone_count() > 0);
        // No two interfaces share a MAC.
        let mut macs: Vec<_> = sim
            .nodes
            .iter()
            .flat_map(|n| n.ifaces.iter().map(|i| i.mac))
            .collect();
        let total = macs.len();
        macs.sort();
        macs.dedup();
        prop_assert_eq!(macs.len(), total);
    }

    /// Time never runs backwards, whatever happens.
    #[test]
    fn time_is_monotone(seed in any::<u64>(), minutes in 1u64..30) {
        let (mut sim, _) = star(2, 2, seed);
        let mut last = sim.now();
        for _ in 0..minutes {
            sim.run_for(SimDuration::from_mins(1));
            prop_assert!(sim.now() >= last);
            last = sim.now();
        }
    }
}
