//! Property tests over the fault-injection layer: an empty plan must be
//! a strict no-op, and any plan must survive a JSON round trip so that
//! committed scenario fixtures stay faithful.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use fremont_netsim::builder::TopologyBuilder;
use fremont_netsim::time::SimDuration;
use fremont_netsim::traffic::{Flow, TrafficModel};
use fremont_netsim::{FaultEvent, FaultKind, FaultPlan};

/// A small routed world with background traffic, the same shape the
/// engine's own determinism tests use.
fn world(seed: u64, with_empty_plan: bool) -> (u64, u64, u64, u64, String, u64) {
    let mut b = TopologyBuilder::new();
    let bb = b.segment("bb", "10.9.0.0/24");
    let lan = b.segment("lan", "10.9.1.0/24");
    b.router("gw", &[(bb, 2), (lan, 1)]);
    b.host("alpha", lan, 10);
    b.host("beta", lan, 11);
    if with_empty_plan {
        b.faults(FaultPlan::default());
    }
    let (mut sim, topo) = b.build(seed);
    let dst = sim.nodes[topo.hosts[1].0].ifaces[0].ip;
    sim.set_traffic(TrafficModel::new(
        vec![Flow {
            src: topo.hosts[0],
            dst,
            weight: 1.0,
        }],
        SimDuration::from_secs(3),
        1,
    ));
    sim.run_for(SimDuration::from_mins(10));
    let drained = format!("{:?}", sim.drain_observations());
    (
        sim.stats.events_processed,
        sim.stats.packets_originated,
        sim.stats.arp_requests,
        sim.fault_stats.total() + sim.fault_stats.unresolved + sim.fault_stats.frames_dropped,
        drained,
        // RNG stream position: equal probes mean the two runs consumed
        // exactly the same number of draws — an empty plan (and the
        // scheduler's idle skip-ahead) must not burn a single value.
        sim.rng_position_probe(),
    )
}

/// Target names: a mix of real-looking and unknown names (the vendored
/// proptest has no regex string strategy, so pick from a fixed pool).
fn arb_name() -> impl Strategy<Value = String> {
    (0usize..6).prop_map(|i| ["alpha", "beta", "gw", "lan", "bb", "ghost"][i].to_string())
}

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    let name = arb_name;
    prop_oneof![
        name().prop_map(|node| FaultKind::NodeCrash { node }),
        name().prop_map(|node| FaultKind::NodeReboot { node }),
        name().prop_map(|gateway| FaultKind::GatewayDeath { gateway }),
        name().prop_map(|segment| FaultKind::Partition { segment }),
        name().prop_map(|segment| FaultKind::Heal { segment }),
        (name(), any::<u32>(), any::<u64>()).prop_map(|(segment, loss, extra_latency_micros)| {
            FaultKind::Degrade {
                segment,
                // A finite loss fraction in [0, 1] — the vendored
                // proptest has no f64 range strategy.
                extra_loss: f64::from(loss) / f64::from(u32::MAX),
                extra_latency_micros,
            }
        }),
        name().prop_map(|segment| FaultKind::ClearDegrade { segment }),
        (name(), any::<u32>()).prop_map(|(node, ip)| FaultKind::DuplicateIp {
            node,
            ip: Ipv4Addr::from(ip),
        }),
        (name(), 0u8..33).prop_map(|(node, prefix_len)| FaultKind::WrongMask { node, prefix_len }),
        (name(), any::<i64>())
            .prop_map(|(node, skew_micros)| FaultKind::ClockSkew { node, skew_micros }),
    ]
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec((any::<u64>(), arb_kind()), 0..12).prop_map(|events| FaultPlan {
        events: events
            .into_iter()
            .map(|(at_micros, kind)| FaultEvent { at_micros, kind })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Installing an empty `FaultPlan` changes nothing: same seed, same
    /// event counts, same drained observation stream, zero fault stats,
    /// and — via the RNG position probe in `world` — zero extra RNG
    /// draws anywhere in the run.
    #[test]
    fn empty_plan_is_a_strict_noop(seed in any::<u64>()) {
        let plain = world(seed, false);
        let with_plan = world(seed, true);
        prop_assert_eq!(with_plan.3, 0, "empty plan recorded fault activity");
        prop_assert_eq!(plain, with_plan);
    }

    /// Any plan survives `to_json` → `from_json` unchanged, so committed
    /// scenario fixtures reproduce the exact in-memory plan.
    #[test]
    fn plan_round_trips_through_json(plan in arb_plan()) {
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).map_err(|e| {
            TestCaseError::fail(format!("fixture failed to parse: {e}"))
        })?;
        prop_assert_eq!(back, plan);
    }
}
