//! The discrete-event simulation engine.
//!
//! Deterministic (seeded RNG, total event order), packet-level, and
//! protocol-faithful: every ARP exchange, TTL decrement, ICMP error, RIP
//! broadcast, and DNS reply travels as encoded bytes inside Ethernet
//! frames on shared segments, so the Explorer Modules exercise exactly the
//! code paths the paper's modules did on the Colorado campus.

use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fremont_journal::observation::Observation;
use fremont_net::icmp::{time_exceeded_for, unreachable_for};
use fremont_net::rip::{RipEntry, RipPacket};
use fremont_net::udp::{DNS_PORT, ECHO_PORT, RIP_PORT};
use fremont_net::{
    ArpOp, ArpPacket, DnsMessage, EtherType, EthernetFrame, IcmpMessage, IpProtocol, Ipv4Packet,
    MacAddr, UdpDatagram, UnreachableCode,
};

use fremont_telemetry::{SpanId, TelTime, Telemetry};

use crate::faults::{FaultKind, FaultPlan, FaultStats};
use crate::node::{Node, NodeKind, TracerouteBug};
use crate::process::{IfaceInfo, ProcHandle, Process};
use crate::segment::{NodeId, Segment, SegmentCfg, SegmentId};
use crate::stats::{ProcStats, SimStats};
use crate::time::{SimDuration, SimTime};

/// How long a packet waits in the ARP pending queue before being dropped.
const ARP_PENDING_TIMEOUT: SimDuration = SimDuration(3_000_000);

/// An error sending a packet from a process or the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// No route to the destination.
    NoRoute(Ipv4Addr),
    /// Payload exceeds the segment MTU.
    TooBig {
        /// Bytes attempted.
        len: usize,
        /// The MTU that was exceeded.
        mtu: usize,
    },
    /// The node is down.
    NodeDown,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::NoRoute(d) => write!(f, "no route to {d}"),
            SendError::TooBig { len, mtu } => write!(f, "packet of {len} bytes exceeds MTU {mtu}"),
            SendError::NodeDown => write!(f, "node is down"),
        }
    }
}

impl std::error::Error for SendError {}

/// One frame in flight on a segment, shared (`Rc`) by every receiver's
/// delivery event instead of cloned per receiver. The decode cells are
/// filled lazily, at most once per frame — a broadcast RIP advertisement
/// heard by six interfaces is parsed once, not six times. Single
/// ownership of the simulation makes the single-threaded `Rc`/`OnceCell`
/// pair safe here.
struct FrameRecord {
    frame: EthernetFrame,
    arp: OnceCell<Option<ArpPacket>>,
    ipv4: OnceCell<Option<Ipv4Packet>>,
    udp: OnceCell<Option<UdpDatagram>>,
    rip: OnceCell<Option<Rc<RipPacket>>>,
    /// Interned identity of a cached RIP advertisement payload (see
    /// `Sim::send_rip_advertisements`); `None` for all other frames and
    /// for promiscuous adverts whose content varies per tick.
    absorb_key: Option<u32>,
}

impl FrameRecord {
    fn new(frame: EthernetFrame) -> Self {
        FrameRecord {
            frame,
            arp: OnceCell::new(),
            ipv4: OnceCell::new(),
            udp: OnceCell::new(),
            rip: OnceCell::new(),
            absorb_key: None,
        }
    }
}

enum Event {
    FrameRx {
        node: NodeId,
        iface: usize,
        frame: Rc<FrameRecord>,
    },
    Tap {
        handle: ProcHandle,
        frame: Rc<FrameRecord>,
    },
    Start {
        handle: ProcHandle,
    },
    Timer {
        handle: ProcHandle,
        token: u64,
    },
    SetNodeUp {
        node: NodeId,
        up: bool,
    },
    RipTick {
        node: NodeId,
    },
    ArpGc {
        node: NodeId,
    },
    DelayedSend {
        node: NodeId,
        pkt: Ipv4Packet,
    },
    TrafficTick,
    Fault {
        kind: FaultKind,
    },
}

/// The simulator.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: crate::sched::TimerWheel<Event>,
    /// All nodes; index = `NodeId`.
    pub nodes: Vec<Node>,
    /// All segments; index = `SegmentId`.
    pub segments: Vec<Segment>,
    taps: Vec<(SegmentId, ProcHandle)>,
    rng: StdRng,
    /// Engine-wide counters.
    pub stats: SimStats,
    outbox: Vec<(ProcHandle, SimTime, Observation)>,
    ip_id: u16,
    traffic: Option<crate::traffic::TrafficModel>,
    uptime: Vec<Option<crate::uptime::UptimeModel>>,
    telemetry: Telemetry,
    /// Per-process packet counters, keyed by `(node, slot)`.
    proc_stats: BTreeMap<(usize, usize), ProcStats>,
    /// Counters of applied fault events and partition frame drops.
    pub fault_stats: FaultStats,
    /// True once a non-empty [`FaultPlan`] was installed; gates the
    /// `fremont_sim_fault_*` metric family so fault-free expositions
    /// stay byte-identical.
    faults_installed: bool,
    /// Opt-in gate for the `fremont_sim_idle_skipped_micros_total` /
    /// `fremont_sim_wheel_cascades_total` counters, so pre-existing
    /// expositions stay byte-identical unless a caller asks for the
    /// scheduler's introspection (same precedent as `faults_installed`).
    scheduler_metrics: bool,
    /// Cached per-`(node, iface)` RIP advertisement templates, keyed on
    /// the node's routing-table version — rebuilt only when the table
    /// changes, which on the static campus is never after build.
    rip_advert_cache: BTreeMap<(usize, usize), RipAdvertTemplate>,
    /// Next absorb key to intern (see [`FrameRecord::absorb_key`]).
    next_absorb_key: u32,
    /// The background-traffic datagram is the same 32-zero-byte NFS-ish
    /// burst every time; encode it once instead of per packet.
    traffic_payload: Bytes,
}

/// Cached encoding of one interface's periodic RIP advertisement.
struct RipAdvertTemplate {
    /// Routing-table version the template was built from.
    version: u64,
    /// One entry per RIP packet the table splits into.
    packets: Vec<RipAdvertPacket>,
}

struct RipAdvertPacket {
    rip: Rc<RipPacket>,
    /// The encoded UDP datagram (the IPv4 payload), shared across ticks.
    udp_bytes: Bytes,
    absorb_key: u32,
}

impl Sim {
    /// Creates an empty simulation with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: crate::sched::TimerWheel::new(),
            nodes: Vec::new(),
            segments: Vec::new(),
            taps: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: SimStats::default(),
            outbox: Vec::new(),
            ip_id: 1,
            traffic: None,
            uptime: Vec::new(),
            telemetry: Telemetry::noop(),
            proc_stats: BTreeMap::new(),
            fault_stats: FaultStats::default(),
            faults_installed: false,
            scheduler_metrics: false,
            rip_advert_cache: BTreeMap::new(),
            next_absorb_key: 0,
            traffic_payload: Bytes::from(
                UdpDatagram::new(2049, 2049, Bytes::from_static(&[0u8; 32])).encode(),
            ),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Attaches a telemetry handle; node up/down transitions become
    /// trace events and [`Sim::publish_metrics`] exports counters.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (no-op by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Opts in to the scheduler's introspection counters
    /// (`fremont_sim_idle_skipped_micros_total`,
    /// `fremont_sim_wheel_cascades_total`). Off by default so existing
    /// metric expositions stay byte-identical.
    pub fn enable_scheduler_metrics(&mut self) {
        self.scheduler_metrics = true;
    }

    /// Total re-files of timer-wheel records from a higher level to a
    /// lower one (see `sched` module docs; exported as
    /// `fremont_sim_wheel_cascades_total` when scheduler metrics are
    /// enabled).
    pub fn wheel_cascades(&self) -> u64 {
        self.queue.cascades()
    }

    /// Packet counters for one process (zeroes if it never sent).
    pub fn proc_stats(&self, h: ProcHandle) -> ProcStats {
        self.proc_stats
            .get(&(h.node.0, h.idx))
            .copied()
            .unwrap_or_default()
    }

    /// Publishes engine-wide counters into the telemetry sink. Called
    /// at sync points (driver pump, end of run) rather than per event
    /// so the hot loop stays allocation-free.
    pub fn publish_metrics(&self) {
        let t = &self.telemetry;
        if !t.enabled() {
            return;
        }
        t.counter_set(
            "fremont_sim_events_processed_total",
            "",
            self.stats.events_processed,
        );
        t.counter_set(
            "fremont_sim_packets_originated_total",
            "",
            self.stats.packets_originated,
        );
        t.counter_set(
            "fremont_sim_packets_forwarded_total",
            "",
            self.stats.packets_forwarded,
        );
        t.counter_set("fremont_sim_icmp_errors_total", "", self.stats.icmp_errors);
        t.counter_set(
            "fremont_sim_arp_requests_total",
            "",
            self.stats.arp_requests,
        );
        t.gauge_max(
            "fremont_sim_queue_depth_hwm",
            "",
            self.stats.queue_depth_hwm,
        );
        // Scheduler introspection is opt-in (`enable_scheduler_metrics`)
        // so default expositions stay byte-identical.
        if self.scheduler_metrics {
            t.counter_set(
                "fremont_sim_idle_skipped_micros_total",
                "",
                self.stats.idle_skipped_micros,
            );
            t.counter_set(
                "fremont_sim_wheel_cascades_total",
                "",
                self.queue.cascades(),
            );
        }
        let (mut frames, mut bytes, mut lost, mut bcast, mut arp) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for seg in &self.segments {
            frames += seg.stats.frames_sent;
            bytes += seg.stats.bytes_sent;
            lost += seg.stats.frames_lost;
            bcast += seg.stats.broadcasts;
            arp += seg.stats.arp_frames;
        }
        t.counter_set("fremont_sim_frames_sent_total", "", frames);
        t.counter_set("fremont_sim_frame_bytes_total", "", bytes);
        t.counter_set("fremont_sim_frames_lost_total", "", lost);
        t.counter_set("fremont_sim_broadcast_frames_total", "", bcast);
        t.counter_set("fremont_sim_arp_frames_total", "", arp);
        // The fault family appears only once a non-empty plan is
        // installed: a fault-free exposition must stay byte-identical.
        if self.faults_installed {
            let f = &self.fault_stats;
            t.counter_set("fremont_sim_fault_events_total", "", f.total());
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"node_crash\"",
                f.node_crashes,
            );
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"node_reboot\"",
                f.node_reboots,
            );
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"gateway_death\"",
                f.gateway_deaths,
            );
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"partition\"",
                f.partitions,
            );
            t.counter_set("fremont_sim_fault_events_total", "kind=\"heal\"", f.heals);
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"degrade\"",
                f.degrades,
            );
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"clear_degrade\"",
                f.degrade_clears,
            );
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"duplicate_ip\"",
                f.duplicate_ips,
            );
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"wrong_mask\"",
                f.wrong_masks,
            );
            t.counter_set(
                "fremont_sim_fault_events_total",
                "kind=\"clock_skew\"",
                f.clock_skews,
            );
            t.counter_set("fremont_sim_fault_unresolved_total", "", f.unresolved);
            t.counter_set(
                "fremont_sim_fault_partition_frames_dropped_total",
                "",
                f.frames_dropped,
            );
        }
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Adds a segment.
    pub fn add_segment(&mut self, cfg: SegmentCfg) -> SegmentId {
        let id = SegmentId(self.segments.len());
        self.segments.push(Segment::new(cfg));
        id
    }

    /// Adds a node, attaching its interfaces to their segments. Nodes with
    /// a RIP configuration get their advertisement timer started.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        for (idx, iface) in node.ifaces.iter().enumerate() {
            self.segments[iface.segment.0].attached.push((id, idx));
        }
        let has_rip = node.behavior.rip.is_some();
        self.nodes.push(node);
        self.uptime.push(None);
        if has_rip {
            // Stagger first advertisements to avoid global synchrony.
            let jitter = SimDuration::from_micros(self.rng.gen_range(0..30_000_000));
            self.schedule(jitter, Event::RipTick { node: id });
        }
        id
    }

    /// Installs the background traffic model and starts its clock.
    pub fn set_traffic(&mut self, model: crate::traffic::TrafficModel) {
        self.traffic = Some(model);
        self.schedule(SimDuration::ZERO, Event::TrafficTick);
    }

    /// Installs an up/down model for a node and starts its clock.
    pub fn set_uptime(&mut self, node: NodeId, model: crate::uptime::UptimeModel) {
        let first = model.initial_event(&mut self.rng);
        self.uptime[node.0] = Some(model);
        if let Some((delay, up)) = first {
            self.schedule(delay, Event::SetNodeUp { node, up });
        }
    }

    /// Marks a node up or down immediately.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.apply_node_up(node, up);
    }

    /// Finds a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Finds a segment id by name.
    pub fn segment_by_name(&self, name: &str) -> Option<SegmentId> {
        self.segments
            .iter()
            .position(|s| s.cfg.name == name)
            .map(SegmentId)
    }

    /// Names of every node, in slab order. Schedule enumerators use
    /// this to validate fault targets against the live topology.
    pub fn node_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name.as_str()).collect()
    }

    /// Names of every segment, in slab order.
    pub fn segment_names(&self) -> Vec<&str> {
        self.segments.iter().map(|s| s.cfg.name.as_str()).collect()
    }

    /// Primary IPv4 address of every node with an interface, in slab
    /// order. Taken before fault injection this is the pristine address
    /// map — a `DuplicateIp` fault rewrites the live interface address.
    pub fn node_ips(&self) -> Vec<(&str, Ipv4Addr)> {
        self.nodes
            .iter()
            .filter(|n| !n.ifaces.is_empty())
            .map(|n| (n.name.as_str(), n.ifaces[0].ip))
            .collect()
    }

    /// A stable FNV-1a fingerprint of the simulator's *ground* state:
    /// per-node name, up/down, clock skew, and interface addressing,
    /// plus per-segment partition/degradation status. Deliberately an
    /// abstraction — transient state (ARP caches, the event queue, RNG
    /// position) and bookkeeping (fault-stats counters) are omitted,
    /// which is what lets the model checker identify interleavings that
    /// converge to the same network condition (e.g. a `Heal` with no
    /// prior partition leaves the ground state untouched). See
    /// DESIGN.md §5e for the soundness argument.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = fremont_net::Fnv1a::new();
        for n in &self.nodes {
            h.write(n.name.as_bytes());
            h.write(&[u8::from(n.up)]);
            h.write_u64(n.clock_skew as u64);
            for i in &n.ifaces {
                h.write(&i.ip.octets());
                h.write_u64(u64::from(i.mask.bits()));
            }
        }
        for s in &self.segments {
            h.write(s.cfg.name.as_bytes());
            h.write(&[u8::from(s.partitioned)]);
            h.write_u64(s.fault_loss.to_bits());
            h.write_u64(s.fault_latency.as_micros());
        }
        h.finish()
    }

    /// Draws and returns one value from the simulation RNG — a *probe*
    /// of the stream position for determinism tests: two same-seed runs
    /// that consumed the same number of draws probe equal, and any extra
    /// hidden draw in one of them makes every later probe diverge. This
    /// advances the stream; only call it where the simulation's own
    /// draw sequence no longer matters (end of a test).
    pub fn rng_position_probe(&mut self) -> u64 {
        self.rng.gen()
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Schedules every event of a [`FaultPlan`] on the ordinary event
    /// queue. Events whose time is already past fire "now" (still in
    /// deterministic queue order).
    ///
    /// Installing an *empty* plan is a guaranteed no-op: it schedules
    /// nothing, draws nothing from the RNG, and leaves the telemetry
    /// exposition untouched, so a fault-free run with an empty plan is
    /// byte-identical to one without this call.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        self.faults_installed = true;
        for ev in &plan.events {
            let delay = ev.at().since(self.now); // saturates to ZERO if past
            self.schedule(
                delay,
                Event::Fault {
                    kind: ev.kind.clone(),
                },
            );
        }
    }

    /// Applies one fault event. Unknown node/segment names are counted
    /// and traced rather than panicking, so a plan written for one
    /// topology degrades loudly-but-safely on another.
    fn apply_fault(&mut self, kind: FaultKind) {
        let resolved = match &kind {
            FaultKind::NodeCrash { node } | FaultKind::GatewayDeath { gateway: node } => {
                match self.node_by_name(node) {
                    Some(id) => {
                        self.apply_node_up(id, false);
                        true
                    }
                    None => false,
                }
            }
            FaultKind::NodeReboot { node } => match self.node_by_name(node) {
                Some(id) => {
                    self.apply_node_up(id, true);
                    true
                }
                None => false,
            },
            FaultKind::Partition { segment } => match self.segment_by_name(segment) {
                Some(id) => {
                    self.segments[id.0].partitioned = true;
                    true
                }
                None => false,
            },
            FaultKind::Heal { segment } => match self.segment_by_name(segment) {
                Some(id) => {
                    self.segments[id.0].partitioned = false;
                    true
                }
                None => false,
            },
            FaultKind::Degrade {
                segment,
                extra_loss,
                extra_latency_micros,
            } => match self.segment_by_name(segment) {
                Some(id) => {
                    let seg = &mut self.segments[id.0];
                    seg.fault_loss = extra_loss.clamp(0.0, 1.0);
                    seg.fault_latency = SimDuration::from_micros(*extra_latency_micros);
                    true
                }
                None => false,
            },
            FaultKind::ClearDegrade { segment } => match self.segment_by_name(segment) {
                Some(id) => {
                    let seg = &mut self.segments[id.0];
                    seg.fault_loss = 0.0;
                    seg.fault_latency = SimDuration::ZERO;
                    true
                }
                None => false,
            },
            FaultKind::DuplicateIp { node, ip } => match self.node_by_name(node) {
                Some(id) if !self.nodes[id.0].ifaces.is_empty() => {
                    self.nodes[id.0].ifaces[0].ip = *ip;
                    true
                }
                _ => false,
            },
            FaultKind::WrongMask { node, prefix_len } => {
                match (
                    self.node_by_name(node),
                    fremont_net::SubnetMask::from_prefix_len(*prefix_len),
                ) {
                    (Some(id), Ok(mask)) if !self.nodes[id.0].ifaces.is_empty() => {
                        // Routes are deliberately left alone: the host now
                        // *answers mask requests* with the wrong mask, which
                        // is the observable symptom the paper reports.
                        self.nodes[id.0].ifaces[0].mask = mask;
                        true
                    }
                    _ => false,
                }
            }
            FaultKind::ClockSkew { node, skew_micros } => match self.node_by_name(node) {
                Some(id) => {
                    self.nodes[id.0].clock_skew = *skew_micros;
                    true
                }
                None => false,
            },
        };
        if resolved {
            self.fault_stats.record(&kind);
        } else {
            self.fault_stats.unresolved += 1;
        }
        if self.telemetry.enabled() {
            let name = if resolved {
                kind.trace_name()
            } else {
                "fault.unresolved"
            };
            self.telemetry.event(
                name,
                kind.target(),
                SpanId::NONE,
                TelTime(self.now.as_micros()),
            );
        }
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Spawns a process on a node; it starts at the current time.
    pub fn spawn(&mut self, node: NodeId, proc_: Box<dyn Process>) -> ProcHandle {
        let idx = self.nodes[node.0].procs.len();
        self.nodes[node.0].procs.push(Some(proc_));
        let handle = ProcHandle { node, idx };
        self.schedule(SimDuration::ZERO, Event::Start { handle });
        handle
    }

    /// Mutable, downcast access to a process (driver-side result reads).
    pub fn process_mut<T: Process>(&mut self, h: ProcHandle) -> Option<&mut T> {
        self.nodes[h.node.0].procs[h.idx]
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Returns `true` when the process reports itself finished.
    pub fn process_done(&self, h: ProcHandle) -> bool {
        self.nodes[h.node.0].procs[h.idx]
            .as_ref()
            .map(|p| p.done())
            .unwrap_or(true)
    }

    /// Removes a process (stops future event delivery to it).
    pub fn kill_process(&mut self, h: ProcHandle) {
        self.nodes[h.node.0].procs[h.idx] = None;
        self.taps.retain(|(_, t)| *t != h);
    }

    /// Drains observations emitted by all processes since the last drain.
    pub fn drain_observations(&mut self) -> Vec<(ProcHandle, SimTime, Observation)> {
        std::mem::take(&mut self.outbox)
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    fn schedule(&mut self, delay: SimDuration, event: Event) {
        self.seq += 1;
        self.queue
            .insert((self.now + delay).as_micros(), self.seq, event);
        let depth = self.queue.len();
        if depth > self.stats.queue_depth_hwm {
            self.stats.queue_depth_hwm = depth;
        }
    }

    /// Time of the earliest pending event, if any. This is the
    /// skip-ahead oracle's public face: every event source in the
    /// simulator (traffic bursts, uptime churn, fault plans, RIP and
    /// ARP timers, process timers) pre-schedules its next firing on
    /// the wheel, so the earliest pending record *is* the next moment
    /// anything can happen and the gap before it is provably idle.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.peek_next().map(SimTime)
    }

    /// Processes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.step_due(u64::MAX)
    }

    /// Pops and dispatches the earliest event if it is due by
    /// `deadline`; advances the clock over any idle gap before it.
    fn step_due(&mut self, deadline: u64) -> bool {
        let Some((at, _seq, event)) = self.queue.pop_due(deadline) else {
            return false;
        };
        let at = SimTime(at);
        debug_assert!(at >= self.now, "time moves forward");
        if at > self.now {
            self.stats.idle_skipped_micros += at.since(self.now).as_micros();
            self.now = at;
        }
        self.stats.events_processed += 1;
        self.dispatch(event);
        true
    }

    /// Runs until the queue drains or `deadline` passes. The clock ends at
    /// exactly `deadline` if it was reached.
    ///
    /// With a telemetry sink attached, each call is wrapped in a
    /// `sim.run` span attributing the slice's logical work (events
    /// dispatched, frames put on the wire) to the profiler's folded
    /// stacks. The span opens at the slice's start; its work and close
    /// are stamped with the slice's end, so interior events (faults,
    /// node up/down) keep the trace stream monotone.
    pub fn run_until(&mut self, deadline: SimTime) {
        let traced = self.telemetry.enabled();
        let span = if traced {
            let at = TelTime(self.now.as_micros());
            self.telemetry.span_start("sim.run", "", SpanId::NONE, at)
        } else {
            SpanId::NONE
        };
        let events_before = self.stats.events_processed;
        let frames_before = self.frames_sent_total();
        let due = deadline.as_micros();
        while self.step_due(due) {}
        if self.now < deadline {
            // Nothing left before the deadline: the wheel's occupancy
            // bitmaps bounded the next firing past it, so the whole
            // remaining gap is provably idle and jumped in one move.
            self.stats.idle_skipped_micros += deadline.since(self.now).as_micros();
            self.now = deadline;
        }
        if traced {
            let at = TelTime(self.now.as_micros());
            let events = self.stats.events_processed - events_before;
            let frames = self.frames_sent_total() - frames_before;
            self.telemetry.work(span, "sim_events", events, at);
            self.telemetry.work(span, "frames", frames, at);
            self.telemetry
                .span_end(span, &format!("events={events} frames={frames}"), at);
        }
    }

    /// Sum of frames sent across all segments (for work attribution).
    fn frames_sent_total(&self) -> u64 {
        self.segments.iter().map(|s| s.stats.frames_sent).sum()
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::FrameRx { node, iface, frame } => self.handle_frame(node, iface, &frame),
            Event::Tap { handle, frame } => self.deliver_tap(handle, &frame),
            Event::Start { handle } => self.with_proc(handle, |p, ctx| p.on_start(ctx)),
            Event::Timer { handle, token } => {
                self.with_proc(handle, |p, ctx| p.on_timer(token, ctx))
            }
            Event::SetNodeUp { node, up } => {
                self.apply_node_up(node, up);
                // Chain the next toggle from the uptime model.
                if let Some(model) = &self.uptime[node.0] {
                    if let Some((delay, next_up)) = model.next_event(up, &mut self.rng) {
                        self.schedule(delay, Event::SetNodeUp { node, up: next_up });
                    }
                }
            }
            Event::RipTick { node } => self.rip_tick(node),
            Event::ArpGc { node } => self.arp_gc(node),
            Event::DelayedSend { node, pkt } => {
                let _ = self.node_send_ip(node, pkt);
            }
            Event::TrafficTick => self.traffic_tick(),
            Event::Fault { kind } => self.apply_fault(kind),
        }
    }

    /// Expires stale ARP-pending packets. A router that fails to resolve
    /// a next hop on a connected subnet reports ICMP Host Unreachable to
    /// the packet source (RFC 1812 behavior; this is the final-hop signal
    /// traceroute sees when probing a nonexistent address on a reached
    /// subnet).
    fn arp_gc(&mut self, node: NodeId) {
        let now = self.now;
        let mut failed: Vec<(usize, Vec<u8>)> = Vec::new();
        {
            let n = &mut self.nodes[node.0];
            n.arp_pending.retain(|(_, ifc, bytes, at)| {
                if now.since(*at) < ARP_PENDING_TIMEOUT {
                    true
                } else {
                    failed.push((*ifc, bytes.clone()));
                    false
                }
            });
            n.arp.sweep(now);
        }
        if self.nodes[node.0].kind == NodeKind::Router && self.nodes[node.0].up {
            for (ifc, bytes) in failed {
                let Ok(orig) = Ipv4Packet::decode(&bytes) else {
                    continue;
                };
                // Never answer errors with errors, and skip broadcasts.
                if orig.protocol == IpProtocol::Icmp {
                    if let Ok(msg) = IcmpMessage::decode(&orig.payload) {
                        if msg.is_error() {
                            continue;
                        }
                    }
                }
                self.stats.icmp_errors += 1;
                let src_ip = self.nodes[node.0].ifaces[ifc].ip;
                let msg = unreachable_for(UnreachableCode::Host, &orig);
                self.send_reply(node, src_ip, orig.src, IpProtocol::Icmp, msg.encode(), None);
            }
        }
    }

    fn apply_node_up(&mut self, node: NodeId, up: bool) {
        let n = &mut self.nodes[node.0];
        n.up = up;
        if !up {
            // Power-off loses volatile state.
            n.arp.clear();
            n.arp_pending.clear();
            n.clear_rip_state();
        }
        if self.telemetry.enabled() {
            let name = if up { "node.up" } else { "node.down" };
            let detail = self.nodes[node.0].name.clone();
            self.telemetry
                .event(name, &detail, SpanId::NONE, TelTime(self.now.as_micros()));
        }
    }

    fn traffic_tick(&mut self) {
        let Some(model) = &mut self.traffic else {
            return;
        };
        let (flows, next) = model.next_burst(&mut self.rng);
        for (src, dst) in flows {
            // Background chatter: a few UDP packets from src to dst.
            if !self.nodes[src.0].up {
                continue;
            }
            let src_ip = self.nodes[src.0].ifaces[0].ip;
            let pkt = Ipv4Packet::new(src_ip, dst, IpProtocol::Udp, self.traffic_payload.clone())
                .with_id(self.next_ip_id());
            let _ = self.node_send_ip(src, pkt);
        }
        if let Some(delay) = next {
            self.schedule(delay, Event::TrafficTick);
        }
    }

    fn with_proc(&mut self, handle: ProcHandle, f: impl FnOnce(&mut dyn Process, &mut ProcCtx)) {
        let Some(mut p) = self.nodes[handle.node.0].procs[handle.idx].take() else {
            return;
        };
        {
            let mut ctx = ProcCtx { sim: self, handle };
            f(p.as_mut(), &mut ctx);
        }
        self.nodes[handle.node.0].procs[handle.idx] = Some(p);
    }

    fn deliver_tap(&mut self, handle: ProcHandle, rec: &FrameRecord) {
        if self.nodes[handle.node.0].procs[handle.idx].is_some() {
            self.proc_stats_mut(handle).frames_tapped += 1;
        }
        self.with_proc(handle, |p, ctx| p.on_tap(&rec.frame, ctx));
    }

    fn deliver_ip_to_procs(&mut self, node: NodeId, pkt: &Ipv4Packet) {
        let count = self.nodes[node.0].procs.len();
        for idx in 0..count {
            let handle = ProcHandle { node, idx };
            if self.nodes[node.0].procs[idx].is_some() {
                self.proc_stats_mut(handle).packets_received += 1;
            }
            self.with_proc(handle, |p, ctx| p.on_ip(pkt, ctx));
        }
    }

    fn proc_stats_mut(&mut self, handle: ProcHandle) -> &mut ProcStats {
        self.proc_stats
            .entry((handle.node.0, handle.idx))
            .or_default()
    }

    // ------------------------------------------------------------------
    // Frame transmission
    // ------------------------------------------------------------------

    fn next_ip_id(&mut self) -> u16 {
        self.ip_id = self.ip_id.wrapping_add(1);
        self.ip_id
    }

    /// Sends a stack-originated reply/error packet with a fresh IP id.
    fn send_reply(
        &mut self,
        node: NodeId,
        src_ip: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: IpProtocol,
        payload: Vec<u8>,
        ttl: Option<u8>,
    ) {
        let id = self.next_ip_id();
        let mut pkt = Ipv4Packet::new(src_ip, dst, protocol, Bytes::from(payload)).with_id(id);
        if let Some(t) = ttl {
            pkt.ttl = t;
        }
        let _ = self.node_send_ip(node, pkt);
    }

    /// The "gateway software problem" packet filter: `true` when this node
    /// silently discards UDP to the traceroute port range — applied to
    /// transit and locally-addressed traffic alike.
    fn filters_probe(&self, node: NodeId, dst_port: u16) -> bool {
        self.nodes[node.0].behavior.filter_udp_probes
            && dst_port >= fremont_net::udp::TRACEROUTE_BASE_PORT
    }

    /// Puts a frame on a node's segment: loss/collision roll, then
    /// per-receiver delivery events plus tap copies.
    fn transmit_frame(&mut self, node: NodeId, iface: usize, frame: EthernetFrame) {
        self.transmit_frame_rec(node, iface, FrameRecord::new(frame));
    }

    /// [`Sim::transmit_frame`] with a caller-prepared record (the RIP
    /// advertisement path pre-fills the decode cache and absorb key).
    /// One event record is still scheduled per matching receiver —
    /// event counts, RNG draw order, and queue-depth telemetry are
    /// identical to per-receiver cloning — but all of them share one
    /// frame allocation and decode.
    fn transmit_frame_rec(&mut self, node: NodeId, iface: usize, rec: FrameRecord) {
        if !self.nodes[node.0].up {
            return;
        }
        let frame = &rec.frame;
        let seg_id = self.nodes[node.0].ifaces[iface].segment;
        let now = self.now;
        let seg = &mut self.segments[seg_id.0];
        // A partitioned (cut) wire swallows every frame before any loss
        // roll, so no RNG is consumed for it.
        if seg.partitioned {
            seg.stats.record_loss();
            self.fault_stats.frames_dropped += 1;
            return;
        }
        let loss = seg.loss_probability(now);
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            seg.stats.record_loss();
            return;
        }
        let is_arp = frame.ethertype == EtherType::Arp;
        seg.stats
            .record_frame(now, frame.wire_len(), frame.is_broadcast(), is_arp);

        let latency = seg.cfg.latency + seg.fault_latency;
        let jitter_bound = seg.cfg.jitter.as_micros();
        let broadcast = frame.is_broadcast();
        let dst = frame.dst;
        let rec = Rc::new(rec);
        // Borrow dance: take the attachment list out of the segment so we
        // can schedule deliveries (which needs `&mut self`) without cloning
        // it on every frame. Nothing below touches segment state.
        let attached = std::mem::take(&mut self.segments[seg_id.0].attached);
        for &(dst_node, dst_iface) in &attached {
            if dst_node == node && dst_iface == iface {
                continue; // No self-reception.
            }
            let dst_mac = self.nodes[dst_node.0].ifaces[dst_iface].mac;
            if broadcast || dst == dst_mac {
                let jitter = if jitter_bound > 0 {
                    SimDuration::from_micros(self.rng.gen_range(0..jitter_bound))
                } else {
                    SimDuration::ZERO
                };
                self.schedule(
                    latency + jitter,
                    Event::FrameRx {
                        node: dst_node,
                        iface: dst_iface,
                        frame: Rc::clone(&rec),
                    },
                );
            }
        }
        self.segments[seg_id.0].attached = attached;
        // Taps see every surviving frame on the segment.
        let taps: Vec<ProcHandle> = self
            .taps
            .iter()
            .filter(|(s, _)| *s == seg_id)
            .map(|(_, h)| *h)
            .collect();
        for handle in taps {
            self.schedule(
                latency,
                Event::Tap {
                    handle,
                    frame: Rc::clone(&rec),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // IP output path
    // ------------------------------------------------------------------

    /// Sends an IP packet from a node through its routing table and ARP.
    pub fn node_send_ip(&mut self, node: NodeId, pkt: Ipv4Packet) -> Result<(), SendError> {
        if !self.nodes[node.0].up {
            return Err(SendError::NodeDown);
        }
        self.stats.packets_originated += 1;
        let dst = pkt.dst;

        // Limited broadcast: out of every interface, never routed.
        if dst == Ipv4Addr::BROADCAST {
            let ifaces = self.nodes[node.0].ifaces.len();
            for i in 0..ifaces {
                self.link_output(node, i, None, &pkt);
            }
            return Ok(());
        }

        // Directed broadcast of a *connected* subnet: link broadcast there.
        if let Some(i) = self.connected_broadcast_iface(node, dst) {
            self.link_output(node, i, None, &pkt);
            return Ok(());
        }

        let route = self.nodes[node.0]
            .routes
            .lookup(dst)
            .ok_or(SendError::NoRoute(dst))?;
        let next_hop = route.gateway.unwrap_or(dst);
        self.check_mtu(node, route.iface, &pkt)?;
        self.unicast_output(node, route.iface, next_hop, &pkt);
        Ok(())
    }

    fn check_mtu(&self, node: NodeId, iface: usize, pkt: &Ipv4Packet) -> Result<(), SendError> {
        // The simulated-TCP reliable channel is exempt (see DESIGN.md).
        if pkt.protocol == IpProtocol::Tcp {
            return Ok(());
        }
        let seg = self.nodes[node.0].ifaces[iface].segment;
        let mtu = self.segments[seg.0].cfg.mtu;
        let len = fremont_net::ipv4::HEADER_LEN + pkt.payload.len();
        if len > mtu {
            Err(SendError::TooBig { len, mtu })
        } else {
            Ok(())
        }
    }

    /// Interface index whose *connected subnet's* directed broadcast is
    /// `dst`, if any.
    fn connected_broadcast_iface(&self, node: NodeId, dst: Ipv4Addr) -> Option<usize> {
        self.nodes[node.0]
            .ifaces
            .iter()
            .position(|i| i.subnet().directed_broadcast() == dst)
    }

    /// Emits an IP packet on a specific interface: `next_hop = None` means
    /// link broadcast.
    fn link_output(
        &mut self,
        node: NodeId,
        iface: usize,
        next_hop: Option<Ipv4Addr>,
        pkt: &Ipv4Packet,
    ) {
        let src_mac = self.nodes[node.0].ifaces[iface].mac;
        match next_hop {
            None => {
                let frame = EthernetFrame::new(
                    MacAddr::BROADCAST,
                    src_mac,
                    EtherType::Ipv4,
                    Bytes::from(pkt.encode()),
                );
                self.transmit_frame(node, iface, frame);
            }
            Some(nh) => self.unicast_output(node, iface, nh, pkt),
        }
    }

    fn unicast_output(&mut self, node: NodeId, iface: usize, next_hop: Ipv4Addr, pkt: &Ipv4Packet) {
        let now = self.now;
        let cached = self.nodes[node.0].arp.lookup(next_hop, now);
        match cached {
            Some(dst_mac) => {
                let src_mac = self.nodes[node.0].ifaces[iface].mac;
                let frame = EthernetFrame::new(
                    dst_mac,
                    src_mac,
                    EtherType::Ipv4,
                    Bytes::from(pkt.encode()),
                );
                self.transmit_frame(node, iface, frame);
            }
            None => {
                // Queue and resolve.
                let encoded = pkt.encode();
                self.nodes[node.0]
                    .arp_pending
                    .push((next_hop, iface, encoded, now));
                self.schedule(ARP_PENDING_TIMEOUT, Event::ArpGc { node });
                self.send_arp_request(node, iface, next_hop);
            }
        }
    }

    fn send_arp_request(&mut self, node: NodeId, iface: usize, target: Ipv4Addr) {
        self.stats.arp_requests += 1;
        let my = &self.nodes[node.0].ifaces[iface];
        let req = ArpPacket::request(my.mac, my.ip, target);
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            my.mac,
            EtherType::Arp,
            Bytes::from(req.encode()),
        );
        self.transmit_frame(node, iface, frame);
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    fn handle_frame(&mut self, node: NodeId, iface: usize, rec: &FrameRecord) {
        if !self.nodes[node.0].up {
            return;
        }
        match rec.frame.ethertype {
            EtherType::Arp => {
                let arp = rec
                    .arp
                    .get_or_init(|| ArpPacket::decode(&rec.frame.payload).ok());
                if let Some(arp) = arp {
                    self.handle_arp(node, iface, arp);
                }
            }
            EtherType::Ipv4 => {
                let pkt = rec
                    .ipv4
                    .get_or_init(|| Ipv4Packet::decode(&rec.frame.payload).ok());
                if let Some(pkt) = pkt {
                    self.handle_ip(node, iface, pkt, rec);
                }
            }
            EtherType::Other(_) => {}
        }
    }

    fn handle_arp(&mut self, node: NodeId, iface: usize, arp: &ArpPacket) {
        match arp.op {
            ArpOp::Request => {
                let my_ip = self.nodes[node.0].ifaces[iface].ip;
                let my_mac = self.nodes[node.0].ifaces[iface].mac;
                let for_me = arp.target_ip == my_ip;
                let proxy = !for_me && self.should_proxy_arp(node, iface, arp.target_ip);
                if for_me || proxy {
                    if for_me {
                        // Standard optimization: learn the requester.
                        let now = self.now;
                        self.nodes[node.0]
                            .arp
                            .insert(arp.sender_ip, arp.sender_mac, now);
                    }
                    let reply = ArpPacket {
                        op: ArpOp::Reply,
                        sender_mac: my_mac,
                        sender_ip: arp.target_ip,
                        target_mac: arp.sender_mac,
                        target_ip: arp.sender_ip,
                    };
                    let frame = EthernetFrame::new(
                        arp.sender_mac,
                        my_mac,
                        EtherType::Arp,
                        Bytes::from(reply.encode()),
                    );
                    self.transmit_frame(node, iface, frame);
                }
            }
            ArpOp::Reply => {
                let now = self.now;
                self.nodes[node.0]
                    .arp
                    .insert(arp.sender_ip, arp.sender_mac, now);
                // Flush pending packets for the resolved address.
                let ready: Vec<(usize, Vec<u8>)> = {
                    let n = &mut self.nodes[node.0];
                    let mut out = Vec::new();
                    n.arp_pending.retain(|(nh, ifc, bytes, _)| {
                        if *nh == arp.sender_ip {
                            out.push((*ifc, bytes.clone()));
                            false
                        } else {
                            true
                        }
                    });
                    out
                };
                for (ifc, bytes) in ready {
                    if let Ok(pkt) = Ipv4Packet::decode(&bytes) {
                        self.unicast_output(node, ifc, arp.sender_ip, &pkt);
                    }
                }
            }
        }
    }

    /// Proxy-ARP policy: routers configured with `proxy_arp_for` answer for
    /// addresses in those subnets when the real owner is elsewhere.
    fn should_proxy_arp(&self, node: NodeId, iface: usize, target: Ipv4Addr) -> bool {
        let n = &self.nodes[node.0];
        if n.kind != NodeKind::Router {
            return false;
        }
        n.behavior.proxy_arp_for.iter().any(|s| s.contains(target))
            && n.routes
                .lookup(target)
                .map(|r| r.iface != iface)
                .unwrap_or(false)
    }

    fn handle_ip(&mut self, node: NodeId, iface: usize, pkt: &Ipv4Packet, rec: &FrameRecord) {
        let local = self.nodes[node.0].is_local_dst(pkt.dst, iface);
        if local {
            self.local_input(node, iface, pkt, rec);
        } else if self.nodes[node.0].kind == NodeKind::Router {
            // Forwarding mutates the TTL, so the router works on its own
            // copy (cheap: the payload is refcounted `Bytes`).
            self.forward_ip(node, iface, pkt.clone());
        }
        // Hosts silently discard transit packets.
    }

    fn forward_ip(&mut self, node: NodeId, in_iface: usize, mut pkt: Ipv4Packet) {
        // TTL check.
        if pkt.ttl <= 1 {
            self.stats.icmp_errors += 1;
            let bug = self.nodes[node.0].behavior.traceroute_bug;
            match bug {
                TracerouteBug::SilentDrop => {}
                TracerouteBug::None | TracerouteBug::TtlFromReceived => {
                    let src_ip = self.nodes[node.0].ifaces[in_iface].ip;
                    let msg = time_exceeded_for(&pkt);
                    let reply_ttl = match bug {
                        // The broken implementations reuse the received TTL,
                        // so the error dies unless the prober is adjacent.
                        TracerouteBug::TtlFromReceived => pkt.ttl,
                        _ => fremont_net::ipv4::DEFAULT_TTL,
                    };
                    self.send_reply(
                        node,
                        src_ip,
                        pkt.src,
                        IpProtocol::Icmp,
                        msg.encode(),
                        Some(reply_ttl),
                    );
                }
            }
            return;
        }
        // Probe-filtering gateways drop high-port UDP transit traffic.
        if pkt.protocol == IpProtocol::Udp
            && UdpDatagram::decode(&pkt.payload)
                .map(|d| self.filters_probe(node, d.dst_port))
                .unwrap_or(false)
        {
            return;
        }
        pkt.ttl -= 1;
        self.stats.packets_forwarded += 1;

        // Directed broadcast onto a connected subnet?
        if let Some(out_iface) = self.connected_broadcast_iface(node, pkt.dst) {
            if self.nodes[node.0].behavior.forward_directed_broadcast {
                self.link_output(node, out_iface, None, &pkt);
            }
            return;
        }

        match self.nodes[node.0].routes.lookup(pkt.dst) {
            Some(route) => {
                // No fragmentation is modeled: an oversize packet is
                // dropped at the forwarding hop, like a DF packet without
                // Path-MTU discovery.
                if self.check_mtu(node, route.iface, &pkt).is_err() {
                    return;
                }
                let next_hop = route.gateway.unwrap_or(pkt.dst);
                self.unicast_output(node, route.iface, next_hop, &pkt);
            }
            None => {
                self.stats.icmp_errors += 1;
                let src_ip = self.nodes[node.0].ifaces[in_iface].ip;
                let msg = unreachable_for(UnreachableCode::Net, &pkt);
                self.send_reply(node, src_ip, pkt.src, IpProtocol::Icmp, msg.encode(), None);
            }
        }
    }

    fn local_input(&mut self, node: NodeId, iface: usize, pkt: &Ipv4Packet, rec: &FrameRecord) {
        // Raw-socket view: every locally-delivered packet reaches processes.
        self.deliver_ip_to_procs(node, pkt);

        let is_broadcast = self.nodes[node.0].dst_is_broadcast(pkt.dst, iface);
        match pkt.protocol {
            IpProtocol::Icmp => {
                if let Ok(msg) = IcmpMessage::decode(&pkt.payload) {
                    self.handle_icmp(node, iface, pkt, msg, is_broadcast);
                }
            }
            IpProtocol::Udp => {
                let dgram = rec
                    .udp
                    .get_or_init(|| UdpDatagram::decode(&pkt.payload).ok());
                if let Some(dgram) = dgram {
                    self.handle_udp(node, iface, pkt, dgram, rec, is_broadcast);
                }
            }
            IpProtocol::Tcp => {
                // Reliable-channel stand-in, used only for DNS AXFR.
                self.handle_dns_tcp(node, pkt);
            }
            IpProtocol::Other(_) => {}
        }
    }

    fn handle_icmp(
        &mut self,
        node: NodeId,
        iface: usize,
        pkt: &Ipv4Packet,
        msg: IcmpMessage,
        is_broadcast: bool,
    ) {
        match msg {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                let b = &self.nodes[node.0].behavior;
                if !b.echo_reply || (is_broadcast && !b.broadcast_echo_reply) {
                    return;
                }
                let reply = IcmpMessage::EchoReply {
                    ident,
                    seq,
                    payload,
                };
                let src_ip = self.nodes[node.0].ifaces[iface].ip;
                let id = self.next_ip_id();
                let out = Ipv4Packet::new(
                    src_ip,
                    pkt.src,
                    IpProtocol::Icmp,
                    Bytes::from(reply.encode()),
                )
                .with_id(id);
                if is_broadcast {
                    // Replies to a broadcast ping bunch up within a short
                    // window — the collision-loss mechanism of Table 5. The
                    // spread reflects 1993-era interrupt/processing skew.
                    let delay = SimDuration::from_micros(self.rng.gen_range(0..30_000));
                    self.schedule(delay, Event::DelayedSend { node, pkt: out });
                } else {
                    let _ = self.node_send_ip(node, out);
                }
            }
            IcmpMessage::MaskRequest { ident, seq } => {
                if !self.nodes[node.0].behavior.mask_reply || is_broadcast {
                    return;
                }
                let my = &self.nodes[node.0].ifaces[iface];
                let reply = IcmpMessage::MaskReply {
                    ident,
                    seq,
                    mask: my.mask.as_addr(),
                };
                let src_ip = my.ip;
                self.send_reply(
                    node,
                    src_ip,
                    pkt.src,
                    IpProtocol::Icmp,
                    reply.encode(),
                    None,
                );
            }
            // Replies and errors are consumed by processes (already
            // delivered via the raw view).
            _ => {}
        }
    }

    fn handle_udp(
        &mut self,
        node: NodeId,
        iface: usize,
        pkt: &Ipv4Packet,
        dgram: &UdpDatagram,
        rec: &FrameRecord,
        is_broadcast: bool,
    ) {
        match dgram.dst_port {
            ECHO_PORT => {
                if self.nodes[node.0].behavior.udp_echo && !is_broadcast {
                    let reply = dgram.echo_reply();
                    let src_ip = self.nodes[node.0].ifaces[iface].ip;
                    self.send_reply(node, src_ip, pkt.src, IpProtocol::Udp, reply.encode(), None);
                }
            }
            RIP_PORT => {
                let rip = rec
                    .rip
                    .get_or_init(|| RipPacket::decode(&dgram.payload).ok().map(Rc::new));
                if let Some(rip) = rip {
                    let rip = Rc::clone(rip);
                    self.handle_rip(node, iface, pkt, dgram, &rip, rec.absorb_key);
                }
            }
            DNS_PORT => {
                if self.nodes[node.0].dns.is_some() {
                    if let Ok(query) = DnsMessage::decode(&dgram.payload) {
                        let answer = self.nodes[node.0]
                            .dns
                            .as_ref()
                            .expect("checked")
                            .answer(&query);
                        let reply = UdpDatagram::new(
                            DNS_PORT,
                            dgram.src_port,
                            Bytes::from(answer.encode()),
                        );
                        let src_ip = self.nodes[node.0].ifaces[iface].ip;
                        self.send_reply(
                            node,
                            src_ip,
                            pkt.src,
                            IpProtocol::Udp,
                            reply.encode(),
                            None,
                        );
                    }
                }
            }
            _ => {
                // A probe-filtering gateway discards high-port UDP junk
                // inbound as well as in transit: no error, no reply. This
                // is what hides whole subnets from traceroute in Table 6.
                if self.filters_probe(node, dgram.dst_port) {
                    return;
                }
                // Closed port: Port Unreachable (traceroute's arrival signal).
                let listening = self.port_has_listener(node, dgram.dst_port);
                if !listening && self.nodes[node.0].behavior.port_unreachable && !is_broadcast {
                    self.stats.icmp_errors += 1;
                    let msg = unreachable_for(UnreachableCode::Port, pkt);
                    let src_ip = self.nodes[node.0].ifaces[iface].ip;
                    self.send_reply(node, src_ip, pkt.src, IpProtocol::Icmp, msg.encode(), None);
                }
            }
        }
    }

    /// Processes receive every packet anyway; "listening" only suppresses
    /// the Port Unreachable error for ports processes claimed.
    fn port_has_listener(&self, _node: NodeId, _port: u16) -> bool {
        false
    }

    fn handle_rip(
        &mut self,
        node: NodeId,
        iface: usize,
        pkt: &Ipv4Packet,
        dgram: &UdpDatagram,
        rip: &Rc<RipPacket>,
        absorb_key: Option<u32>,
    ) {
        match rip.command {
            fremont_net::RipCommand::Response => {
                // Hosts remember learned routes (feeds promiscuous
                // rebroadcast). The fold into `rip_learned` is deferred:
                // queue the shared packet and compact lazily. A keyed
                // advertisement (a cached template whose bytes cannot
                // have changed) is skipped outright on repeat receipt —
                // re-applying it would be a no-op min-merge anyway.
                let n = &mut self.nodes[node.0];
                if let Some(key) = absorb_key {
                    if n.rip_absorb_test_and_set(key) {
                        return;
                    }
                }
                n.rip_pending.push(Rc::clone(rip));
                if n.rip_pending.len() >= 64 {
                    n.compact_rip_learned();
                }
            }
            fremont_net::RipCommand::Request => {
                // RFC 1058 §3.4.1: a whole-table request ("RIP Poll") gets
                // the full routing table back, unicast to the requester.
                // Only RIP speakers answer; "not all routers use RIP or
                // respond properly to RIP Request or RIP Poll queries".
                let is_poll = rip.entries.len() == 1
                    && rip.entries[0].addr.is_unspecified()
                    && rip.entries[0].metric >= fremont_net::rip::METRIC_INFINITY;
                let speaks_rip = self.nodes[node.0].behavior.rip.is_some();
                if !is_poll || !speaks_rip || self.nodes[node.0].kind != NodeKind::Router {
                    return;
                }
                let entries: Vec<RipEntry> = self.nodes[node.0]
                    .routes
                    .routes()
                    .iter()
                    .map(|r| RipEntry {
                        addr: r.dest.network(),
                        metric: (r.metric + 1).min(fremont_net::rip::METRIC_INFINITY),
                    })
                    .collect();
                let src_ip = self.nodes[node.0].ifaces[iface].ip;
                for packet in fremont_net::rip::split_into_packets(&entries) {
                    let reply =
                        UdpDatagram::new(RIP_PORT, dgram.src_port, Bytes::from(packet.encode()));
                    self.send_reply(node, src_ip, pkt.src, IpProtocol::Udp, reply.encode(), None);
                }
            }
        }
    }

    fn handle_dns_tcp(&mut self, node: NodeId, pkt: &Ipv4Packet) {
        let Some(dns) = self.nodes[node.0].dns.as_ref() else {
            return;
        };
        let Ok(query) = DnsMessage::decode(&pkt.payload) else {
            return;
        };
        if query.is_response {
            return; // Our own reply echoed back; processes already saw it.
        }
        let answer = dns.answer(&query);
        // Answer only queries addressed to one of our interfaces: a zone
        // transfer aimed at a broadcast or host-zero address is dropped.
        let Some(my_iface) = self.nodes[node.0].iface_with_ip(pkt.dst) else {
            return;
        };
        let src_ip = self.nodes[node.0].ifaces[my_iface].ip;
        self.send_reply(
            node,
            src_ip,
            pkt.src,
            IpProtocol::Tcp,
            answer.encode(),
            None,
        );
    }

    fn rip_tick(&mut self, node: NodeId) {
        let (up, cfg) = {
            let n = &self.nodes[node.0];
            match &n.behavior.rip {
                Some(cfg) => (n.up, cfg.clone()),
                None => return,
            }
        };
        if up {
            self.send_rip_advertisements(node, &cfg);
        }
        // Reschedule with small jitter (RFC 1058 recommends it).
        let jitter = SimDuration::from_micros(self.rng.gen_range(0..2_000_000));
        self.schedule(cfg.interval + jitter, Event::RipTick { node });
    }

    fn send_rip_advertisements(&mut self, node: NodeId, cfg: &crate::node::RipConfig) {
        let iface_count = self.nodes[node.0].ifaces.len();
        if cfg.promiscuous {
            // The learned-route list is about to be read: fold in
            // everything heard since the last compaction.
            self.nodes[node.0].compact_rip_learned();
        }
        for ifc in 0..iface_count {
            // A tick's advertisement content is a pure function of the
            // node's route state: the static table for normal speakers,
            // the learned-route list for promiscuous rebroadcasters.
            // Both carry a monotone version, so the split + UDP encode is
            // cached per interface and only the IP identification (and
            // therefore the frame bytes) is stamped fresh per tick. Each
            // cached packet gets an absorb key — receivers fold a given
            // identity once and skip byte-identical repeats.
            let version = if cfg.promiscuous {
                self.nodes[node.0].rip_version
            } else {
                self.nodes[node.0].routes.version()
            };
            let stale = match self.rip_advert_cache.get(&(node.0, ifc)) {
                Some(t) => t.version != version,
                None => true,
            };
            if stale {
                let n = &self.nodes[node.0];
                let entries: Vec<RipEntry> = if cfg.promiscuous {
                    // Everything learned, regardless of origin — the
                    // misbehavior RIPwatch flags.
                    n.rip_learned
                        .iter()
                        .map(|(a, m)| RipEntry {
                            addr: *a,
                            metric: (m + 1).min(fremont_net::rip::METRIC_INFINITY),
                        })
                        .collect()
                } else {
                    n.routes
                        .routes()
                        .iter()
                        .filter(|r| !cfg.split_horizon || r.iface != ifc)
                        .map(|r| RipEntry {
                            addr: r.dest.network(),
                            metric: (r.metric + 1).min(fremont_net::rip::METRIC_INFINITY),
                        })
                        .collect()
                };
                let packets = fremont_net::rip::split_into_packets(&entries)
                    .into_iter()
                    .map(|p| {
                        let dgram = UdpDatagram::new(RIP_PORT, RIP_PORT, Bytes::from(p.encode()));
                        let absorb_key = self.next_absorb_key;
                        self.next_absorb_key += 1;
                        RipAdvertPacket {
                            rip: Rc::new(p),
                            udp_bytes: Bytes::from(dgram.encode()),
                            absorb_key,
                        }
                    })
                    .collect();
                self.rip_advert_cache
                    .insert((node.0, ifc), RipAdvertTemplate { version, packets });
            }
            let tmpl = &self.rip_advert_cache[&(node.0, ifc)];
            let packets: Vec<(Rc<RipPacket>, Bytes, u32)> = tmpl
                .packets
                .iter()
                .map(|p| (Rc::clone(&p.rip), p.udp_bytes.clone(), p.absorb_key))
                .collect();
            if packets.is_empty() {
                continue;
            }
            let src_ip = self.nodes[node.0].ifaces[ifc].ip;
            let bcast = self.nodes[node.0].ifaces[ifc].subnet().directed_broadcast();
            for (rip, udp_bytes, key) in packets {
                let id = self.next_ip_id();
                let out = Ipv4Packet::new(src_ip, bcast, IpProtocol::Udp, udp_bytes)
                    .with_ttl(1)
                    .with_id(id);
                self.broadcast_rip(node, ifc, &out, rip, Some(key));
            }
        }
    }

    /// Broadcasts a RIP advertisement with the decoded packet pre-filled
    /// on the frame record, so no receiver re-parses the UDP payload.
    fn broadcast_rip(
        &mut self,
        node: NodeId,
        iface: usize,
        pkt: &Ipv4Packet,
        rip: Rc<RipPacket>,
        absorb_key: Option<u32>,
    ) {
        let src_mac = self.nodes[node.0].ifaces[iface].mac;
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            src_mac,
            EtherType::Ipv4,
            Bytes::from(pkt.encode()),
        );
        let mut rec = FrameRecord::new(frame);
        let _ = rec.rip.set(Some(rip));
        rec.absorb_key = absorb_key;
        self.transmit_frame_rec(node, iface, rec);
    }
}

/// The capability surface a process sees (its "kernel interface").
pub struct ProcCtx<'a> {
    pub(crate) sim: &'a mut Sim,
    pub(crate) handle: ProcHandle,
}

impl ProcCtx<'_> {
    /// Current time *as this node's clock reads it*. On a healthy host
    /// this is true simulated time; under a
    /// [`crate::faults::FaultKind::ClockSkew`] fault it is shifted by
    /// the node's offset — processes timestamp their observations with
    /// this clock, which is exactly how a real host with a broken clock
    /// poisons a journal.
    pub fn now(&self) -> SimTime {
        let skew = self.sim.nodes[self.handle.node.0].clock_skew;
        if skew == 0 {
            return self.sim.now;
        }
        let shifted = (self.sim.now.as_micros() as i64).saturating_add(skew);
        SimTime(shifted.max(0) as u64)
    }

    /// The hosting node's name.
    pub fn node_name(&self) -> &str {
        &self.sim.nodes[self.handle.node.0].name
    }

    /// The hosting node's interfaces.
    pub fn ifaces(&self) -> Vec<IfaceInfo> {
        self.sim.nodes[self.handle.node.0]
            .ifaces
            .iter()
            .enumerate()
            .map(|(index, i)| IfaceInfo {
                index,
                mac: i.mac,
                ip: i.ip,
                mask: i.mask,
            })
            .collect()
    }

    /// The primary interface (index 0).
    pub fn primary_iface(&self) -> IfaceInfo {
        self.ifaces()[0]
    }

    /// Sets a timer; `token` is returned in
    /// [`crate::process::Process::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let handle = self.handle;
        self.sim.schedule(delay, Event::Timer { handle, token });
    }

    /// Sends a UDP datagram (routed through the host stack).
    pub fn send_udp(
        &mut self,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    ) -> Result<(), SendError> {
        let dgram = UdpDatagram::new(src_port, dst_port, payload);
        self.send_ip(
            dst,
            IpProtocol::Udp,
            Bytes::from(dgram.encode()),
            None,
            None,
        )
    }

    /// Sends an ICMP message.
    pub fn send_icmp(&mut self, dst: Ipv4Addr, msg: &IcmpMessage) -> Result<(), SendError> {
        self.send_ip(dst, IpProtocol::Icmp, Bytes::from(msg.encode()), None, None)
    }

    /// Sends a raw IP packet with optional TTL and identification.
    pub fn send_ip(
        &mut self,
        dst: Ipv4Addr,
        protocol: IpProtocol,
        payload: Bytes,
        ttl: Option<u8>,
        id: Option<u16>,
    ) -> Result<(), SendError> {
        let node = self.handle.node;
        let src = self.source_ip_for(dst);
        let assigned_id = id.unwrap_or_else(|| self.sim.next_ip_id());
        let mut pkt = Ipv4Packet::new(src, dst, protocol, payload).with_id(assigned_id);
        if let Some(t) = ttl {
            pkt.ttl = t;
        }
        let handle = self.handle;
        let res = self.sim.node_send_ip(node, pkt);
        if res.is_ok() {
            self.sim.proc_stats_mut(handle).packets_sent += 1;
        }
        res
    }

    fn source_ip_for(&self, dst: Ipv4Addr) -> Ipv4Addr {
        let n = &self.sim.nodes[self.handle.node.0];
        n.routes
            .lookup(dst)
            .map(|r| n.ifaces[r.iface].ip)
            .unwrap_or(n.ifaces[0].ip)
    }

    /// Snapshot of the host's ARP cache (EtherHostProbe's readback).
    pub fn arp_snapshot(&self) -> Vec<(Ipv4Addr, MacAddr)> {
        let node = &self.sim.nodes[self.handle.node.0];
        node.arp.snapshot(self.sim.now)
    }

    /// Enables/disables the promiscuous tap on the primary interface's
    /// segment (the SunOS NIT; "this module must be run with system
    /// privileges").
    pub fn enable_tap(&mut self, on: bool) {
        let seg = self.sim.nodes[self.handle.node.0].ifaces[0].segment;
        let handle = self.handle;
        if on {
            if !self.sim.taps.contains(&(seg, handle)) {
                self.sim.taps.push((seg, handle));
            }
        } else {
            self.sim.taps.retain(|(s, h)| !(*s == seg && *h == handle));
        }
    }

    /// Emits a discovered fact toward the Journal.
    pub fn emit(&mut self, obs: Observation) {
        // Observations carry the *node's* clock, so a clock-skewed host
        // stamps its reports wrongly (see `ProcCtx::now`). Kernel timers
        // (`set_timer`) stay on true simulated time.
        let at = self.now();
        let handle = self.handle;
        self.sim.outbox.push((handle, at, obs));
    }

    /// Deterministic random integer in `[lo, hi)`.
    pub fn rand_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.sim.rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Iface;
    use fremont_net::SubnetMask;

    fn mac(b: u8) -> MacAddr {
        MacAddr::new([8, 0, 0x20, 0, 0, b])
    }

    fn two_host_sim() -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(7);
        let seg = sim.add_segment(SegmentCfg::default());
        let mk = |name: &str, b: u8| {
            Node::new(
                name,
                NodeKind::Host,
                vec![Iface {
                    mac: mac(b),
                    ip: Ipv4Addr::new(10, 0, 0, b),
                    mask: SubnetMask::from_prefix_len(24).unwrap(),
                    segment: seg,
                }],
            )
        };
        let mut a = mk("a", 1);
        a.routes.add(crate::routing::Route {
            dest: "10.0.0.0/24".parse().unwrap(),
            gateway: None,
            iface: 0,
            metric: 0,
        });
        let mut b = mk("b", 2);
        b.routes.add(crate::routing::Route {
            dest: "10.0.0.0/24".parse().unwrap(),
            gateway: None,
            iface: 0,
            metric: 0,
        });
        let a = sim.add_node(a);
        let b = sim.add_node(b);
        (sim, a, b)
    }

    /// A probe process used by engine unit tests.
    struct Pinger {
        target: Ipv4Addr,
        replies: Vec<Ipv4Addr>,
    }

    impl Process for Pinger {
        fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
            let msg = IcmpMessage::EchoRequest {
                ident: 9,
                seq: 1,
                payload: vec![1, 2, 3],
            };
            ctx.send_icmp(self.target, &msg).unwrap();
        }

        fn on_ip(&mut self, pkt: &Ipv4Packet, _ctx: &mut ProcCtx<'_>) {
            if pkt.protocol == IpProtocol::Icmp {
                if let Ok(IcmpMessage::EchoReply { ident: 9, .. }) =
                    IcmpMessage::decode(&pkt.payload)
                {
                    self.replies.push(pkt.src);
                }
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn ping_round_trip_through_arp() {
        let (mut sim, a, _b) = two_host_sim();
        let h = sim.spawn(
            a,
            Box::new(Pinger {
                target: Ipv4Addr::new(10, 0, 0, 2),
                replies: vec![],
            }),
        );
        sim.run_for(SimDuration::from_secs(2));
        let p = sim.process_mut::<Pinger>(h).unwrap();
        assert_eq!(p.replies, vec![Ipv4Addr::new(10, 0, 0, 2)]);
        // The exchange also populated both ARP caches.
        assert!(sim.nodes[a.0]
            .arp
            .lookup(Ipv4Addr::new(10, 0, 0, 2), sim.now())
            .is_some());
        assert!(sim.stats.arp_requests >= 1);
    }

    #[test]
    fn ping_down_host_gets_no_reply() {
        let (mut sim, a, b) = two_host_sim();
        sim.set_node_up(b, false);
        let h = sim.spawn(
            a,
            Box::new(Pinger {
                target: Ipv4Addr::new(10, 0, 0, 2),
                replies: vec![],
            }),
        );
        sim.run_for(SimDuration::from_secs(5));
        assert!(sim.process_mut::<Pinger>(h).unwrap().replies.is_empty());
    }

    #[test]
    fn no_echo_reply_when_disabled() {
        let (mut sim, a, b) = two_host_sim();
        sim.nodes[b.0].behavior.echo_reply = false;
        let h = sim.spawn(
            a,
            Box::new(Pinger {
                target: Ipv4Addr::new(10, 0, 0, 2),
                replies: vec![],
            }),
        );
        sim.run_for(SimDuration::from_secs(2));
        assert!(sim.process_mut::<Pinger>(h).unwrap().replies.is_empty());
    }

    #[test]
    fn broadcast_ping_collects_multiple_replies() {
        let (mut sim, a, _b) = two_host_sim();
        let h = sim.spawn(
            a,
            Box::new(Pinger {
                target: Ipv4Addr::new(10, 0, 0, 255),
                replies: vec![],
            }),
        );
        sim.run_for(SimDuration::from_secs(2));
        let p = sim.process_mut::<Pinger>(h).unwrap();
        assert_eq!(p.replies, vec![Ipv4Addr::new(10, 0, 0, 2)]);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let (mut sim, a, _b) = two_host_sim();
            let _ = seed; // topology fixed; vary engine seed below
            let mut sim2 = std::mem::replace(&mut sim, Sim::new(0));
            let h = sim2.spawn(
                a,
                Box::new(Pinger {
                    target: Ipv4Addr::new(10, 0, 0, 255),
                    replies: vec![],
                }),
            );
            sim2.run_for(SimDuration::from_secs(1));
            (
                sim2.stats.events_processed,
                sim2.process_mut::<Pinger>(h).unwrap().replies.clone(),
            )
        };
        assert_eq!(run(1), run(1));
    }
}
