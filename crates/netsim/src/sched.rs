//! The event core's scheduler: a hierarchical timer wheel over an
//! arena of event records.
//!
//! This replaces the engine's former `BinaryHeap<Reverse<Queued>>`.
//! The contract it must honor is strict total order: events pop in
//! ascending `(at, seq)` order, where `seq` is the engine's monotone
//! schedule counter — byte-identical telemetry across the determinism,
//! chaos, and model-checking suites depends on reproducing the heap's
//! pop order exactly.
//!
//! # Layout
//!
//! Eleven levels of 64 slots each (6 bits per level, 66 bits ≥ the
//! 64-bit microsecond clock; the top level only ever uses 16 slots).
//! A pending event at absolute time `at` lives at the level of the
//! highest bit in which `at` differs from the wheel's cursor `base`,
//! in the slot named by `at`'s 6-bit field at that level:
//!
//! ```text
//! level  = highest_differing_bit(at, base) / 6      (0 if equal)
//! slot   = (at >> 6·level) & 63
//! ```
//!
//! Slots are intrusive singly-linked lists threaded through a slab
//! arena with free-list reuse, so steady-state scheduling allocates
//! nothing. A per-level 64-bit occupancy bitmap makes "find the next
//! pending event" a few trailing-zero scans instead of a walk over
//! empty slots — that bitmap *is* the skip-ahead oracle: when the
//! earliest bound exceeds the caller's deadline, [`TimerWheel::pop_due`]
//! returns `None` without touching a single slot, and the engine jumps
//! its clock over the idle gap.
//!
//! # Tie-break contract
//!
//! Level-0 slots are one microsecond wide and level-0 entries agree
//! with `base` in every bit above the slot index, so *all records in
//! one level-0 slot share the same `at`*. Draining a due slot therefore
//! sorts only by `seq` — yielding exactly the `(at, seq)` lexicographic
//! order the `BinaryHeap` produced. Events scheduled *at the current
//! instant* while its slot is being delivered re-enter that same slot
//! with larger `seq` values and drain in a later pass, which again
//! preserves the order.
//!
//! # Cascades
//!
//! When the cursor advances into an occupied higher-level slot, that
//! slot's records re-file into lower levels ("cascade"). Each re-filed
//! record increments a counter surfaced as
//! `fremont_sim_wheel_cascades_total`. Cascading is *lazy*: a deadline
//! that falls short of the earliest bound triggers no cascade at all.
//!
//! # Arena lifetimes
//!
//! Records live in a `Vec` arena addressed by `u32` index; a freed
//! record's `next` field threads the free list. The arena never
//! shrinks — its high-water mark equals the queue-depth high-water
//! mark, a few hundred entries for the full campus.

use std::collections::VecDeque;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 11;
const NIL: u32 = u32::MAX;

struct Rec<T> {
    at: u64,
    seq: u64,
    next: u32,
    event: Option<T>,
}

/// Hierarchical timer wheel with exact `(at, seq)` pop order.
pub struct TimerWheel<T> {
    arena: Vec<Rec<T>>,
    free: u32,
    slots: [[u32; SLOTS]; LEVELS],
    occ: [u64; LEVELS],
    /// Bit `l` set iff `occ[l] != 0`; finding the lowest occupied level
    /// is one trailing-zeros count instead of a scan over all eleven.
    level_occ: u16,
    /// Cursor: every pending record's `at` is ≥ `base`.
    base: u64,
    len: u64,
    /// Drained due slot, sorted by `seq`; all entries share `ready_at`.
    ready: VecDeque<(u64, T)>,
    ready_at: u64,
    scratch: Vec<(u64, u32)>,
    cascades: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        TimerWheel {
            arena: Vec::new(),
            free: NIL,
            slots: [[NIL; SLOTS]; LEVELS],
            occ: [0; LEVELS],
            level_occ: 0,
            base: 0,
            len: 0,
            ready: VecDeque::new(),
            ready_at: 0,
            scratch: Vec::new(),
            cascades: 0,
        }
    }

    /// Pending events (drained-but-undelivered ready entries included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total records re-filed from a higher wheel level to a lower one.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    fn level_slot(&self, at: u64) -> (usize, usize) {
        let diff = at ^ self.base;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    fn link(&mut self, idx: u32) {
        let at = self.arena[idx as usize].at;
        let (level, slot) = self.level_slot(at);
        self.arena[idx as usize].next = self.slots[level][slot];
        self.slots[level][slot] = idx;
        self.occ[level] |= 1 << slot;
        self.level_occ |= 1 << level;
    }

    /// Schedules an event. `seq` must be strictly monotone across
    /// inserts and `at` must not precede any already-popped time.
    pub fn insert(&mut self, at: u64, seq: u64, event: T) {
        debug_assert!(at >= self.base, "insert into the past");
        let idx = if self.free != NIL {
            let idx = self.free;
            let rec = &mut self.arena[idx as usize];
            self.free = rec.next;
            rec.at = at;
            rec.seq = seq;
            rec.event = Some(event);
            idx
        } else {
            // The arena's high-water mark tracks queue depth (hundreds);
            // u32 indices cannot overflow before memory does.
            debug_assert!(self.arena.len() < NIL as usize, "arena overflow");
            let idx = self.arena.len() as u32;
            self.arena.push(Rec {
                at,
                seq,
                next: NIL,
                event: Some(event),
            });
            idx
        };
        self.link(idx);
        self.len += 1;
    }

    /// Pops the earliest event if its time is ≤ `deadline`; `None`
    /// means nothing is due (the queue may still hold later events).
    /// Cascades lazily: an idle gap costs a bitmap scan, not a walk.
    pub fn pop_due(&mut self, deadline: u64) -> Option<(u64, u64, T)> {
        loop {
            if !self.ready.is_empty() {
                if self.ready_at > deadline {
                    return None;
                }
                if let Some((seq, event)) = self.ready.pop_front() {
                    self.len -= 1;
                    return Some((self.ready_at, seq, event));
                }
            }
            if self.len == 0 {
                return None;
            }
            debug_assert_ne!(self.level_occ, 0, "len > 0");
            let level = self.level_occ.trailing_zeros() as usize;
            let slot = self.occ[level].trailing_zeros() as usize;
            if level == 0 {
                let at = (self.base & !(SLOTS as u64 - 1)) | slot as u64;
                if at > deadline {
                    return None;
                }
                self.base = at;
                self.drain_due_slot(slot, at);
            } else {
                // Lower bound over every record in the slot (low bits 0).
                let shift = SLOT_BITS * (level as u32 + 1);
                let bound =
                    ((self.base >> shift) << shift) | ((slot as u64) << (SLOT_BITS * level as u32));
                if bound > deadline {
                    return None;
                }
                self.base = bound;
                self.cascade_slot(level, slot);
            }
        }
    }

    /// Exact time of the earliest pending event. The global minimum
    /// always lives in the lowest occupied slot of the lowest occupied
    /// level, so this walks one short list — it never cascades, never
    /// moves the cursor, and is safe to call between inserts.
    pub fn peek_next(&self) -> Option<u64> {
        if !self.ready.is_empty() {
            return Some(self.ready_at);
        }
        if self.len == 0 {
            return None;
        }
        debug_assert_ne!(self.level_occ, 0, "len > 0");
        let level = self.level_occ.trailing_zeros() as usize;
        let slot = self.occ[level].trailing_zeros() as usize;
        let mut cur = self.slots[level][slot];
        let mut min = u64::MAX;
        while cur != NIL {
            let rec = &self.arena[cur as usize];
            min = min.min(rec.at);
            cur = rec.next;
        }
        Some(min)
    }

    /// Moves a due level-0 slot (all records share `at`) into the ready
    /// queue in ascending `seq` order, freeing the arena records.
    fn drain_due_slot(&mut self, slot: usize, at: u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut cur = self.slots[0][slot];
        self.slots[0][slot] = NIL;
        self.occ[0] &= !(1 << slot);
        if self.occ[0] == 0 {
            self.level_occ &= !1;
        }
        while cur != NIL {
            let rec = &self.arena[cur as usize];
            debug_assert_eq!(rec.at, at, "level-0 slot is one microsecond wide");
            scratch.push((rec.seq, cur));
            cur = rec.next;
        }
        scratch.sort_unstable();
        for &(seq, idx) in &scratch {
            if let Some(event) = self.arena[idx as usize].event.take() {
                self.ready.push_back((seq, event));
            }
            self.arena[idx as usize].next = self.free;
            self.free = idx;
        }
        self.ready_at = at;
        self.scratch = scratch;
    }

    /// Re-files every record of a higher-level slot against the
    /// advanced cursor; each lands at a strictly lower level.
    fn cascade_slot(&mut self, level: usize, slot: usize) {
        let mut cur = self.slots[level][slot];
        self.slots[level][slot] = NIL;
        self.occ[level] &= !(1 << slot);
        if self.occ[level] == 0 {
            self.level_occ &= !(1 << level);
        }
        while cur != NIL {
            let next = self.arena[cur as usize].next;
            self.link(cur);
            self.cascades += 1;
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The wheel must reproduce the old heap's pop order exactly, under
    /// interleaved inserts and deadline-bounded pops.
    #[test]
    fn matches_binary_heap_order() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut wheel = TimerWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for round in 0..200 {
                // Burst of inserts at assorted horizons (0 .. ~18 min).
                for _ in 0..rng.gen_range(1..20) {
                    seq += 1;
                    let delay: u64 = match rng.gen_range(0..4u32) {
                        0 => rng.gen_range(0..64),
                        1 => rng.gen_range(0..10_000),
                        2 => rng.gen_range(0..2_000_000),
                        _ => rng.gen_range(0..1_000_000_000),
                    };
                    wheel.insert(now + delay, seq, seq);
                    heap.push(Reverse((now + delay, seq)));
                }
                // Pop everything due inside a random window.
                let deadline = now + rng.gen_range(0..50_000_000u64);
                while let Some((at, s, ev)) = wheel.pop_due(deadline) {
                    let Reverse((hat, hseq)) = heap.pop().expect("heap has it too");
                    assert_eq!((at, s), (hat, hseq), "round {round} seed {seed}");
                    assert_eq!(ev, hseq);
                    assert!(at >= now, "time moves forward");
                    now = at;
                }
                if let Some(&Reverse((hat, _))) = heap.peek() {
                    assert!(hat > deadline, "wheel stopped early");
                    assert_eq!(wheel.peek_next(), Some(hat));
                }
                assert_eq!(wheel.len(), heap.len() as u64);
                now = deadline;
            }
        }
    }

    /// Same-instant events scheduled *while* that instant is being
    /// delivered must pop after the in-flight batch, in seq order.
    #[test]
    fn same_time_insert_during_delivery() {
        let mut wheel = TimerWheel::new();
        wheel.insert(100, 1, "a");
        wheel.insert(100, 2, "b");
        assert_eq!(wheel.pop_due(100), Some((100, 1, "a")));
        // "c" arrives at t=100 while t=100 is being delivered.
        wheel.insert(100, 3, "c");
        assert_eq!(wheel.pop_due(100), Some((100, 2, "b")));
        assert_eq!(wheel.pop_due(100), Some((100, 3, "c")));
        assert_eq!(wheel.pop_due(u64::MAX), None);
        assert_eq!(wheel.len(), 0);
    }

    /// A deadline short of the earliest event is a pure bitmap scan:
    /// nothing cascades, nothing pops.
    #[test]
    fn idle_gap_is_lazy() {
        let mut wheel = TimerWheel::new();
        wheel.insert(3_600_000_000, 1, ()); // one hour out
        assert_eq!(wheel.pop_due(1_000_000), None);
        assert_eq!(wheel.cascades(), 0, "no cascade below the deadline");
        assert_eq!(wheel.pop_due(3_600_000_000), Some((3_600_000_000, 1, ())));
    }

    /// Far-horizon records cascade down as the cursor approaches.
    #[test]
    fn far_timers_cascade() {
        let mut wheel = TimerWheel::new();
        wheel.insert(1u64 << 40, 1, ());
        wheel.insert((1u64 << 40) + 1, 2, ());
        assert_eq!(wheel.pop_due(u64::MAX), Some((1u64 << 40, 1, ())));
        assert!(wheel.cascades() > 0);
        assert_eq!(wheel.pop_due(u64::MAX), Some(((1u64 << 40) + 1, 2, ())));
    }

    /// The arena recycles freed records instead of growing.
    #[test]
    fn arena_reuses_freed_records() {
        let mut wheel = TimerWheel::new();
        let mut seq = 0;
        for round in 0..1_000u64 {
            for k in 0..4 {
                seq += 1;
                wheel.insert(round * 10 + k, seq, ());
            }
            while wheel.pop_due(round * 10 + 3).is_some() {}
        }
        assert!(
            wheel.arena.len() <= 8,
            "arena grew to {} for a working set of 4",
            wheel.arena.len()
        );
    }
}
