//! Traffic and simulation statistics.
//!
//! Table 4 of the paper reports per-module *network load* (packets per
//! second) and completion time; the experiment harness measures these by
//! reading segment counters before and after a module's run.

use crate::time::SimTime;

/// Per-segment traffic counters.
#[derive(Debug, Clone, Default)]
pub struct SegmentStats {
    /// Frames successfully delivered onto the wire.
    pub frames_sent: u64,
    /// Bytes in those frames.
    pub bytes_sent: u64,
    /// Frames lost to collisions or base loss.
    pub frames_lost: u64,
    /// Broadcast frames among `frames_sent`.
    pub broadcasts: u64,
    /// ARP frames among `frames_sent`.
    pub arp_frames: u64,
    /// Per-second frame counts (sparse; enabled on demand).
    buckets: Option<Vec<u32>>,
}

impl SegmentStats {
    /// Enables per-second rate buckets (costs one `u32` per sim-second).
    pub fn enable_buckets(&mut self) {
        if self.buckets.is_none() {
            self.buckets = Some(Vec::new());
        }
    }

    /// Records a delivered frame.
    pub fn record_frame(&mut self, now: SimTime, bytes: usize, broadcast: bool, arp: bool) {
        self.frames_sent += 1;
        self.bytes_sent += bytes as u64;
        if broadcast {
            self.broadcasts += 1;
        }
        if arp {
            self.arp_frames += 1;
        }
        if let Some(b) = &mut self.buckets {
            let sec = now.as_secs() as usize;
            if b.len() <= sec {
                b.resize(sec + 1, 0);
            }
            b[sec] += 1;
        }
    }

    /// Records a lost frame.
    pub fn record_loss(&mut self) {
        self.frames_lost += 1;
    }

    /// Frames delivered in the half-open sim-second interval `[from, to)`.
    ///
    /// Requires [`SegmentStats::enable_buckets`]; returns 0 otherwise.
    pub fn frames_between(&self, from: SimTime, to: SimTime) -> u64 {
        let Some(b) = &self.buckets else { return 0 };
        let lo = from.as_secs() as usize;
        let hi = (to.as_secs() as usize).min(b.len());
        if lo >= hi {
            return 0;
        }
        b[lo..hi].iter().map(|&c| u64::from(c)).sum()
    }

    /// Peak frames observed in any single second of `[from, to)`.
    pub fn peak_rate(&self, from: SimTime, to: SimTime) -> u32 {
        let Some(b) = &self.buckets else { return 0 };
        let lo = from.as_secs() as usize;
        let hi = (to.as_secs() as usize).min(b.len());
        b.get(lo..hi)
            .map(|s| s.iter().copied().max().unwrap_or(0))
            .unwrap_or(0)
    }
}

/// Whole-simulation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Events processed by the engine.
    pub events_processed: u64,
    /// IP packets originated by any node or process.
    pub packets_originated: u64,
    /// IP packets forwarded by routers.
    pub packets_forwarded: u64,
    /// ICMP error messages generated.
    pub icmp_errors: u64,
    /// ARP requests broadcast.
    pub arp_requests: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counters_accumulate() {
        let mut s = SegmentStats::default();
        s.record_frame(SimTime::ZERO, 100, true, true);
        s.record_frame(SimTime::ZERO, 60, false, false);
        s.record_loss();
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.bytes_sent, 160);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.arp_frames, 1);
        assert_eq!(s.frames_lost, 1);
    }

    #[test]
    fn buckets_disabled_by_default() {
        let mut s = SegmentStats::default();
        s.record_frame(SimTime::ZERO, 100, false, false);
        assert_eq!(s.frames_between(SimTime::ZERO, SimTime(10_000_000)), 0);
    }

    #[test]
    fn rate_buckets() {
        let mut s = SegmentStats::default();
        s.enable_buckets();
        for i in 0..10u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(500 * i);
            s.record_frame(t, 64, false, false);
        }
        // 10 frames across seconds 0..5 (2 per second).
        assert_eq!(s.frames_between(SimTime::ZERO, SimTime(5_000_000)), 10);
        assert_eq!(s.frames_between(SimTime(1_000_000), SimTime(2_000_000)), 2);
        assert_eq!(s.peak_rate(SimTime::ZERO, SimTime(5_000_000)), 2);
        // Out-of-range windows are empty.
        assert_eq!(
            s.frames_between(SimTime(50_000_000), SimTime(60_000_000)),
            0
        );
    }
}
