//! Traffic and simulation statistics.
//!
//! Table 4 of the paper reports per-module *network load* (packets per
//! second) and completion time; the experiment harness measures these by
//! reading segment counters before and after a module's run.

use crate::time::SimTime;

/// Per-segment traffic counters.
#[derive(Debug, Clone, Default)]
pub struct SegmentStats {
    /// Frames successfully delivered onto the wire.
    pub frames_sent: u64,
    /// Bytes in those frames.
    pub bytes_sent: u64,
    /// Frames lost to collisions or base loss.
    pub frames_lost: u64,
    /// Broadcast frames among `frames_sent`.
    pub broadcasts: u64,
    /// ARP frames among `frames_sent`.
    pub arp_frames: u64,
    /// Per-second frame counts, stored sparsely as ascending
    /// `(second, count)` pairs so an idle sim costs nothing: a frame
    /// after hours of silence adds one slot, not hours' worth of
    /// zeroed entries (enabled on demand).
    buckets: Option<Vec<(u64, u32)>>,
}

impl SegmentStats {
    /// Enables per-second rate buckets (costs one slot per *active*
    /// sim-second — seconds with no traffic are never materialised).
    pub fn enable_buckets(&mut self) {
        if self.buckets.is_none() {
            self.buckets = Some(Vec::new());
        }
    }

    /// Records a delivered frame.
    pub fn record_frame(&mut self, now: SimTime, bytes: usize, broadcast: bool, arp: bool) {
        self.frames_sent += 1;
        self.bytes_sent += bytes as u64;
        if broadcast {
            self.broadcasts += 1;
        }
        if arp {
            self.arp_frames += 1;
        }
        if let Some(b) = &mut self.buckets {
            let sec = now.as_secs();
            // The engine feeds monotone timestamps, so the hot path
            // is "same second as the last slot" or a pure append.
            match b.last().copied() {
                Some((s, _)) if s == sec => {
                    if let Some(last) = b.last_mut() {
                        last.1 += 1;
                    }
                }
                Some((s, _)) if s < sec => b.push((sec, 1)),
                None => b.push((sec, 1)),
                // Out-of-order (never from the engine, but the type
                // doesn't forbid it): insert at the sorted position.
                Some(_) => match b.binary_search_by_key(&sec, |&(s, _)| s) {
                    Ok(i) => b[i].1 += 1,
                    Err(i) => b.insert(i, (sec, 1)),
                },
            }
        }
    }

    /// Records a lost frame.
    pub fn record_loss(&mut self) {
        self.frames_lost += 1;
    }

    /// Frames delivered in the half-open sim-second interval `[from, to)`.
    ///
    /// Requires [`SegmentStats::enable_buckets`]; returns 0 otherwise.
    pub fn frames_between(&self, from: SimTime, to: SimTime) -> u64 {
        let Some(b) = &self.buckets else { return 0 };
        let lo = from.as_secs();
        let hi = to.as_secs();
        if lo >= hi {
            return 0;
        }
        let start = b.partition_point(|&(s, _)| s < lo);
        let end = b.partition_point(|&(s, _)| s < hi);
        b[start..end].iter().map(|&(_, c)| u64::from(c)).sum()
    }

    /// Peak frames observed in any single second of `[from, to)`.
    pub fn peak_rate(&self, from: SimTime, to: SimTime) -> u32 {
        let Some(b) = &self.buckets else { return 0 };
        let lo = from.as_secs();
        let hi = to.as_secs();
        if lo >= hi {
            return 0;
        }
        let start = b.partition_point(|&(s, _)| s < lo);
        let end = b.partition_point(|&(s, _)| s < hi);
        b[start..end].iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Number of materialised bucket slots (`None` if buckets are
    /// disabled). Exposed so tests can assert sparse storage.
    pub fn bucket_slots(&self) -> Option<usize> {
        self.buckets.as_ref().map(|b| b.len())
    }
}

/// Whole-simulation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Events processed by the engine.
    pub events_processed: u64,
    /// IP packets originated by any node or process.
    pub packets_originated: u64,
    /// IP packets forwarded by routers.
    pub packets_forwarded: u64,
    /// ICMP error messages generated.
    pub icmp_errors: u64,
    /// ARP requests broadcast.
    pub arp_requests: u64,
    /// High-water mark of the pending event queue depth.
    pub queue_depth_hwm: u64,
    /// Simulated microseconds the clock advanced without dispatching an
    /// event: inter-event gaps plus idle tails jumped to a `run_until`
    /// deadline. The timer wheel's occupancy bitmaps make each jump
    /// O(levels) regardless of the gap's length.
    pub idle_skipped_micros: u64,
}

/// Per-process packet counters, keyed by the owning process handle in
/// the engine. These feed the Table 4 `ModuleLoadReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// IP packets this process originated (accepted by the stack).
    pub packets_sent: u64,
    /// UDP/ICMP payloads delivered to this process's handlers.
    pub packets_received: u64,
    /// Frames seen through a promiscuous tap.
    pub frames_tapped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counters_accumulate() {
        let mut s = SegmentStats::default();
        s.record_frame(SimTime::ZERO, 100, true, true);
        s.record_frame(SimTime::ZERO, 60, false, false);
        s.record_loss();
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.bytes_sent, 160);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.arp_frames, 1);
        assert_eq!(s.frames_lost, 1);
    }

    #[test]
    fn buckets_disabled_by_default() {
        let mut s = SegmentStats::default();
        s.record_frame(SimTime::ZERO, 100, false, false);
        assert_eq!(s.frames_between(SimTime::ZERO, SimTime(10_000_000)), 0);
        assert_eq!(s.bucket_slots(), None);
    }

    #[test]
    fn rate_buckets() {
        let mut s = SegmentStats::default();
        s.enable_buckets();
        for i in 0..10u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(500 * i);
            s.record_frame(t, 64, false, false);
        }
        // 10 frames across seconds 0..5 (2 per second).
        assert_eq!(s.frames_between(SimTime::ZERO, SimTime(5_000_000)), 10);
        assert_eq!(s.frames_between(SimTime(1_000_000), SimTime(2_000_000)), 2);
        assert_eq!(s.peak_rate(SimTime::ZERO, SimTime(5_000_000)), 2);
        // Out-of-range windows are empty.
        assert_eq!(
            s.frames_between(SimTime(50_000_000), SimTime(60_000_000)),
            0
        );
    }

    #[test]
    fn idle_gaps_cost_no_slots() {
        let mut s = SegmentStats::default();
        s.enable_buckets();
        s.record_frame(SimTime::ZERO, 64, false, false);
        // A frame twelve hours later must not materialise 43k zeroes.
        let later = SimTime::ZERO + SimDuration::from_hours(12);
        s.record_frame(later, 64, false, false);
        assert_eq!(s.bucket_slots(), Some(2));
        assert_eq!(
            s.frames_between(SimTime::ZERO, later + SimDuration::from_secs(1)),
            2
        );
        // The idle middle reads as empty.
        assert_eq!(s.frames_between(SimTime(1_000_000), later), 0,);
        assert_eq!(
            s.peak_rate(SimTime::ZERO, later + SimDuration::from_secs(1)),
            1
        );
    }

    #[test]
    fn window_edges_are_half_open() {
        let mut s = SegmentStats::default();
        s.enable_buckets();
        s.record_frame(SimTime(2_500_000), 64, false, false); // second 2
        s.record_frame(SimTime(3_000_000), 64, false, false); // second 3
                                                              // [2, 3) includes second 2 only.
        assert_eq!(s.frames_between(SimTime(2_000_000), SimTime(3_000_000)), 1);
        // [3, 4) includes second 3 only.
        assert_eq!(s.frames_between(SimTime(3_000_000), SimTime(4_000_000)), 1);
        // Empty and inverted windows.
        assert_eq!(s.frames_between(SimTime(3_000_000), SimTime(3_000_000)), 0);
        assert_eq!(s.frames_between(SimTime(4_000_000), SimTime(3_000_000)), 0);
        assert_eq!(s.peak_rate(SimTime(3_000_000), SimTime(3_000_000)), 0);
    }

    #[test]
    fn out_of_order_records_stay_sorted() {
        let mut s = SegmentStats::default();
        s.enable_buckets();
        s.record_frame(SimTime(5_000_000), 64, false, false);
        s.record_frame(SimTime(1_000_000), 64, false, false);
        s.record_frame(SimTime(5_200_000), 64, false, false);
        s.record_frame(SimTime(1_900_000), 64, false, false);
        assert_eq!(s.bucket_slots(), Some(2));
        assert_eq!(s.frames_between(SimTime(1_000_000), SimTime(2_000_000)), 2);
        assert_eq!(s.frames_between(SimTime(5_000_000), SimTime(6_000_000)), 2);
        assert_eq!(s.peak_rate(SimTime::ZERO, SimTime(10_000_000)), 2);
    }
}
