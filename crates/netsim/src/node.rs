//! Simulated nodes: hosts and routers, with configurable (mis)behaviors.
//!
//! Every discovery result and every problem in the paper's Tables 5–8
//! traces back to some node behavior modeled here: hosts that don't answer
//! mask requests, routers with broken traceroute handling, hosts with
//! duplicate addresses or wrong masks, promiscuous RIP rebroadcasters.

use std::net::Ipv4Addr;

use fremont_net::{MacAddr, Subnet, SubnetMask};

use crate::arp_cache::ArpCache;
use crate::dns_server::DnsServerState;
use crate::routing::RoutingTable;
use crate::segment::SegmentId;
use crate::time::SimDuration;

/// A network interface on a node.
#[derive(Debug, Clone)]
pub struct Iface {
    /// MAC address.
    pub mac: MacAddr,
    /// Configured IP address.
    pub ip: Ipv4Addr,
    /// Configured subnet mask. A *misconfigured* host's mask may differ
    /// from the subnet's true mask — the "Inconsistent Network Masks"
    /// problem of Table 8.
    pub mask: SubnetMask,
    /// The segment this interface attaches to.
    pub segment: SegmentId,
}

impl Iface {
    /// The subnet implied by this interface's configuration.
    pub fn subnet(&self) -> Subnet {
        Subnet::containing(self.ip, self.mask)
    }
}

/// How a router mishandles traceroute probes (paper: "Not all routers
/// perform correctly").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TracerouteBug {
    /// Correct behavior.
    #[default]
    None,
    /// "Some hosts send their Unreachable message back to the source using
    /// the TTL field from the received packet", so the error dies en route
    /// unless the prober is adjacent.
    TtlFromReceived,
    /// Drops expiring packets without sending Time Exceeded at all.
    SilentDrop,
}

/// RIP speaker configuration.
#[derive(Debug, Clone)]
pub struct RipConfig {
    /// Advertisement interval (RFC 1058: 30 seconds).
    pub interval: SimDuration,
    /// `true` for the misconfigured hosts that "promiscuously rebroadcast
    /// all learned routing information without regard to the subnet from
    /// which that information was learned".
    pub promiscuous: bool,
    /// Apply split horizon when advertising (real routers do; promiscuous
    /// hosts by definition do not).
    pub split_horizon: bool,
}

impl Default for RipConfig {
    fn default() -> Self {
        RipConfig {
            interval: SimDuration::from_secs(30),
            promiscuous: false,
            split_horizon: true,
        }
    }
}

/// Per-node protocol behavior knobs, all defaulting to the common correct
/// 1993 configuration.
#[derive(Debug, Clone)]
pub struct Behavior {
    /// Replies to ICMP echo requests.
    pub echo_reply: bool,
    /// Replies to echo requests addressed to a broadcast address.
    pub broadcast_echo_reply: bool,
    /// Replies to ICMP mask requests ("not as widely implemented as the
    /// echo request/reply ... some implementations allow the interface to
    /// be configured not to respond").
    pub mask_reply: bool,
    /// Runs the UDP echo service on port 7.
    pub udp_echo: bool,
    /// Sends ICMP Port Unreachable for UDP to closed ports.
    pub port_unreachable: bool,
    /// Treats a packet addressed to host-zero of the local subnet as its
    /// own (4.2BSD-compatible; what the traceroute `.0` trick relies on).
    pub accept_host_zero: bool,
    /// Routers only: forwards directed-broadcast packets onto the target
    /// segment ("many gateways are configured not to broadcast packets
    /// that have a directed broadcast address as the destination").
    pub forward_directed_broadcast: bool,
    /// Routers only: answers ARP requests for these remote subnets with
    /// its own MAC (proxy ARP).
    pub proxy_arp_for: Vec<Subnet>,
    /// Routers only: traceroute misbehavior.
    pub traceroute_bug: TracerouteBug,
    /// Routers only: silently drops transit UDP probes to the traceroute
    /// port range instead of forwarding them (the "gateway software
    /// problems" that cost the paper's Traceroute module 23% of the
    /// campus subnets in Table 6).
    pub filter_udp_probes: bool,
    /// RIP speaker settings (routers advertise; a misconfigured host may
    /// too).
    pub rip: Option<RipConfig>,
}

impl Default for Behavior {
    fn default() -> Self {
        Behavior {
            echo_reply: true,
            broadcast_echo_reply: true,
            mask_reply: true,
            udp_echo: true,
            port_unreachable: true,
            accept_host_zero: true,
            forward_directed_broadcast: false,
            proxy_arp_for: Vec::new(),
            traceroute_bug: TracerouteBug::None,
            filter_udp_probes: false,
            rip: None,
        }
    }
}

/// Host or router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host: never forwards packets.
    Host,
    /// A gateway: forwards packets, decrements TTL, emits ICMP errors.
    Router,
}

/// A simulated node.
pub struct Node {
    /// Display name (also its DNS leaf label when registered).
    pub name: String,
    /// Host or router.
    pub kind: NodeKind,
    /// Interfaces (a router has one per attached subnet).
    pub ifaces: Vec<Iface>,
    /// Whether the node is powered on and connected.
    pub up: bool,
    /// The kernel ARP cache.
    pub arp: ArpCache,
    /// Routing table (hosts: connected + default; routers: full).
    pub routes: RoutingTable,
    /// Behavior knobs.
    pub behavior: Behavior,
    /// Authoritative DNS server state, when this node runs named.
    pub dns: Option<DnsServerState>,
    /// Routes learned from RIP (used by promiscuous rebroadcasters).
    ///
    /// Folding heard advertisements into this list is *deferred*: the
    /// engine queues packets on `rip_pending` and compacts them in
    /// arrival order right before anything reads the list (promiscuous
    /// advertisement building), on node-down, or when the pending queue
    /// grows past a bound. Re-applying an already-absorbed packet is a
    /// no-op (entries only min-merge and are never removed short of a
    /// full clear), so the deferral is observationally invisible.
    pub rip_learned: Vec<(Ipv4Addr, u32)>,
    /// Mutation counter for `rip_learned`, bumped whenever a compaction
    /// folds anything or the list is cleared. The engine's promiscuous
    /// advertisement template cache keys on it, mirroring how the static
    /// path keys on [`RoutingTable::version`].
    pub(crate) rip_version: u64,
    /// RIP responses heard but not yet folded into `rip_learned`.
    pub(crate) rip_pending: Vec<std::rc::Rc<fremont_net::rip::RipPacket>>,
    /// Bitset over interned advertisement identities (the engine's
    /// absorb keys) already queued or folded — repeat receipts of a
    /// byte-identical advertisement are skipped with one bit test.
    pub(crate) rip_absorbed: Vec<u64>,
    /// Signed time-of-day clock offset in microseconds (a
    /// [`crate::faults::FaultKind::ClockSkew`] fault). Kernel interval
    /// timers still fire on true simulated time; only what the node
    /// *reads as the current time* — and therefore every timestamp it
    /// attaches to emitted observations — is shifted.
    pub clock_skew: i64,
    /// Packets queued awaiting ARP resolution: `(next_hop, iface,
    /// encoded-ip-packet, queued-at)`.
    pub(crate) arp_pending: Vec<(Ipv4Addr, usize, Vec<u8>, crate::time::SimTime)>,
    /// Processes running on this node (explorer modules).
    pub(crate) procs: Vec<Option<Box<dyn crate::process::Process>>>,
}

impl Node {
    /// Creates a node with the given interfaces.
    pub fn new(name: &str, kind: NodeKind, ifaces: Vec<Iface>) -> Self {
        Node {
            name: name.to_owned(),
            kind,
            ifaces,
            up: true,
            arp: ArpCache::default(),
            routes: RoutingTable::new(),
            behavior: Behavior::default(),
            dns: None,
            rip_learned: Vec::new(),
            rip_version: 0,
            rip_pending: Vec::new(),
            rip_absorbed: Vec::new(),
            clock_skew: 0,
            arp_pending: Vec::new(),
            procs: Vec::new(),
        }
    }

    /// Tests and sets the absorb bit for `key`; returns `true` when an
    /// advertisement with this identity was already queued or folded.
    pub(crate) fn rip_absorb_test_and_set(&mut self, key: u32) -> bool {
        let word = (key / 64) as usize;
        let bit = 1u64 << (key % 64);
        if word >= self.rip_absorbed.len() {
            self.rip_absorbed.resize(word + 1, 0);
        }
        let seen = self.rip_absorbed[word] & bit != 0;
        self.rip_absorbed[word] |= bit;
        seen
    }

    /// Folds pending RIP responses into `rip_learned` in arrival order —
    /// the same min-merge the engine used to run per received packet.
    pub(crate) fn compact_rip_learned(&mut self) {
        if self.rip_pending.is_empty() {
            return;
        }
        self.rip_version += 1;
        let pending = std::mem::take(&mut self.rip_pending);
        for rip in &pending {
            for e in &rip.entries {
                if e.metric >= fremont_net::rip::METRIC_INFINITY {
                    continue;
                }
                match self.rip_learned.iter_mut().find(|(a, _)| *a == e.addr) {
                    Some((_, m)) => *m = (*m).min(e.metric),
                    None => self.rip_learned.push((e.addr, e.metric)),
                }
            }
        }
    }

    /// Forgets all RIP state (the node went down): learned routes,
    /// pending packets, and absorb bits, so a fresh boot re-learns from
    /// scratch exactly as before the deferred fold existed.
    pub(crate) fn clear_rip_state(&mut self) {
        self.rip_learned.clear();
        self.rip_version += 1;
        self.rip_pending.clear();
        self.rip_absorbed.clear();
    }

    /// Finds the interface index carrying `ip`.
    pub fn iface_with_ip(&self, ip: Ipv4Addr) -> Option<usize> {
        self.ifaces.iter().position(|i| i.ip == ip)
    }

    /// Finds the interface index attached to `segment`.
    pub fn iface_on_segment(&self, segment: SegmentId) -> Option<usize> {
        self.ifaces.iter().position(|i| i.segment == segment)
    }

    /// Returns `true` when `dst` should be delivered locally on `iface`.
    ///
    /// Local delivery covers: any of our interface addresses, the limited
    /// broadcast, the receiving interface's directed broadcast (per its
    /// *configured* mask), and — when `accept_host_zero` — the receiving
    /// subnet's host-zero address.
    pub fn is_local_dst(&self, dst: Ipv4Addr, iface: usize) -> bool {
        if self.ifaces.iter().any(|i| i.ip == dst) {
            return true;
        }
        if dst == Ipv4Addr::BROADCAST {
            return true;
        }
        let sub = self.ifaces[iface].subnet();
        if dst == sub.directed_broadcast() {
            return true;
        }
        // Host-zero acceptance: a packet addressed to host zero of any
        // *connected* subnet is treated as addressed to this node (the
        // 4.2BSD behavior the traceroute `.0` trick exploits; for routers
        // this covers all attached subnets).
        if self.behavior.accept_host_zero
            && self.ifaces.iter().any(|i| dst == i.subnet().host_zero())
        {
            return true;
        }
        false
    }

    /// Returns `true` when `dst` is a broadcast from this node's viewpoint
    /// on `iface` (governs whether echo replies use the broadcast policy).
    pub fn dst_is_broadcast(&self, dst: Ipv4Addr, iface: usize) -> bool {
        dst == Ipv4Addr::BROADCAST || dst == self.ifaces[iface].subnet().directed_broadcast()
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("up", &self.up)
            .field("ifaces", &self.ifaces)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_node() -> Node {
        Node::new(
            "bruno",
            NodeKind::Host,
            vec![Iface {
                mac: MacAddr::new([8, 0, 0x20, 0, 0, 1]),
                ip: Ipv4Addr::new(128, 138, 243, 18),
                mask: SubnetMask::from_prefix_len(24).unwrap(),
                segment: SegmentId(0),
            }],
        )
    }

    #[test]
    fn iface_subnet() {
        let n = test_node();
        assert_eq!(n.ifaces[0].subnet(), "128.138.243.0/24".parse().unwrap());
    }

    #[test]
    fn local_destinations() {
        let n = test_node();
        assert!(n.is_local_dst(Ipv4Addr::new(128, 138, 243, 18), 0));
        assert!(n.is_local_dst(Ipv4Addr::BROADCAST, 0));
        assert!(n.is_local_dst(Ipv4Addr::new(128, 138, 243, 255), 0));
        assert!(
            n.is_local_dst(Ipv4Addr::new(128, 138, 243, 0), 0),
            "host zero"
        );
        assert!(!n.is_local_dst(Ipv4Addr::new(128, 138, 243, 19), 0));
        assert!(!n.is_local_dst(Ipv4Addr::new(128, 138, 244, 255), 0));
    }

    #[test]
    fn host_zero_can_be_disabled() {
        let mut n = test_node();
        n.behavior.accept_host_zero = false;
        assert!(!n.is_local_dst(Ipv4Addr::new(128, 138, 243, 0), 0));
    }

    #[test]
    fn broadcast_classification() {
        let n = test_node();
        assert!(n.dst_is_broadcast(Ipv4Addr::BROADCAST, 0));
        assert!(n.dst_is_broadcast(Ipv4Addr::new(128, 138, 243, 255), 0));
        assert!(!n.dst_is_broadcast(Ipv4Addr::new(128, 138, 243, 18), 0));
    }

    #[test]
    fn misconfigured_mask_changes_broadcast_view() {
        let mut n = test_node();
        // Host wrongly thinks it is on a /16: it will treat the /24
        // broadcast as a normal (non-local) address.
        n.ifaces[0].mask = SubnetMask::from_prefix_len(16).unwrap();
        assert!(!n.dst_is_broadcast(Ipv4Addr::new(128, 138, 243, 255), 0));
        assert!(n.dst_is_broadcast(Ipv4Addr::new(128, 138, 255, 255), 0));
    }

    #[test]
    fn iface_lookups() {
        let n = test_node();
        assert_eq!(n.iface_with_ip(Ipv4Addr::new(128, 138, 243, 18)), Some(0));
        assert_eq!(n.iface_with_ip(Ipv4Addr::new(1, 1, 1, 1)), None);
        assert_eq!(n.iface_on_segment(SegmentId(0)), Some(0));
        assert_eq!(n.iface_on_segment(SegmentId(9)), None);
    }
}
