//! Processes: event-driven programs running on simulated hosts.
//!
//! Fremont's Explorer Modules are implemented as [`Process`]es: they are
//! started on a host, receive timers, see every IP packet the host
//! receives (the raw-socket view a privileged SunOS process had), and —
//! when they enable the tap — every frame on the attached segment (the
//! Network Interface Tap the paper's passive modules use). They interact
//! with the network only through [`crate::engine::ProcCtx`], so a module
//! cannot cheat by peeking at simulator state it could not observe in
//! reality.

use std::any::Any;
use std::net::Ipv4Addr;

use fremont_net::{EthernetFrame, Ipv4Packet, MacAddr, Subnet, SubnetMask};

use crate::engine::ProcCtx;
use crate::segment::NodeId;

/// Handle to a spawned process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcHandle {
    /// The node the process runs on.
    pub node: NodeId,
    /// Slot index within the node.
    pub idx: usize,
}

/// A view of one local interface, as a process sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfaceInfo {
    /// Interface index on the node.
    pub index: usize,
    /// MAC address.
    pub mac: MacAddr,
    /// Configured IP address.
    pub ip: Ipv4Addr,
    /// Configured subnet mask.
    pub mask: SubnetMask,
}

impl IfaceInfo {
    /// The local subnet per the configured mask.
    pub fn subnet(&self) -> Subnet {
        Subnet::containing(self.ip, self.mask)
    }
}

/// An event-driven program on a simulated node.
///
/// All methods have empty defaults so a module only implements what it
/// uses. `as_any_mut` enables the driver to downcast a finished module and
/// read its results.
pub trait Process: 'static {
    /// Called once when the process is spawned.
    fn on_start(&mut self, _ctx: &mut ProcCtx<'_>) {}

    /// Called when a timer set via [`ProcCtx::set_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut ProcCtx<'_>) {}

    /// Called for every IP packet delivered locally to the host.
    fn on_ip(&mut self, _pkt: &Ipv4Packet, _ctx: &mut ProcCtx<'_>) {}

    /// Called for every frame on the tapped segment (after
    /// [`ProcCtx::enable_tap`]).
    fn on_tap(&mut self, _frame: &EthernetFrame, _ctx: &mut ProcCtx<'_>) {}

    /// Returns `true` once the process has finished its work.
    fn done(&self) -> bool {
        false
    }

    /// Downcasting support for result extraction.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iface_info_subnet() {
        let info = IfaceInfo {
            index: 0,
            mac: MacAddr::new([8, 0, 0x20, 0, 0, 1]),
            ip: Ipv4Addr::new(128, 138, 243, 18),
            mask: SubnetMask::from_prefix_len(24).unwrap(),
        };
        assert_eq!(info.subnet(), "128.138.243.0/24".parse().unwrap());
    }
}
