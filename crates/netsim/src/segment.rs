//! Shared network segments (Ethernets) with a collision model.
//!
//! Each segment is a broadcast medium: every frame reaches every attached
//! interface (and every tap). The collision model captures the paper's
//! Broadcast Ping observation — "closely spaced replies can cause many
//! collisions", giving a "brief flood of ICMP Echo Reply packets (that)
//! usually results in lost packets, including both ICMP Echo Replies and
//! normal traffic".

use std::collections::VecDeque;

use crate::stats::SegmentStats;
use crate::time::{SimDuration, SimTime};

/// Identifier of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub usize);

/// Identifier of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Collision-model parameters.
///
/// When more than `free_slots` frames hit the segment within `window`,
/// each additional concurrent frame adds `loss_per_extra` to the drop
/// probability, capped at `max_loss`.
///
/// The window approximates an Ethernet slot time: only *near-simultaneous*
/// transmissions contend (CSMA/CD defers cleanly on serial
/// request/response chains, whose frames are spaced by propagation +
/// processing latency). Defaults are calibrated so that ~56 broadcast-ping
/// replies bunched into a 30 ms burst lose roughly a quarter of the
/// responders (Table 5: 42 of 56 interfaces, "Collisions") while ordinary
/// serial exchanges never collide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionModel {
    /// Contention window.
    pub window: SimDuration,
    /// Frames per window that never collide.
    pub free_slots: usize,
    /// Added drop probability per extra concurrent frame.
    pub loss_per_extra: f64,
    /// Upper bound on the drop probability.
    pub max_loss: f64,
}

impl Default for CollisionModel {
    fn default() -> Self {
        CollisionModel {
            window: SimDuration::from_micros(150),
            free_slots: 1,
            loss_per_extra: 0.055,
            max_loss: 0.85,
        }
    }
}

impl CollisionModel {
    /// A lossless medium (useful in unit tests).
    pub fn none() -> Self {
        CollisionModel {
            window: SimDuration::ZERO,
            free_slots: usize::MAX,
            loss_per_extra: 0.0,
            max_loss: 0.0,
        }
    }

    /// Drop probability given `concurrent` frames in the current window.
    pub fn drop_probability(&self, concurrent: usize) -> f64 {
        if concurrent <= self.free_slots {
            0.0
        } else {
            ((concurrent - self.free_slots) as f64 * self.loss_per_extra).min(self.max_loss)
        }
    }
}

/// Static configuration of a segment.
#[derive(Debug, Clone)]
pub struct SegmentCfg {
    /// Human-readable name ("cs-net", "backbone", ...).
    pub name: String,
    /// One-way propagation + queueing latency per frame.
    pub latency: SimDuration,
    /// Random additional latency bound (uniform in `0..jitter`).
    pub jitter: SimDuration,
    /// Base random frame loss probability (bit errors etc.).
    pub base_loss: f64,
    /// Collision behavior under load.
    pub collisions: CollisionModel,
    /// Maximum frame payload (MTU).
    pub mtu: usize,
}

impl Default for SegmentCfg {
    fn default() -> Self {
        SegmentCfg {
            name: "ether".to_owned(),
            latency: SimDuration::from_micros(200),
            jitter: SimDuration::from_micros(300),
            base_loss: 0.0,
            collisions: CollisionModel::default(),
            mtu: 1500,
        }
    }
}

impl SegmentCfg {
    /// A named default-configured Ethernet.
    pub fn named(name: &str) -> Self {
        SegmentCfg {
            name: name.to_owned(),
            ..Default::default()
        }
    }
}

/// Runtime state of a segment.
#[derive(Debug)]
pub struct Segment {
    /// Configuration.
    pub cfg: SegmentCfg,
    /// Attached `(node, interface-index)` pairs.
    pub attached: Vec<(NodeId, usize)>,
    /// Recent transmissions (for the collision window).
    recent: VecDeque<SimTime>,
    /// Traffic statistics.
    pub stats: SegmentStats,
    /// True while a [`crate::faults::FaultKind::Partition`] is in effect:
    /// the wire is cut and every offered frame is dropped.
    pub partitioned: bool,
    /// Additional independent loss probability from an active
    /// [`crate::faults::FaultKind::Degrade`] window (0.0 when healthy).
    pub fault_loss: f64,
    /// Additional per-frame latency from an active degrade window.
    pub fault_latency: SimDuration,
}

impl Segment {
    /// Creates a segment from its configuration.
    pub fn new(cfg: SegmentCfg) -> Self {
        Segment {
            cfg,
            attached: Vec::new(),
            recent: VecDeque::new(),
            stats: SegmentStats::default(),
            partitioned: false,
            fault_loss: 0.0,
            fault_latency: SimDuration::ZERO,
        }
    }

    /// Records a transmission at `now` and returns the number of frames in
    /// the current contention window (including this one).
    pub fn record_transmission(&mut self, now: SimTime) -> usize {
        let window = self.cfg.collisions.window;
        while let Some(&front) = self.recent.front() {
            if now.since(front) > window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        self.recent.push_back(now);
        self.recent.len()
    }

    /// The drop probability for a frame sent at `now` (base loss plus
    /// collision loss plus any active fault-degrade loss); also updates
    /// the contention window.
    pub fn loss_probability(&mut self, now: SimTime) -> f64 {
        let concurrent = self.record_transmission(now);
        let collision = self.cfg.collisions.drop_probability(concurrent);
        // Independent loss sources combine as 1 - (1-a)(1-b). With
        // fault_loss at its healthy 0.0 the extra factor is exactly 1.0,
        // so fault-free arithmetic is bit-identical to the pre-fault code.
        1.0 - (1.0 - self.cfg.base_loss) * (1.0 - collision) * (1.0 - self.fault_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_model_probabilities() {
        let m = CollisionModel::default();
        assert_eq!(m.drop_probability(1), 0.0);
        assert!(m.drop_probability(3) > 0.0);
        assert!(m.drop_probability(10) > 0.0);
        assert!(m.drop_probability(100) <= m.max_loss);
        assert_eq!(CollisionModel::none().drop_probability(10_000), 0.0);
    }

    #[test]
    fn contention_window_expires() {
        let mut s = Segment::new(SegmentCfg::default());
        let t0 = SimTime::ZERO;
        assert_eq!(s.record_transmission(t0), 1);
        assert_eq!(s.record_transmission(t0 + SimDuration::from_micros(10)), 2);
        assert_eq!(s.record_transmission(t0 + SimDuration::from_micros(20)), 3);
        // Past the window, old transmissions are forgotten.
        let late = t0 + SimDuration::from_millis(5);
        assert_eq!(s.record_transmission(late), 1);
    }

    #[test]
    fn serial_exchange_never_collides() {
        // A request/response chain spaces frames by at least the segment
        // latency (200us) — beyond the slot-time window.
        let mut s = Segment::new(SegmentCfg::default());
        for i in 0..20u64 {
            let t = SimTime::ZERO + SimDuration::from_micros(i * 200);
            assert_eq!(s.loss_probability(t), 0.0, "frame {i}");
        }
    }

    #[test]
    fn loss_probability_combines_base_and_collision() {
        let cfg = SegmentCfg {
            base_loss: 0.5,
            collisions: CollisionModel::none(),
            ..SegmentCfg::default()
        };
        let mut s = Segment::new(cfg);
        assert!((s.loss_probability(SimTime::ZERO) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quiet_default_segment_is_lossless() {
        let mut s = Segment::new(SegmentCfg::default());
        // Sparse traffic never collides.
        for i in 0..10 {
            let t = SimTime::ZERO + SimDuration::from_millis(10 * i);
            assert_eq!(s.loss_probability(t), 0.0);
        }
    }

    #[test]
    fn burst_raises_loss() {
        let mut s = Segment::new(SegmentCfg::default());
        let mut last = 0.0;
        for i in 0..56 {
            let t = SimTime::ZERO + SimDuration::from_micros(i * 10);
            last = s.loss_probability(t);
        }
        assert!(last > 0.2, "56-reply burst should lose packets, got {last}");
        assert!(last <= 0.85);
    }

    #[test]
    fn moderate_burst_loses_some() {
        // ~1 frame per 90us (a broadcast-ping reply storm density).
        let mut s = Segment::new(SegmentCfg::default());
        let mut lossy = 0;
        for i in 0..100u64 {
            let t = SimTime::ZERO + SimDuration::from_micros(i * 90);
            if s.loss_probability(t) > 0.0 {
                lossy += 1;
            }
        }
        assert!(lossy > 10, "storm density must contend, got {lossy}");
    }
}
