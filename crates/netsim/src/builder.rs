//! Declarative topology construction.
//!
//! Experiments describe a campus as segments (each with a true subnet),
//! hosts, and routers; the builder assigns MAC addresses, derives every
//! routing table by shortest path over the segment/router graph (hop
//! metrics, as RIP would converge to), and returns the built [`Sim`] plus
//! a [`Topology`] "ground truth" that experiments compare discovery
//! results against (the "% of Total" columns of Tables 5 and 6).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use fremont_net::{MacAddr, Subnet, SubnetMask};

use crate::engine::Sim;
use crate::faults::FaultPlan;
use crate::node::{Behavior, Iface, Node, NodeKind, RipConfig};
use crate::routing::Route;
use crate::segment::{NodeId, SegmentCfg, SegmentId};

/// Builder-side segment description.
pub struct SegmentSpec {
    /// Runtime configuration.
    pub cfg: SegmentCfg,
    /// The true subnet of the segment.
    pub subnet: Subnet,
}

/// Builder-side host description.
pub struct HostSpec {
    /// Node name.
    pub name: String,
    /// Attachment segment (builder index).
    pub segment: usize,
    /// Full IP address.
    pub ip: Ipv4Addr,
    /// Configured mask (defaults to the segment's true mask; set another
    /// value to model a misconfigured host).
    pub mask: SubnetMask,
    /// Behavior knobs.
    pub behavior: Behavior,
    /// Forced MAC (defaults to an auto-assigned vendor MAC). Set two hosts
    /// to the same *IP* (not MAC) to model duplicate addresses.
    pub mac: Option<MacAddr>,
}

/// Builder-side router description.
pub struct RouterSpec {
    /// Node name.
    pub name: String,
    /// `(segment index, ip)` attachments.
    pub attachments: Vec<(usize, Ipv4Addr)>,
    /// Behavior knobs (RIP defaults to on for routers).
    pub behavior: Behavior,
}

/// Handle to a host spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostIdx(pub usize);

/// Handle to a router spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterIdx(pub usize);

/// The ground-truth picture of a built topology.
pub struct Topology {
    /// Node ids by name.
    pub nodes_by_name: HashMap<String, NodeId>,
    /// `(segment id, true subnet, name)` for every segment.
    pub segments: Vec<(SegmentId, Subnet, String)>,
    /// Host node ids in builder order.
    pub hosts: Vec<NodeId>,
    /// Router node ids in builder order.
    pub routers: Vec<NodeId>,
    /// Every interface IP that exists, with its owning node.
    pub interfaces: Vec<(Ipv4Addr, NodeId)>,
}

impl Topology {
    /// The true subnet of the segment a node's first interface is on.
    pub fn subnet_of(&self, seg: SegmentId) -> Option<Subnet> {
        self.segments
            .iter()
            .find(|(id, _, _)| *id == seg)
            .map(|(_, s, _)| *s)
    }

    /// Number of interfaces whose address lies in `subnet`.
    pub fn interfaces_in(&self, subnet: Subnet) -> usize {
        self.interfaces
            .iter()
            .filter(|(ip, _)| subnet.contains(*ip))
            .count()
    }
}

/// Declarative topology builder.
pub struct TopologyBuilder {
    segments: Vec<SegmentSpec>,
    hosts: Vec<HostSpec>,
    routers: Vec<RouterSpec>,
    mac_counter: u32,
    fault_plan: FaultPlan,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            segments: Vec::new(),
            hosts: Vec::new(),
            routers: Vec::new(),
            mac_counter: 0,
            fault_plan: FaultPlan::default(),
        }
    }

    /// Installs a fault plan that [`TopologyBuilder::build`] schedules
    /// on the finished simulator. The default (empty) plan is a strict
    /// no-op: see [`Sim::install_fault_plan`].
    pub fn faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = plan;
        self
    }

    /// Adds a segment with its true subnet.
    pub fn segment(&mut self, name: &str, subnet: &str) -> usize {
        self.segment_net(name, subnet.parse().expect("valid subnet literal"))
    }

    /// Adds a segment with an already-constructed subnet (no literal
    /// parsing — the campus generator builds hundreds of these).
    pub fn segment_net(&mut self, name: &str, subnet: Subnet) -> usize {
        self.segments.push(SegmentSpec {
            cfg: SegmentCfg::named(name),
            subnet,
        });
        self.segments.len() - 1
    }

    /// Mutable access to a segment spec (latency, loss, collisions).
    pub fn segment_mut(&mut self, idx: usize) -> &mut SegmentSpec {
        &mut self.segments[idx]
    }

    /// Adds a host at host-number `n` on a segment.
    pub fn host(&mut self, name: &str, segment: usize, n: u32) -> HostIdx {
        let subnet = self.segments[segment].subnet;
        let ip = subnet.nth(n).expect("host number fits subnet");
        self.host_at(name, segment, ip)
    }

    /// Adds a host with an explicit IP address.
    pub fn host_at(&mut self, name: &str, segment: usize, ip: Ipv4Addr) -> HostIdx {
        let mask = self.segments[segment].subnet.mask();
        self.hosts.push(HostSpec {
            name: name.to_owned(),
            segment,
            ip,
            mask,
            behavior: Behavior::default(),
            mac: None,
        });
        HostIdx(self.hosts.len() - 1)
    }

    /// Mutable access to a host spec.
    pub fn host_mut(&mut self, h: HostIdx) -> &mut HostSpec {
        &mut self.hosts[h.0]
    }

    /// Adds a router attached at host-number `n` on each listed segment.
    pub fn router(&mut self, name: &str, attachments: &[(usize, u32)]) -> RouterIdx {
        let attachments: Vec<(usize, Ipv4Addr)> = attachments
            .iter()
            .map(|&(seg, n)| {
                let ip = self.segments[seg]
                    .subnet
                    .nth(n)
                    .expect("attachment number fits subnet");
                (seg, ip)
            })
            .collect();
        let behavior = Behavior {
            rip: Some(RipConfig::default()),
            ..Behavior::default()
        };
        self.routers.push(RouterSpec {
            name: name.to_owned(),
            attachments,
            behavior,
        });
        RouterIdx(self.routers.len() - 1)
    }

    /// Mutable access to a router spec.
    pub fn router_mut(&mut self, r: RouterIdx) -> &mut RouterSpec {
        &mut self.routers[r.0]
    }

    fn next_mac(&mut self, router: bool) -> MacAddr {
        // Hosts draw from workstation vendors; routers look like Cisco or
        // Proteon boxes — so `MacAddr::vendor` reports plausibly.
        const HOST_OUIS: [[u8; 3]; 4] = [
            [0x08, 0x00, 0x20], // Sun
            [0x08, 0x00, 0x2b], // DEC
            [0x08, 0x00, 0x09], // HP
            [0x00, 0x60, 0x8c], // 3Com
        ];
        const ROUTER_OUIS: [[u8; 3]; 2] = [
            [0x00, 0x00, 0x0c], // Cisco
            [0x00, 0x00, 0x93], // Proteon
        ];
        let n = self.mac_counter;
        self.mac_counter += 1;
        let oui = if router {
            ROUTER_OUIS[(n as usize) % ROUTER_OUIS.len()]
        } else {
            HOST_OUIS[(n as usize) % HOST_OUIS.len()]
        };
        MacAddr::new([
            oui[0],
            oui[1],
            oui[2],
            (n >> 16) as u8,
            (n >> 8) as u8,
            n as u8,
        ])
    }

    /// Builds the simulator and ground truth.
    ///
    /// # Panics
    ///
    /// Panics when two interfaces share a MAC (a builder bug), but NOT on
    /// duplicate IPs — those are a legitimate fault to model.
    pub fn build(mut self, seed: u64) -> (Sim, Topology) {
        let mut sim = Sim::new(seed);

        // Segments.
        let segment_specs = std::mem::take(&mut self.segments);
        let mut seg_ids = Vec::with_capacity(segment_specs.len());
        let mut seg_meta = Vec::with_capacity(segment_specs.len());
        for spec in segment_specs {
            let name = spec.cfg.name.clone();
            let id = sim.add_segment(spec.cfg);
            seg_ids.push(id);
            seg_meta.push((id, spec.subnet, name));
        }
        let seg_subnets: Vec<Subnet> = seg_meta.iter().map(|(_, s, _)| *s).collect();

        // Distance from every segment to every segment through routers.
        let dist = segment_distances(seg_subnets.len(), &self.routers);

        let router_specs = std::mem::take(&mut self.routers);
        let total_ifaces: usize = router_specs
            .iter()
            .map(|r| r.attachments.len())
            .sum::<usize>()
            + self.hosts.len();
        let mut nodes_by_name = HashMap::with_capacity(router_specs.len() + self.hosts.len());
        let mut interfaces = Vec::with_capacity(total_ifaces);

        // Routers first (hosts need their addresses for default routes).
        let mut router_ids = Vec::with_capacity(router_specs.len());
        // Router-by-segment map (with the attachment address) for
        // next-hop resolution.
        let mut routers_on_seg: Vec<Vec<(usize, Ipv4Addr)>> = vec![Vec::new(); seg_subnets.len()];
        for (ri, spec) in router_specs.iter().enumerate() {
            for (seg, ip) in &spec.attachments {
                routers_on_seg[*seg].push((ri, *ip));
            }
        }
        // Each router's best distance to each segment over any of its
        // attachments, shared by every `router_routes` call below.
        let router_min_dist: Vec<Vec<u32>> = router_specs
            .iter()
            .map(|r| {
                (0..seg_subnets.len())
                    .map(|t| {
                        r.attachments
                            .iter()
                            .map(|(s, _)| dist[*s][t])
                            .min()
                            .unwrap_or(u32::MAX)
                    })
                    .collect()
            })
            .collect();
        let next_hop = next_hop_candidates(&routers_on_seg, &router_min_dist, seg_subnets.len());
        for (ri, spec) in router_specs.iter().enumerate() {
            let ifaces: Vec<Iface> = spec
                .attachments
                .iter()
                .map(|&(seg, ip)| Iface {
                    mac: self.next_mac(true),
                    ip,
                    mask: seg_subnets[seg].mask(),
                    segment: seg_ids[seg],
                })
                .collect();
            let mut node = Node::new(&spec.name, NodeKind::Router, ifaces);
            node.behavior = spec.behavior.clone();
            node.routes = router_routes(ri, spec, &dist, &seg_subnets, &next_hop);
            for (i, (_, ip)) in spec.attachments.iter().enumerate() {
                let _ = i;
                interfaces.push((*ip, NodeId(sim.nodes.len())));
            }
            let id = sim.add_node(node);
            nodes_by_name.insert(spec.name.clone(), id);
            router_ids.push(id);
        }

        // Hosts.
        let host_specs = std::mem::take(&mut self.hosts);
        let mut host_ids = Vec::with_capacity(host_specs.len());
        let default_dest: Subnet = "0.0.0.0/0".parse().expect("default route literal");
        for spec in &host_specs {
            let mac = spec.mac.unwrap_or_else(|| self.next_mac(false));
            let iface = Iface {
                mac,
                ip: spec.ip,
                mask: spec.mask,
                segment: seg_ids[spec.segment],
            };
            let mut node = Node::new(&spec.name, NodeKind::Host, vec![iface]);
            node.behavior = spec.behavior.clone();
            // Connected route (per the *configured* mask: a host with a
            // wrong mask really does route wrongly).
            node.routes.add(Route {
                dest: Subnet::containing(spec.ip, spec.mask),
                gateway: None,
                iface: 0,
                metric: 0,
            });
            // Default route through the first router on the segment.
            if let Some(&(_, gw_ip)) = routers_on_seg[spec.segment].first() {
                node.routes.add(Route {
                    dest: default_dest,
                    gateway: Some(gw_ip),
                    iface: 0,
                    metric: 1,
                });
            }
            interfaces.push((spec.ip, NodeId(sim.nodes.len())));
            let id = sim.add_node(node);
            nodes_by_name.insert(spec.name.clone(), id);
            host_ids.push(id);
        }

        // MAC uniqueness sanity check.
        let mut macs: Vec<MacAddr> = Vec::with_capacity(total_ifaces);
        macs.extend(
            sim.nodes
                .iter()
                .flat_map(|n| n.ifaces.iter().map(|i| i.mac)),
        );
        macs.sort();
        macs.dedup();
        let total: usize = sim.nodes.iter().map(|n| n.ifaces.len()).sum();
        assert_eq!(macs.len(), total, "duplicate MAC assigned by builder");

        let topo = Topology {
            nodes_by_name,
            segments: seg_meta,
            hosts: host_ids,
            routers: router_ids,
            interfaces,
        };
        // Installed last: all node/segment names the plan addresses exist.
        let plan = std::mem::take(&mut self.fault_plan);
        sim.install_fault_plan(&plan);
        (sim, topo)
    }
}

/// BFS distances between segments through routers: `dist[a][b]` = number
/// of routers crossed going from segment `a` to segment `b`.
fn segment_distances(n_segments: usize, routers: &[RouterSpec]) -> Vec<Vec<u32>> {
    const INF: u32 = u32::MAX;
    // Segment adjacency first: two segments co-attached to one router are
    // one hop apart. BFS over this list instead of rescanning every
    // router's attachments per frontier segment per source.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_segments];
    for r in routers {
        for (i, (a, _)) in r.attachments.iter().enumerate() {
            for (j, (b, _)) in r.attachments.iter().enumerate() {
                if i != j {
                    adj[*a].push(*b);
                }
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let mut dist = vec![vec![INF; n_segments]; n_segments];
    for target in 0..n_segments {
        // BFS from `target` outward.
        let mut d = vec![INF; n_segments];
        d[target] = 0;
        let mut frontier = vec![target];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &seg in &frontier {
                for &other in &adj[seg] {
                    if d[other] == INF {
                        d[other] = d[seg] + 1;
                        next.push(other);
                    }
                }
            }
            frontier = next;
        }
        for s in 0..n_segments {
            dist[s][target] = d[s];
        }
    }
    dist
}

/// A next-hop candidate: `(router index, its best distance to the
/// target, its address on the shared segment)`.
type HopCand = Option<(usize, u32, Ipv4Addr)>;

/// For every `(segment, target)` pair, the first-minimal next-hop
/// candidate on that segment (in `routers_on_seg` order — exactly what a
/// `min_by_key` scan would keep) plus the first-minimal among candidates
/// from a *different* router. Together these answer "best candidate
/// strictly closer than me, excluding myself" for any asking router: if
/// the overall winner is someone else it is also the winner with the
/// asker excluded (removing later or equal-keyed earlier entries cannot
/// change a first minimum), and if the winner is the asker itself the
/// runner-up is by construction the winner among everyone else.
fn next_hop_candidates(
    routers_on_seg: &[Vec<(usize, Ipv4Addr)>],
    router_min_dist: &[Vec<u32>],
    n_segments: usize,
) -> Vec<Vec<(HopCand, HopCand)>> {
    let mut out = vec![vec![(None, None); n_segments]; n_segments];
    for (seg, cands) in routers_on_seg.iter().enumerate() {
        if cands.is_empty() {
            continue;
        }
        for target in 0..n_segments {
            let mut first: HopCand = None;
            for &(ri, ip) in cands {
                let od = router_min_dist[ri][target];
                if first.map(|(_, b, _)| od < b).unwrap_or(true) {
                    first = Some((ri, od, ip));
                }
            }
            let winner = first.map(|(r, _, _)| r);
            let mut second: HopCand = None;
            for &(ri, ip) in cands {
                if Some(ri) == winner {
                    continue;
                }
                let od = router_min_dist[ri][target];
                if second.map(|(_, b, _)| od < b).unwrap_or(true) {
                    second = Some((ri, od, ip));
                }
            }
            out[seg][target] = (first, second);
        }
    }
    out
}

/// Computes a router's full routing table toward every segment, using
/// the precomputed [`next_hop_candidates`] answers. Route contents and
/// tie-breaks are identical to the direct per-router scan this replaces.
fn router_routes(
    ri: usize,
    me: &RouterSpec,
    dist: &[Vec<u32>],
    seg_subnets: &[Subnet],
    next_hop: &[Vec<(HopCand, HopCand)>],
) -> crate::routing::RoutingTable {
    const INF: u32 = u32::MAX;
    let mut table = crate::routing::RoutingTable::new();
    table.reserve(seg_subnets.len());
    for (target, &subnet) in seg_subnets.iter().enumerate() {
        // Directly connected?
        if let Some(pos) = me.attachments.iter().position(|(s, _)| *s == target) {
            table.add_distinct(Route {
                dest: subnet,
                gateway: None,
                iface: pos,
                metric: 0,
            });
            continue;
        }
        // Choose the attachment minimizing distance to the target.
        let mut best: Option<(usize, u32, usize)> = None; // (iface pos, dist, via seg)
        for (pos, (seg, _)) in me.attachments.iter().enumerate() {
            let d = dist[*seg][target];
            if d != INF && best.map(|(_, bd, _)| d < bd).unwrap_or(true) {
                best = Some((pos, d, *seg));
            }
        }
        let Some((pos, d, via_seg)) = best else {
            continue; // Unreachable segment: no route (ICMP net unreachable).
        };
        // Next hop: a router on `via_seg` strictly closer to the target.
        let (first, second) = next_hop[via_seg][target];
        let cand = match first {
            Some((r1, od, ip)) if r1 != ri => Some((od, ip)),
            _ => second.map(|(_, od, ip)| (od, ip)),
        };
        if let Some((_, gw)) = cand.filter(|&(od, _)| od < d) {
            table.add_distinct(Route {
                dest: subnet,
                gateway: Some(gw),
                iface: pos,
                metric: d,
            });
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three segments in a line: A --r1-- B --r2-- C.
    fn line_topology() -> (Sim, Topology) {
        let mut b = TopologyBuilder::new();
        let a = b.segment("net-a", "10.0.1.0/24");
        let bb = b.segment("net-b", "10.0.2.0/24");
        let c = b.segment("net-c", "10.0.3.0/24");
        b.host("ha", a, 10);
        b.host("hc", c, 10);
        b.router("r1", &[(a, 1), (bb, 1)]);
        b.router("r2", &[(bb, 2), (c, 1)]);
        b.build(42)
    }

    #[test]
    fn routing_tables_cover_reachable_segments() {
        let (sim, topo) = line_topology();
        let r1 = topo.nodes_by_name["r1"];
        let table = &sim.nodes[r1.0].routes;
        // r1 reaches all three subnets.
        assert!(table.lookup("10.0.1.5".parse().unwrap()).is_some());
        assert!(table.lookup("10.0.2.5".parse().unwrap()).is_some());
        let to_c = table.lookup("10.0.3.5".parse().unwrap()).unwrap();
        assert_eq!(to_c.gateway, Some("10.0.2.2".parse().unwrap()), "via r2");
        assert_eq!(to_c.metric, 1);
    }

    #[test]
    fn hosts_get_default_route() {
        let (sim, topo) = line_topology();
        let ha = topo.nodes_by_name["ha"];
        let table = &sim.nodes[ha.0].routes;
        let r = table.lookup("10.0.3.10".parse().unwrap()).unwrap();
        assert_eq!(r.gateway, Some("10.0.1.1".parse().unwrap()));
    }

    #[test]
    fn ground_truth_counts() {
        let (_, topo) = line_topology();
        assert_eq!(topo.hosts.len(), 2);
        assert_eq!(topo.routers.len(), 2);
        assert_eq!(topo.interfaces.len(), 6);
        assert_eq!(topo.interfaces_in("10.0.2.0/24".parse().unwrap()), 2);
    }

    #[test]
    fn end_to_end_ping_across_two_routers() {
        use crate::engine::ProcCtx;
        use crate::process::Process;
        use fremont_net::{IcmpMessage, IpProtocol, Ipv4Packet};

        struct P {
            got: bool,
        }
        impl Process for P {
            fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
                let m = IcmpMessage::EchoRequest {
                    ident: 1,
                    seq: 1,
                    payload: vec![],
                };
                ctx.send_icmp("10.0.3.10".parse().unwrap(), &m).unwrap();
            }
            fn on_ip(&mut self, pkt: &Ipv4Packet, _: &mut ProcCtx<'_>) {
                if pkt.protocol == IpProtocol::Icmp
                    && pkt.src == "10.0.3.10".parse::<std::net::Ipv4Addr>().unwrap()
                {
                    if let Ok(IcmpMessage::EchoReply { .. }) = IcmpMessage::decode(&pkt.payload) {
                        self.got = true;
                    }
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let (mut sim, topo) = line_topology();
        let ha = topo.nodes_by_name["ha"];
        let h = sim.spawn(ha, Box::new(P { got: false }));
        sim.run_for(crate::time::SimDuration::from_secs(5));
        assert!(
            sim.process_mut::<P>(h).unwrap().got,
            "ping must cross two routers and return"
        );
        assert!(sim.stats.packets_forwarded >= 4);
    }

    #[test]
    fn ttl_1_dies_at_first_router() {
        use crate::engine::ProcCtx;
        use crate::process::Process;
        use bytes::Bytes;
        use fremont_net::{IcmpMessage, IpProtocol, Ipv4Packet, UdpDatagram};

        struct P {
            te_from: Option<std::net::Ipv4Addr>,
        }
        impl Process for P {
            fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
                let d = UdpDatagram::new(40000, 33434, Bytes::new());
                ctx.send_ip(
                    "10.0.3.10".parse().unwrap(),
                    IpProtocol::Udp,
                    Bytes::from(d.encode()),
                    Some(1),
                    Some(77),
                )
                .unwrap();
            }
            fn on_ip(&mut self, pkt: &Ipv4Packet, _: &mut ProcCtx<'_>) {
                if let Ok(IcmpMessage::TimeExceeded { .. }) = IcmpMessage::decode(&pkt.payload) {
                    self.te_from = Some(pkt.src);
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let (mut sim, topo) = line_topology();
        let ha = topo.nodes_by_name["ha"];
        let h = sim.spawn(ha, Box::new(P { te_from: None }));
        sim.run_for(crate::time::SimDuration::from_secs(5));
        assert_eq!(
            sim.process_mut::<P>(h).unwrap().te_from,
            Some("10.0.1.1".parse().unwrap()),
            "Time Exceeded comes from r1's near-side interface"
        );
    }
}
