//! Host availability (up/down) model.
//!
//! Several Table 5 shortfalls come from hosts being down when an active
//! module swept past ("Not all hosts up when run" for SeqPing and
//! EtherHostProbe). Each host alternates exponentially-distributed up and
//! down periods; long-run availability is `mean_up / (mean_up +
//! mean_down)`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::SimDuration;

/// Alternating-renewal up/down model for one host.
#[derive(Debug, Clone, Copy)]
pub struct UptimeModel {
    /// Mean duration of an up period.
    pub mean_up: SimDuration,
    /// Mean duration of a down period.
    pub mean_down: SimDuration,
    /// Probability the host starts the simulation down.
    pub start_down_prob: f64,
}

impl UptimeModel {
    /// A host that is always up.
    pub fn always_up() -> Self {
        UptimeModel {
            mean_up: SimDuration::from_days(365),
            mean_down: SimDuration::ZERO,
            start_down_prob: 0.0,
        }
    }

    /// A model with the given long-run availability and mean cycle time.
    ///
    /// # Examples
    ///
    /// ```
    /// use fremont_netsim::time::SimDuration;
    /// use fremont_netsim::uptime::UptimeModel;
    ///
    /// let m = UptimeModel::with_availability(0.7, SimDuration::from_hours(10));
    /// let a = m.availability();
    /// assert!((a - 0.7).abs() < 1e-9);
    /// ```
    pub fn with_availability(availability: f64, cycle: SimDuration) -> Self {
        let a = availability.clamp(0.01, 1.0);
        let up = (cycle.as_micros() as f64 * a) as u64;
        let down = cycle.as_micros() - up;
        UptimeModel {
            mean_up: SimDuration::from_micros(up.max(1)),
            mean_down: SimDuration::from_micros(down),
            start_down_prob: 1.0 - a,
        }
    }

    /// Long-run fraction of time the host is up.
    pub fn availability(&self) -> f64 {
        let up = self.mean_up.as_micros() as f64;
        let down = self.mean_down.as_micros() as f64;
        if up + down == 0.0 {
            1.0
        } else {
            up / (up + down)
        }
    }

    fn exp_sample(mean: SimDuration, rng: &mut StdRng) -> SimDuration {
        if mean.as_micros() == 0 {
            return SimDuration::from_micros(1);
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        SimDuration::from_micros(((-u.ln()) * mean.as_micros() as f64).max(1.0) as u64)
    }

    /// The first toggle event `(delay, new_up_state)`; nodes start up, so a
    /// host that should "start down" toggles down immediately.
    pub fn initial_event(&self, rng: &mut StdRng) -> Option<(SimDuration, bool)> {
        if self.mean_down.as_micros() == 0 {
            return None; // Always-up hosts never toggle.
        }
        if rng.gen::<f64>() < self.start_down_prob {
            Some((SimDuration::ZERO, false))
        } else {
            Some((Self::exp_sample(self.mean_up, rng), false))
        }
    }

    /// Given the state just entered, the next toggle `(delay, new_state)`.
    pub fn next_event(&self, now_up: bool, rng: &mut StdRng) -> Option<(SimDuration, bool)> {
        if self.mean_down.as_micros() == 0 {
            return None;
        }
        if now_up {
            Some((Self::exp_sample(self.mean_up, rng), false))
        } else {
            Some((Self::exp_sample(self.mean_down, rng), true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn always_up_never_toggles() {
        let m = UptimeModel::always_up();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.initial_event(&mut rng).is_none());
        assert!(m.next_event(true, &mut rng).is_none());
        assert_eq!(m.availability(), 1.0);
    }

    #[test]
    fn availability_derivation() {
        let m = UptimeModel::with_availability(0.7, SimDuration::from_hours(10));
        assert!((m.availability() - 0.7).abs() < 1e-9);
        assert!(m.start_down_prob > 0.29 && m.start_down_prob < 0.31);
    }

    #[test]
    fn toggles_alternate() {
        let m = UptimeModel::with_availability(0.5, SimDuration::from_hours(2));
        let mut rng = StdRng::seed_from_u64(3);
        let (_, first) = m.initial_event(&mut rng).unwrap();
        assert!(!first, "first toggle is always to down");
        let (_, second) = m.next_event(false, &mut rng).unwrap();
        assert!(second, "from down we go up");
        let (_, third) = m.next_event(true, &mut rng).unwrap();
        assert!(!third);
    }

    #[test]
    fn simulated_availability_converges() {
        // Simulate the renewal process and measure time-up fraction.
        let m = UptimeModel::with_availability(0.7, SimDuration::from_hours(1));
        let mut rng = StdRng::seed_from_u64(11);
        let mut up = true;
        let mut t_up = 0u64;
        let mut t_total = 0u64;
        // First transition.
        let (mut delay, mut next_state) = m.initial_event(&mut rng).unwrap();
        // Treat initial "down start" as an immediate flip.
        for _ in 0..20_000 {
            if up {
                t_up += delay.as_micros();
            }
            t_total += delay.as_micros();
            up = next_state;
            let (d, s) = m.next_event(up, &mut rng).unwrap();
            delay = d;
            next_state = s;
        }
        let frac = t_up as f64 / t_total as f64;
        assert!(
            (0.65..0.75).contains(&frac),
            "measured availability {frac} should be ~0.7"
        );
    }
}
