//! Background traffic model.
//!
//! Passive discovery (ARPwatch) only sees hosts that talk: "this module
//! ... will not discover hosts that are not recipients of traffic from
//! other hosts". The traffic model generates weighted host-to-host
//! chatter, so that over 30 minutes most *busy* hosts have ARPed and over
//! 24 hours nearly everyone has — the dynamics behind Table 5's ARPwatch
//! rows (61% after 30 min, 89% after 24 h).

use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::Rng;

use crate::segment::NodeId;
use crate::time::SimDuration;

/// One recurring conversation.
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    /// Sending node.
    pub src: NodeId,
    /// Destination address (usually another local host; triggers ARP).
    pub dst: Ipv4Addr,
    /// Relative frequency weight.
    pub weight: f64,
}

/// A weighted background-traffic generator.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    flows: Vec<Flow>,
    total_weight: f64,
    /// Mean time between bursts.
    pub mean_interval: SimDuration,
    /// Flows sampled per burst.
    pub burst_size: usize,
    /// Stop generating after this time (`None` = run forever).
    pub budget: Option<u64>,
    emitted: u64,
}

impl TrafficModel {
    /// Creates a model from flows.
    pub fn new(flows: Vec<Flow>, mean_interval: SimDuration, burst_size: usize) -> Self {
        let total_weight = flows.iter().map(|f| f.weight).sum();
        TrafficModel {
            flows,
            total_weight,
            mean_interval,
            burst_size,
            budget: None,
            emitted: 0,
        }
    }

    /// Number of flows configured.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Samples the next burst: the `(src, dst)` pairs to send now, and the
    /// delay until the following burst (`None` ends the model).
    pub fn next_burst(
        &mut self,
        rng: &mut StdRng,
    ) -> (Vec<(NodeId, Ipv4Addr)>, Option<SimDuration>) {
        if self.flows.is_empty() || self.total_weight <= 0.0 {
            return (Vec::new(), None);
        }
        if let Some(budget) = self.budget {
            if self.emitted >= budget {
                return (Vec::new(), None);
            }
        }
        self.emitted += 1;
        let mut out = Vec::with_capacity(self.burst_size);
        for _ in 0..self.burst_size {
            let mut pick = rng.gen::<f64>() * self.total_weight;
            let mut chosen = self.flows[self.flows.len() - 1];
            for f in &self.flows {
                if pick < f.weight {
                    chosen = *f;
                    break;
                }
                pick -= f.weight;
            }
            out.push((chosen.src, chosen.dst));
        }
        // Exponential inter-burst delay.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let delay = (-u.ln() * self.mean_interval.as_micros() as f64) as u64;
        (out, Some(SimDuration::from_micros(delay.max(1))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn flows() -> Vec<Flow> {
        vec![
            Flow {
                src: NodeId(0),
                dst: Ipv4Addr::new(10, 0, 0, 2),
                weight: 10.0,
            },
            Flow {
                src: NodeId(1),
                dst: Ipv4Addr::new(10, 0, 0, 1),
                weight: 1.0,
            },
        ]
    }

    #[test]
    fn weighted_sampling_prefers_heavy_flows() {
        let mut m = TrafficModel::new(flows(), SimDuration::from_secs(1), 1);
        let mut rng = StdRng::seed_from_u64(42);
        let mut heavy = 0;
        for _ in 0..1000 {
            let (burst, next) = m.next_burst(&mut rng);
            assert!(next.is_some());
            if burst[0].0 == NodeId(0) {
                heavy += 1;
            }
        }
        assert!(
            heavy > 800,
            "10:1 weights should dominate, got {heavy}/1000"
        );
    }

    #[test]
    fn empty_model_terminates() {
        let mut m = TrafficModel::new(vec![], SimDuration::from_secs(1), 4);
        let mut rng = StdRng::seed_from_u64(1);
        let (burst, next) = m.next_burst(&mut rng);
        assert!(burst.is_empty());
        assert!(next.is_none());
    }

    #[test]
    fn budget_stops_generation() {
        let mut m = TrafficModel::new(flows(), SimDuration::from_secs(1), 1);
        m.budget = Some(3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut bursts = 0;
        loop {
            let (b, next) = m.next_burst(&mut rng);
            if b.is_empty() || next.is_none() {
                break;
            }
            bursts += 1;
            if bursts > 10 {
                break;
            }
        }
        assert_eq!(bursts, 3);
    }

    #[test]
    fn delays_average_near_mean() {
        let mut m = TrafficModel::new(flows(), SimDuration::from_secs(10), 1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0u64;
        const N: u64 = 2000;
        for _ in 0..N {
            let (_, next) = m.next_burst(&mut rng);
            total += next.unwrap().as_micros();
        }
        let mean = total / N;
        assert!(
            (5_000_000..20_000_000).contains(&mean),
            "exponential mean ~10s, got {mean}us"
        );
    }
}
