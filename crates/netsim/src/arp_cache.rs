//! Per-host ARP cache with entry timeout.
//!
//! Every simulated host keeps the same structure a SunOS kernel did: an
//! IP → MAC table whose entries expire. Fremont's EtherHostProbe module
//! "attempts to send an IP packet to the UDP Echo port of each host ...
//! the responses for which are entered into the host's ARP table, and then
//! read by the EtherHostProbe Explorer Module" — this is the table it
//! reads. The duplicate-address problem is "relatively easy [to detect] if
//! you have a tool that remembers the IP and Ethernet associations longer
//! than the usual timeout of the ARP cache": the Journal remembers; this
//! cache forgets, which is exactly the asymmetry the paper exploits.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use fremont_net::MacAddr;

use crate::time::{SimDuration, SimTime};

/// Default ARP cache entry lifetime (SunOS-era kernels used ~20 minutes).
pub const DEFAULT_TIMEOUT: SimDuration = SimDuration(20 * 60 * 1_000_000);

/// An ARP cache.
#[derive(Debug, Clone)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, (MacAddr, SimTime)>,
    timeout: SimDuration,
}

impl Default for ArpCache {
    fn default() -> Self {
        Self::new(DEFAULT_TIMEOUT)
    }
}

impl ArpCache {
    /// Creates a cache with the given entry lifetime.
    pub fn new(timeout: SimDuration) -> Self {
        ArpCache {
            entries: HashMap::new(),
            timeout,
        }
    }

    /// Inserts or refreshes a mapping at time `now`.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr, now: SimTime) {
        self.entries.insert(ip, (mac, now + self.timeout));
    }

    /// Looks up a live mapping at time `now`.
    pub fn lookup(&self, ip: Ipv4Addr, now: SimTime) -> Option<MacAddr> {
        match self.entries.get(&ip) {
            Some((mac, expires)) if *expires > now => Some(*mac),
            _ => None,
        }
    }

    /// Snapshot of all live entries at time `now`, sorted by IP (this is
    /// the view EtherHostProbe reads).
    pub fn snapshot(&self, now: SimTime) -> Vec<(Ipv4Addr, MacAddr)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .filter(|(_, (_, expires))| *expires > now)
            .map(|(ip, (mac, _))| (*ip, *mac))
            .collect();
        v.sort_by_key(|(ip, _)| u32::from(*ip));
        v
    }

    /// Drops expired entries (periodic kernel sweep).
    pub fn sweep(&mut self, now: SimTime) {
        self.entries.retain(|_, (_, expires)| *expires > now);
    }

    /// Number of entries including expired-but-unswept ones.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Empties the cache (host reboot).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(b: u8) -> MacAddr {
        MacAddr::new([8, 0, 0x20, 0, 0, b])
    }

    fn ip(h: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, h)
    }

    #[test]
    fn insert_lookup() {
        let mut c = ArpCache::new(SimDuration::from_secs(60));
        c.insert(ip(1), mac(1), SimTime::ZERO);
        assert_eq!(c.lookup(ip(1), SimTime::ZERO), Some(mac(1)));
        assert_eq!(c.lookup(ip(2), SimTime::ZERO), None);
    }

    #[test]
    fn entries_expire() {
        let mut c = ArpCache::new(SimDuration::from_secs(60));
        c.insert(ip(1), mac(1), SimTime::ZERO);
        let late = SimTime::ZERO + SimDuration::from_secs(61);
        assert_eq!(c.lookup(ip(1), late), None);
        // Refresh extends lifetime.
        c.insert(ip(1), mac(1), SimTime::ZERO + SimDuration::from_secs(30));
        assert_eq!(c.lookup(ip(1), late), Some(mac(1)));
    }

    #[test]
    fn reinsert_overwrites_mac() {
        // The duplicate-IP situation: the cache only remembers the latest
        // claimant, which is why the Journal's long memory matters.
        let mut c = ArpCache::default();
        c.insert(ip(1), mac(1), SimTime::ZERO);
        c.insert(ip(1), mac(2), SimTime(1));
        assert_eq!(c.lookup(ip(1), SimTime(2)), Some(mac(2)));
    }

    #[test]
    fn snapshot_sorted_and_filtered() {
        let mut c = ArpCache::new(SimDuration::from_secs(10));
        c.insert(ip(3), mac(3), SimTime::ZERO);
        c.insert(ip(1), mac(1), SimTime::ZERO);
        c.insert(ip(2), mac(2), SimTime::ZERO + SimDuration::from_secs(20));
        let at = SimTime::ZERO + SimDuration::from_secs(15);
        let snap = c.snapshot(at);
        assert_eq!(snap, vec![(ip(2), mac(2))]);
    }

    #[test]
    fn sweep_removes_expired() {
        let mut c = ArpCache::new(SimDuration::from_secs(10));
        c.insert(ip(1), mac(1), SimTime::ZERO);
        c.insert(ip(2), mac(2), SimTime::ZERO + SimDuration::from_secs(100));
        c.sweep(SimTime::ZERO + SimDuration::from_secs(50));
        assert_eq!(c.raw_len(), 1);
        c.clear();
        assert_eq!(c.raw_len(), 0);
    }
}
