//! The synthetic campus: a University-of-Colorado-scale internetwork.
//!
//! The paper evaluated Fremont against the CU campus network: a class B
//! (128.138/16) with "about 114" assigned subnets, 111 of them connected,
//! explored from a Computer Science department subnet of 56 DNS-registered
//! interfaces. This module generates a topology with the same shape and
//! the same pathologies:
//!
//! * ~114 assigned /24 subnets, 3 unused, the rest joined by multi-homed
//!   routers to a backbone;
//! * partial DNS coverage (~84% of connected subnets registered);
//! * gateway naming conventions (`-gw` names with one A record per
//!   interface) for a subset of routers — what the DNS module can find;
//! * routers with "gateway software problems" that defeat traceroute;
//! * a departmental subnet with host up/down churn, background traffic,
//!   two stale DNS entries, and the Table 8 faults (duplicate IP, wrong
//!   mask, promiscuous RIP host, silent hardware change, removed host).

use std::collections::HashSet;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fremont_net::dns::DnsName;
use fremont_net::{Subnet, SubnetMask};

use crate::builder::{HostIdx, Topology, TopologyBuilder};
use crate::dns_server::{DnsServerState, Zone};
use crate::engine::Sim;
use crate::faults::FaultPlan;
use crate::node::RipConfig;
use crate::segment::NodeId;
use crate::time::SimDuration;
use crate::traffic::{Flow, TrafficModel};
use crate::uptime::UptimeModel;

/// Configuration of the synthetic campus.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// RNG seed (topology layout and runtime randomness).
    pub seed: u64,
    /// The campus class-B network.
    pub network: Subnet,
    /// Subnets assigned in the campus plan.
    pub subnets_assigned: usize,
    /// Subnets actually connected (rest are unused).
    pub subnets_connected: usize,
    /// Fraction of connected subnets registered in the DNS.
    pub dns_coverage: f64,
    /// Fraction of routers following the `-gw` DNS naming convention.
    pub gateway_naming: f64,
    /// How many interfaces (beyond the backbone one) a named gateway has
    /// registered under its `-gw` name: uniform in `min..=max`. Real
    /// admins rarely registered every interface, which is why the paper's
    /// DNS module attributed only 48 of 111 subnets to gateways.
    pub gateway_dns_leaves: (usize, usize),
    /// Fraction of routers that filter traceroute probes.
    pub broken_router_frac: f64,
    /// Hosts per ordinary leaf subnet: uniform in `min..=max`.
    pub hosts_per_subnet: (usize, usize),
    /// Number of *real* hosts on the departmental (CS) subnet.
    pub cs_hosts: usize,
    /// Stale DNS entries on the CS subnet (registered, no real machine).
    pub cs_ghost_entries: usize,
    /// Long-run availability of ordinary CS hosts.
    pub availability: f64,
    /// Mean up+down cycle for host churn.
    pub churn_cycle: SimDuration,
    /// Inject the Table 8 fault inventory.
    pub inject_faults: bool,
    /// Attach background traffic on the CS subnet (drives ARPwatch).
    pub cs_traffic: bool,
    /// Scheduled mid-run faults, installed on the finished simulator.
    /// The default (empty) plan is a strict no-op — see
    /// [`Sim::install_fault_plan`] — so existing campus runs are
    /// unchanged.
    pub fault_plan: FaultPlan,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            seed: 1993,
            network: "128.138.0.0/16".parse().expect("class B literal"),
            subnets_assigned: 114,
            subnets_connected: 111,
            dns_coverage: 0.84,
            gateway_naming: 0.80,
            gateway_dns_leaves: (2, 2),
            broken_router_frac: 0.18,
            hosts_per_subnet: (2, 6),
            cs_hosts: 54,
            cs_ghost_entries: 2,
            availability: 0.80,
            churn_cycle: SimDuration::from_hours(8),
            inject_faults: true,
            cs_traffic: true,
            fault_plan: FaultPlan::default(),
        }
    }
}

impl CampusConfig {
    /// A smaller campus for fast tests (same structure, fewer subnets).
    pub fn small() -> Self {
        CampusConfig {
            subnets_assigned: 12,
            subnets_connected: 10,
            cs_hosts: 12,
            cs_ghost_entries: 1,
            ..Default::default()
        }
    }

    /// The small campus with the injected problem inventory switched
    /// off: no Table 8 faults, no ghost DNS entries. Chaos tests start
    /// from this quiet baseline so that every finding is attributable
    /// to an explicitly scheduled [`FaultPlan`]. Ordinary availability
    /// churn stays on — scenarios that need a fully static population
    /// (like the model checker) pin `availability` themselves.
    pub fn quiet_small(seed: u64) -> Self {
        CampusConfig {
            seed,
            inject_faults: false,
            cs_ghost_entries: 0,
            ..CampusConfig::small()
        }
    }

    /// The micro campus the model checker enumerates over: two subnets
    /// (backbone + departmental), one gateway, six fully available CS
    /// hosts, quiet baseline. Small enough that a single 16-hour
    /// discovery run takes milliseconds, so thousands of fault
    /// interleavings are affordable, and free of availability churn so
    /// the differential invariants see a stable baseline.
    pub fn micro(seed: u64) -> Self {
        CampusConfig {
            subnets_assigned: 2,
            subnets_connected: 2,
            cs_hosts: 6,
            availability: 1.0,
            ..CampusConfig::quiet_small(seed)
        }
    }
}

/// The Table 8 fault inventory, by node name.
#[derive(Debug, Clone, Default)]
pub struct FaultInventory {
    /// Two hosts configured with the same IP address.
    pub duplicate_ip_pair: Option<(String, String)>,
    /// Host configured with the wrong subnet mask.
    pub wrong_mask_host: Option<String>,
    /// Host that promiscuously rebroadcasts RIP.
    pub promiscuous_rip_host: Option<String>,
    /// Host that is permanently gone (still in the DNS).
    pub removed_host: Option<String>,
    /// `(old, new)` hosts modeling a hardware change: same IP, different
    /// MAC; `old` dies when `new` appears.
    pub hardware_change: Option<(String, String)>,
}

/// Ground truth about the generated campus.
pub struct CampusTruth {
    /// The built topology map.
    pub topology: Topology,
    /// Every subnet in the campus plan (assigned).
    pub assigned_subnets: Vec<Subnet>,
    /// Subnets actually connected.
    pub connected_subnets: Vec<Subnet>,
    /// Subnets registered in the DNS.
    pub dns_subnets: Vec<Subnet>,
    /// True gateway composition: `(router name, interface ips)`.
    pub gateways: Vec<(String, Vec<Ipv4Addr>)>,
    /// Routers whose names follow the `-gw` convention in the DNS.
    pub named_gateways: Vec<String>,
    /// The departmental subnet the Table 5 run explores.
    pub cs_subnet: Subnet,
    /// Real interfaces on the CS subnet (IP, node).
    pub cs_interfaces: Vec<(Ipv4Addr, NodeId)>,
    /// DNS-registered interface count on the CS subnet (incl. ghosts).
    pub cs_dns_count: usize,
    /// The campus name server's address.
    pub dns_server: Ipv4Addr,
    /// Name of the always-up CS host the Explorer Modules run from.
    pub explorer_host: String,
    /// Names of routers that filter traceroute probes.
    pub broken_routers: Vec<String>,
    /// Injected faults.
    pub faults: FaultInventory,
    /// The backbone subnet.
    pub backbone: Subnet,
}

/// Generates the campus. Returns the running simulator and ground truth.
pub fn generate(cfg: &CampusConfig) -> (Sim, CampusTruth) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xCA_3F_05);
    let mut b = TopologyBuilder::new();

    let octets = cfg.network.network().octets();
    let third_subnet = |n: u8| -> Subnet {
        Subnet::containing(
            Ipv4Addr::new(octets[0], octets[1], n, 0),
            SubnetMask::from_prefix_len(24).expect("valid prefix"),
        )
    };

    // --- Subnet plan -----------------------------------------------------
    // Third octets spread over the space; 1 = backbone, 243 forced for CS
    // (the paper's department). Unused subnets occupy the top of the plan.
    let backbone_subnet: Subnet = third_subnet(1);
    let cs_third: u8 = 243;
    let mut assigned_thirds: Vec<u8> = Vec::with_capacity(cfg.subnets_assigned + 1);
    let mut seen_thirds = [false; 256];
    let mut t = 1u16;
    while assigned_thirds.len() < cfg.subnets_assigned {
        if !seen_thirds[t as usize] {
            seen_thirds[t as usize] = true;
            assigned_thirds.push(t as u8);
        }
        t += 2;
        if t >= 250 {
            t = 2;
        }
    }
    if !seen_thirds[cs_third as usize] {
        assigned_thirds.pop();
        assigned_thirds.push(cs_third);
    }
    assigned_thirds.sort_unstable();
    assigned_thirds.dedup();
    let assigned_subnets: Vec<Subnet> = assigned_thirds.iter().map(|&n| third_subnet(n)).collect();

    // Connected = backbone + CS + the first (connected-2) others.
    let mut connected_thirds: Vec<u8> = vec![1, cs_third];
    for &n in &assigned_thirds {
        if connected_thirds.len() >= cfg.subnets_connected {
            break;
        }
        if n != 1 && n != cs_third {
            connected_thirds.push(n);
        }
    }
    connected_thirds.sort_unstable();
    let connected_subnets: Vec<Subnet> =
        connected_thirds.iter().map(|&n| third_subnet(n)).collect();

    // --- Segments ---------------------------------------------------------
    let backbone_seg = b.segment_net("backbone", third_subnet(1));
    let mut leaf_segs: Vec<(u8, usize)> = Vec::new(); // (third octet, builder idx)
    for &n in &connected_thirds {
        if n == 1 {
            continue;
        }
        let name = if n == cs_third {
            "cs-net".to_owned()
        } else {
            format!("net-{n}")
        };
        let idx = b.segment_net(&name, third_subnet(n));
        leaf_segs.push((n, idx));
    }

    // --- Routers ----------------------------------------------------------
    // Each router uplinks 2-4 leaf subnets to the backbone. CS gets its own
    // dedicated router (the paper's department gateway).
    let dept_names = [
        "engr", "phys", "chem", "geol", "math", "biol", "hist", "musi", "arts", "law", "admin",
        "dorm", "med", "astr", "ecol", "econ", "socy", "psych", "ling", "aero", "civil", "mech",
        "elect", "comp", "stat", "atmo", "ocean", "geog", "anthro", "class", "phil", "thtr",
        "dance", "jour", "libr", "regis", "house", "athl", "alum", "ops",
    ];
    let mut gateways: Vec<(String, Vec<Ipv4Addr>)> = Vec::new();
    let mut broken_routers = Vec::new();
    let mut named_gateways = Vec::new();
    let mut backbone_attach = 2u32;

    // CS router first: backbone .2 + cs-net .1.
    let cs_seg_idx = leaf_segs
        .iter()
        .find(|(n, _)| *n == cs_third)
        .map(|(_, i)| *i)
        .expect("cs segment exists");
    {
        b.router("cs-gw", &[(backbone_seg, backbone_attach), (cs_seg_idx, 1)]);
        let ips = vec![
            backbone_subnet.nth(backbone_attach).expect("fits"),
            Ipv4Addr::new(octets[0], octets[1], cs_third, 1),
        ];
        gateways.push(("cs-gw".to_owned(), ips));
        named_gateways.push("cs-gw".to_owned());
        backbone_attach += 1;
    }

    // Remaining leaves in groups of 2-4 per router.
    let mut remaining: Vec<(u8, usize)> = leaf_segs
        .iter()
        .copied()
        .filter(|(n, _)| *n != cs_third)
        .collect();
    let mut dept_i = 0usize;
    while !remaining.is_empty() {
        let take = rng.gen_range(2..=4usize).min(remaining.len());
        let group: Vec<(u8, usize)> = remaining.drain(..take).collect();
        let name = if dept_i < dept_names.len() {
            format!("{}-gw", dept_names[dept_i])
        } else {
            format!("{}2-gw", dept_names[dept_i % dept_names.len()])
        };
        dept_i += 1;
        let mut attach: Vec<(usize, u32)> = vec![(backbone_seg, backbone_attach)];
        backbone_attach += 1;
        for (_, seg_idx) in &group {
            attach.push((*seg_idx, 1));
        }
        let r = b.router(&name, &attach);
        let mut ips = vec![backbone_subnet.nth(attach[0].1).expect("fits")];
        for (n, _) in &group {
            ips.push(Ipv4Addr::new(octets[0], octets[1], *n, 1));
        }
        // Some routers have the probe-filtering bug.
        if rng.gen::<f64>() < cfg.broken_router_frac {
            b.router_mut(r).behavior.filter_udp_probes = true;
            broken_routers.push(name.clone());
        }
        // Some follow the -gw DNS naming convention.
        if rng.gen::<f64>() < cfg.gateway_naming {
            named_gateways.push(name.clone());
        }
        gateways.push((name, ips));
    }

    // --- CS subnet hosts ---------------------------------------------------
    let host_names = [
        "bruno",
        "piper",
        "anchor",
        "spot",
        "tigger",
        "eeyore",
        "pooh",
        "owl",
        "kanga",
        "roo",
        "latour",
        "lafite",
        "margaux",
        "palmer",
        "pichon",
        "lynch",
        "talbot",
        "gloria",
        "figeac",
        "petrus",
        "ausone",
        "cheval",
        "yquem",
        "climens",
        "coutet",
        "guiraud",
        "rieussec",
        "fargues",
        "raymond",
        "lamothe",
        "filhot",
        "malle",
        "arche",
        "broustet",
        "nairac",
        "caillou",
        "suau",
        "myrat",
        "doisy",
        "vedrines",
        "boulder",
        "nederland",
        "lyons",
        "louisville",
        "lafayette",
        "superior",
        "erie",
        "niwot",
        "hygiene",
        "ward",
        "jamestown",
        "allenspark",
        "gunbarrel",
        "eldora",
        "marshall",
        "valmont",
        "sunshine",
        "salina",
        "crisman",
        "rowena",
        "sugarloaf",
    ];
    let cs_subnet: Subnet = third_subnet(cs_third);
    let mut cs_host_idxs: Vec<HostIdx> = Vec::new();
    let mut used_names: HashSet<String> = HashSet::new();
    let mut cs_dns_names: Vec<(String, Ipv4Addr)> = Vec::new();
    for i in 0..cfg.cs_hosts {
        let base = host_names[i % host_names.len()];
        let name = if used_names.contains(base) {
            format!("{base}{i}")
        } else {
            base.to_owned()
        };
        used_names.insert(name.clone());
        let n = (i as u32) + 10;
        let h = b.host(&name, cs_seg_idx, n);
        cs_host_idxs.push(h);
        let ip = cs_subnet.nth(n).expect("fits");
        cs_dns_names.push((name, ip));
    }

    // --- Fault injection ----------------------------------------------------
    let mut faults = FaultInventory::default();
    if cfg.inject_faults {
        // Duplicate IP: a lab machine cloned with bruno's address.
        let dup_ip = cs_subnet.nth(10).expect("fits");
        let h = b.host_at("rogue-clone", cs_seg_idx, dup_ip);
        cs_host_idxs.push(h);
        faults.duplicate_ip_pair = Some(("bruno".to_owned(), "rogue-clone".to_owned()));

        // Wrong mask: thinks the class B is unsubnetted.
        let wm = b.host("badmask", cs_seg_idx, 200);
        b.host_mut(wm).mask = SubnetMask::from_prefix_len(16).expect("valid");
        cs_host_idxs.push(wm);
        cs_dns_names.push(("badmask".to_owned(), cs_subnet.nth(200).expect("fits")));
        faults.wrong_mask_host = Some("badmask".to_owned());

        // Promiscuous RIP host.
        let pr = b.host("chatty", cs_seg_idx, 201);
        b.host_mut(pr).behavior.rip = Some(RipConfig {
            promiscuous: true,
            split_horizon: false,
            ..Default::default()
        });
        cs_host_idxs.push(pr);
        cs_dns_names.push(("chatty".to_owned(), cs_subnet.nth(201).expect("fits")));
        faults.promiscuous_rip_host = Some("chatty".to_owned());

        // Hardware change: "piper" is later replaced by "piper-new" (same
        // IP, new adapter). The driver flips them with set_node_up.
        let hw_ip = cs_subnet.nth(11).expect("fits");
        let hn = b.host_at("piper-new", cs_seg_idx, hw_ip);
        cs_host_idxs.push(hn);
        faults.hardware_change = Some(("piper".to_owned(), "piper-new".to_owned()));

        // Removed host: registered in DNS, machine long gone.
        cs_dns_names.push(("ghostly".to_owned(), cs_subnet.nth(222).expect("fits")));
        faults.removed_host = Some("ghostly".to_owned());
    }

    // Ghost DNS entries beyond the removed-host fault.
    for g in 0..cfg.cs_ghost_entries.saturating_sub(1) {
        cs_dns_names.push((
            format!("stale{g}"),
            cs_subnet.nth(230 + g as u32).expect("fits"),
        ));
    }

    // --- Other leaf hosts ----------------------------------------------------
    let mut other_dns: Vec<(String, Ipv4Addr)> = Vec::new();
    for (n, seg_idx) in &leaf_segs {
        if *n == cs_third {
            continue;
        }
        let count = rng.gen_range(cfg.hosts_per_subnet.0..=cfg.hosts_per_subnet.1);
        for i in 0..count {
            let name = format!("h{n}x{i}");
            let hostnum = (i as u32) + 10;
            b.host(&name, *seg_idx, hostnum);
            let ip = Ipv4Addr::new(octets[0], octets[1], *n, hostnum as u8);
            other_dns.push((name, ip));
        }
    }

    // --- Name server ----------------------------------------------------------
    let ns_ip = backbone_subnet.nth(53).expect("fits");
    b.host_at("ns", backbone_seg, ns_ip);

    // --- Build -----------------------------------------------------------------
    let (mut sim, topology) = b.build(cfg.seed);

    // Decide which connected subnets are registered in the DNS: backbone,
    // CS, and a dns_coverage fraction of the rest.
    let mut dns_covered: Vec<u8> = vec![1, cs_third];
    {
        let mut candidates: Vec<u8> = connected_thirds
            .iter()
            .copied()
            .filter(|n| *n != 1 && *n != cs_third)
            .collect();
        let want = ((connected_thirds.len() as f64) * cfg.dns_coverage).round() as usize;
        while dns_covered.len() < want && !candidates.is_empty() {
            let i = rng.gen_range(0..candidates.len());
            dns_covered.push(candidates.swap_remove(i));
        }
        dns_covered.sort_unstable();
    }

    let domain: DnsName = "colorado.edu".parse().expect("name literal");
    let rev_parent_name: DnsName = format!("{}.{}.in-addr.arpa", octets[1], octets[0])
        .parse()
        .expect("name literal");
    let mut server = DnsServerState::new();
    let mut forward = Zone::new(domain.clone());
    let mut rev_parent = Zone::new(rev_parent_name.clone());
    let mut child_zones: Vec<Zone> = Vec::with_capacity(dns_covered.len());

    // Direct-indexed coverage test and third-octet → child-zone index, so
    // each record costs a couple of array lookups instead of a linear
    // zone scan and a reverse-zone name parse.
    let mut covered_arr = [false; 256];
    for &n in &dns_covered {
        covered_arr[n as usize] = true;
    }
    let mut zone_idx = [usize::MAX; 256];

    let add_pair = |fwd: &mut Zone,
                    children: &mut Vec<Zone>,
                    zone_idx: &mut [usize; 256],
                    name: &str,
                    ip: Ipv4Addr| {
        let t3 = ip.octets()[2];
        if !covered_arr[t3 as usize] {
            return;
        }
        let fqdn = domain.child(name).expect("label fits");
        fwd.add_a(fqdn.clone(), ip);
        let z = if zone_idx[t3 as usize] != usize::MAX {
            &mut children[zone_idx[t3 as usize]]
        } else {
            let zone_name: DnsName = format!("{t3}.{}.{}.in-addr.arpa", octets[1], octets[0])
                .parse()
                .expect("name literal");
            zone_idx[t3 as usize] = children.len();
            children.push(Zone::new(zone_name));
            children.last_mut().expect("just pushed")
        };
        z.add_ptr(DnsName::reverse_for(ip), fqdn);
    };

    // Host records.
    for (name, ip) in &cs_dns_names {
        add_pair(&mut forward, &mut child_zones, &mut zone_idx, name, *ip);
    }
    for (name, ip) in &other_dns {
        add_pair(&mut forward, &mut child_zones, &mut zone_idx, name, *ip);
    }
    add_pair(&mut forward, &mut child_zones, &mut zone_idx, "ns", ns_ip);
    // Gateway records: named gateways get an A record for the backbone
    // interface plus a couple of leaf interfaces under the -gw name (few
    // admins registered them all); unnamed routers get unrelated
    // per-interface names.
    for (gname, ips) in &gateways {
        let is_named = named_gateways.contains(gname);
        let exposed_leaves = rng.gen_range(cfg.gateway_dns_leaves.0..=cfg.gateway_dns_leaves.1);
        for (k, ip) in ips.iter().enumerate() {
            if is_named {
                if k == 0 || k <= exposed_leaves {
                    add_pair(&mut forward, &mut child_zones, &mut zone_idx, gname, *ip);
                }
            } else {
                // Unnamed routers get unrelated per-interface names, so no
                // DNS heuristic can group them (that is the point: these
                // are the gateways the DNS module cannot identify).
                let stem = gname.trim_end_matches("-gw");
                let anon = format!("{stem}-e{k}");
                add_pair(&mut forward, &mut child_zones, &mut zone_idx, &anon, *ip);
            }
        }
    }

    for z in &child_zones {
        rev_parent.delegations.push(z.origin.clone());
    }
    server.add_zone(forward);
    server.add_zone(rev_parent);
    for z in child_zones {
        server.add_zone(z);
    }
    let ns_node = topology.nodes_by_name["ns"];
    sim.nodes[ns_node.0].dns = Some(server);

    // --- Runtime models ---------------------------------------------------------
    // Uptime churn for ordinary CS hosts — but not the fault-controlled
    // ones, and never "bruno": that is the workstation the Explorer
    // Modules run from, and the paper's module host was obviously up.
    let controlled: HashSet<&str> = ["bruno", "rogue-clone", "piper-new", "badmask", "chatty"]
        .into_iter()
        .collect();
    // "piper" additionally stays out of the churn model (an experiment
    // kills it permanently to model the hardware change), but unlike the
    // controlled set it still participates in background traffic.
    for node in &topology.hosts {
        let name = sim.nodes[node.0].name.clone();
        let ip = sim.nodes[node.0].ifaces[0].ip;
        let on_cs = ip != ns_ip && cs_subnet.contains(ip);
        if on_cs && !controlled.contains(name.as_str()) && name != "piper" {
            sim.set_uptime(
                *node,
                UptimeModel::with_availability(cfg.availability, cfg.churn_cycle),
            );
        }
    }
    // The fault pair starts consistent: clone and replacement are off.
    if cfg.inject_faults {
        for n in ["rogue-clone", "piper-new"] {
            if let Some(id) = sim.node_by_name(n) {
                sim.set_node_up(id, false);
            }
        }
    }

    // Background traffic on the CS subnet: weighted, server-heavy flows so
    // ARPwatch discovery ramps like Table 5.
    if cfg.cs_traffic {
        let cs_nodes: Vec<NodeId> = topology
            .hosts
            .iter()
            .copied()
            .filter(|id| {
                let ip = sim.nodes[id.0].ifaces[0].ip;
                cs_subnet.contains(ip) && !controlled.contains(sim.nodes[id.0].name.as_str())
            })
            .collect();
        let mut flows = Vec::new();
        for (i, &src) in cs_nodes.iter().enumerate() {
            // Zipf-ish weights: early hosts (servers) talk much more.
            let weight = 12.0 / (1.0 + i as f64);
            let dst_node = cs_nodes[(i * 7 + 3) % cs_nodes.len()];
            let dst = sim.nodes[dst_node.0].ifaces[0].ip;
            flows.push(Flow { src, dst, weight });
            // And everyone occasionally talks off-subnet (through the gw).
            flows.push(Flow {
                src,
                dst: ns_ip,
                weight: weight / 4.0,
            });
        }
        sim.set_traffic(TrafficModel::new(flows, SimDuration::from_secs(22), 1));
    }

    // Collect CS ground truth (real machines only: includes faulty ones,
    // excludes DNS ghosts) plus the CS-side router interface.
    let mut cs_interfaces: Vec<(Ipv4Addr, NodeId)> = Vec::new();
    for id in &topology.hosts {
        let ip = sim.nodes[id.0].ifaces[0].ip;
        if cs_subnet.contains(ip) {
            cs_interfaces.push((ip, *id));
        }
    }
    let cs_gw = topology.nodes_by_name["cs-gw"];
    for iface in &sim.nodes[cs_gw.0].ifaces {
        if cs_subnet.contains(iface.ip) {
            cs_interfaces.push((iface.ip, cs_gw));
        }
    }

    let dns_subnets: Vec<Subnet> = dns_covered.iter().map(|&n| third_subnet(n)).collect();
    // cs-gw's CS-side interface is registered under the -gw name only
    // when named gateways expose at least one leaf interface.
    let cs_gw_registered = usize::from(cfg.gateway_dns_leaves.1 >= 1);
    let cs_dns_count = cs_dns_names
        .iter()
        .filter(|(_, ip)| cs_subnet.contains(*ip))
        .count()
        + cs_gw_registered;

    // Scheduled mid-run faults, last: every name they address now exists.
    sim.install_fault_plan(&cfg.fault_plan);

    let truth = CampusTruth {
        topology,
        assigned_subnets,
        connected_subnets,
        dns_subnets,
        gateways,
        named_gateways,
        cs_subnet,
        cs_interfaces,
        cs_dns_count,
        dns_server: ns_ip,
        explorer_host: "bruno".to_owned(),
        broken_routers,
        faults,
        backbone: backbone_subnet,
    };
    (sim, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campus_shape_matches_paper() {
        let cfg = CampusConfig::default();
        let (sim, truth) = generate(&cfg);
        assert_eq!(truth.assigned_subnets.len(), 114);
        assert_eq!(truth.connected_subnets.len(), 111);
        // DNS coverage ~84%.
        let cov = truth.dns_subnets.len() as f64 / truth.connected_subnets.len() as f64;
        assert!((0.78..=0.90).contains(&cov), "coverage {cov}");
        // ~30-48 gateways.
        assert!(
            (28..=48).contains(&truth.gateways.len()),
            "gateways {}",
            truth.gateways.len()
        );
        // Some routers broken, most named.
        assert!(!truth.broken_routers.is_empty());
        assert!(truth.named_gateways.len() >= truth.gateways.len() / 2);
        // CS subnet truth.
        assert!(truth.cs_interfaces.len() >= cfg.cs_hosts);
        assert_eq!(truth.cs_subnet.to_string(), "128.138.243.0/24");
        // The name server answers for a parent zone plus children.
        let ns = sim.node_by_name("ns").unwrap();
        let dns = sim.nodes[ns.0].dns.as_ref().unwrap();
        assert!(dns.zone_count() > 80, "zones: {}", dns.zone_count());
        assert!(dns.record_count() > 200);
    }

    #[test]
    fn campus_is_fully_routable() {
        let (sim, truth) = generate(&CampusConfig::small());
        for r in &truth.topology.routers {
            for s in &truth.connected_subnets {
                assert!(
                    sim.nodes[r.0].routes.lookup(s.nth(5).unwrap()).is_some(),
                    "router {} cannot reach {s}",
                    sim.nodes[r.0].name
                );
            }
        }
    }

    #[test]
    fn faults_are_injected() {
        let (sim, truth) = generate(&CampusConfig::small());
        let f = &truth.faults;
        assert!(f.duplicate_ip_pair.is_some());
        assert!(f.wrong_mask_host.is_some());
        assert!(f.promiscuous_rip_host.is_some());
        assert!(f.removed_host.is_some());
        let (a, bname) = f.duplicate_ip_pair.clone().unwrap();
        let ida = sim.node_by_name(&a).unwrap();
        let idb = sim.node_by_name(&bname).unwrap();
        assert_eq!(
            sim.nodes[ida.0].ifaces[0].ip, sim.nodes[idb.0].ifaces[0].ip,
            "duplicate pair shares an IP"
        );
        assert_ne!(
            sim.nodes[ida.0].ifaces[0].mac,
            sim.nodes[idb.0].ifaces[0].mac
        );
        // Clone starts down (consistent world until the experiment flips it).
        assert!(!sim.nodes[idb.0].up);
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, t1) = generate(&CampusConfig::default());
        let (_, t2) = generate(&CampusConfig::default());
        assert_eq!(t1.connected_subnets, t2.connected_subnets);
        assert_eq!(t1.broken_routers, t2.broken_routers);
        assert_eq!(t1.cs_interfaces.len(), t2.cs_interfaces.len());
        let (_, t3) = generate(&CampusConfig {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(t1.broken_routers, t3.broken_routers, "seed matters");
    }

    #[test]
    fn cs_dns_count_near_56() {
        let (_, truth) = generate(&CampusConfig::default());
        assert!(
            (54..=62).contains(&truth.cs_dns_count),
            "cs dns count {}",
            truth.cs_dns_count
        );
    }
}
