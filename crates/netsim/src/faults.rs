//! Deterministic fault injection: the [`FaultPlan`].
//!
//! The paper's value proposition is discovering *problems*, not just
//! characteristics — stale addresses, duplicate IPs, conflicting masks,
//! dead gateways (§1, §5, Table 8). A `FaultPlan` is a committable,
//! serializable script of such problems: every entry fires at an exact
//! simulated time through the engine's ordinary event queue, so same-seed
//! runs (with the same plan) are byte-identical, and an *empty* plan
//! schedules nothing at all — it cannot perturb the RNG stream or the
//! event order of a fault-free run.
//!
//! Faults address nodes and segments by *name*, not by id, so a plan
//! written against the synthetic campus ("cs-gw", "cs-net", "bruno")
//! stays valid across topology-construction changes and can live in a
//! fixture file under `scenarios/`.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// One injectable fault. See each variant for the Table 8 problem class
/// it reproduces and how the analysis layer is expected to surface it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Powers a node off. Volatile state (ARP cache, pending ARP queue,
    /// RIP-learned routes) is lost, exactly as on `SetNodeUp(false)`.
    /// A long-crashed host surfaces as an "IP address no longer in use".
    NodeCrash {
        /// Node name.
        node: String,
    },
    /// Powers a node back on (cold boot: caches start empty).
    NodeReboot {
        /// Node name.
        node: String,
    },
    /// Kills a router. Semantically a crash, but counted and traced
    /// separately because the payoff differs: subnets behind the dead
    /// gateway go silent and its own interfaces stop verifying, which
    /// the analysis layer reports as a stale route.
    GatewayDeath {
        /// Router name.
        gateway: String,
    },
    /// Severs a segment: every frame offered to the wire is dropped
    /// (both directions — a cut cable, not a lossy one).
    Partition {
        /// Segment name.
        segment: String,
    },
    /// Reconnects a partitioned segment.
    Heal {
        /// Segment name.
        segment: String,
    },
    /// Opens an elevated loss/latency window on a segment (a failing
    /// transceiver, an overloaded bridge). Discovery should degrade
    /// gracefully, not wedge.
    Degrade {
        /// Segment name.
        segment: String,
        /// Additional independent frame-loss probability in `[0, 1]`.
        extra_loss: f64,
        /// Additional per-frame one-way latency, in microseconds.
        extra_latency_micros: u64,
    },
    /// Closes a [`FaultKind::Degrade`] window.
    ClearDegrade {
        /// Segment name.
        segment: String,
    },
    /// Reconfigures a node's primary interface to `ip` — when `ip`
    /// already belongs to another live host, this is the "Duplicate
    /// Address Assignment" of Table 8 appearing mid-run.
    DuplicateIp {
        /// Node whose primary interface is reconfigured.
        node: String,
        /// The (already taken) address it now claims.
        ip: Ipv4Addr,
    },
    /// Misconfigures a node's primary-interface subnet mask — the
    /// "Inconsistent Network Masks" problem. Routes are left alone: the
    /// host now *answers mask requests* wrongly, which is what the
    /// SubnetMasks module observes and the analysis flags.
    WrongMask {
        /// Node whose mask is rewritten.
        node: String,
        /// The wrong prefix length to configure.
        prefix_len: u8,
    },
    /// Skews a node's time-of-day clock by a signed offset. Kernel
    /// timers still fire on true simulated time (an interval timer does
    /// not care what the wall clock says), but everything the node
    /// *timestamps* — including Journal observations emitted by
    /// processes hosted there — carries the skewed clock.
    ClockSkew {
        /// Node whose clock drifts.
        node: String,
        /// Signed offset in microseconds (positive = clock runs ahead).
        skew_micros: i64,
    },
}

impl FaultKind {
    /// Trace-event name for this fault kind (stable, `fault.`-prefixed).
    pub fn trace_name(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "fault.node_crash",
            FaultKind::NodeReboot { .. } => "fault.node_reboot",
            FaultKind::GatewayDeath { .. } => "fault.gateway_death",
            FaultKind::Partition { .. } => "fault.partition",
            FaultKind::Heal { .. } => "fault.heal",
            FaultKind::Degrade { .. } => "fault.degrade",
            FaultKind::ClearDegrade { .. } => "fault.clear_degrade",
            FaultKind::DuplicateIp { .. } => "fault.duplicate_ip",
            FaultKind::WrongMask { .. } => "fault.wrong_mask",
            FaultKind::ClockSkew { .. } => "fault.clock_skew",
        }
    }

    /// The name of the node or segment this fault targets.
    pub fn target(&self) -> &str {
        match self {
            FaultKind::NodeCrash { node }
            | FaultKind::NodeReboot { node }
            | FaultKind::DuplicateIp { node, .. }
            | FaultKind::WrongMask { node, .. }
            | FaultKind::ClockSkew { node, .. } => node,
            FaultKind::GatewayDeath { gateway } => gateway,
            FaultKind::Partition { segment }
            | FaultKind::Heal { segment }
            | FaultKind::Degrade { segment, .. }
            | FaultKind::ClearDegrade { segment } => segment,
        }
    }
}

/// A fault scheduled at an absolute simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires, in microseconds of simulated time.
    pub at_micros: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The firing time as a [`SimTime`].
    pub fn at(&self) -> SimTime {
        SimTime(self.at_micros)
    }
}

/// An ordered script of injectable faults.
///
/// Same-time events fire in plan order (the engine's queue breaks time
/// ties by insertion sequence). The default plan is empty, and an empty
/// plan is *behaviorally invisible*: installing it schedules no events
/// and draws nothing from the engine RNG.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Schedules one fault at `at`; returns `self` for chaining.
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            at_micros: at.as_micros(),
            kind,
        });
        self
    }

    /// Crash `node` at `down_at` and reboot it `downtime` later.
    pub fn crash_between(self, node: &str, down_at: SimTime, downtime: SimDuration) -> Self {
        let node = node.to_owned();
        self.at(down_at, FaultKind::NodeCrash { node: node.clone() })
            .at(down_at + downtime, FaultKind::NodeReboot { node })
    }

    /// Partition `segment` at `from` and heal it `outage` later.
    pub fn partition_between(self, segment: &str, from: SimTime, outage: SimDuration) -> Self {
        let segment = segment.to_owned();
        self.at(
            from,
            FaultKind::Partition {
                segment: segment.clone(),
            },
        )
        .at(from + outage, FaultKind::Heal { segment })
    }

    /// Open a loss/latency window on `segment` at `from`, closing it
    /// `window` later.
    pub fn degrade_window(
        self,
        segment: &str,
        from: SimTime,
        window: SimDuration,
        extra_loss: f64,
        extra_latency: SimDuration,
    ) -> Self {
        let segment = segment.to_owned();
        self.at(
            from,
            FaultKind::Degrade {
                segment: segment.clone(),
                extra_loss,
                extra_latency_micros: extra_latency.as_micros(),
            },
        )
        .at(from + window, FaultKind::ClearDegrade { segment })
    }

    /// Serializes the plan as a committable JSON fixture.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_owned())
    }

    /// Parses a plan from a JSON fixture.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Counters of faults the engine has *applied* (not merely scheduled),
/// plus frames dropped on partitioned segments. Exposed as the
/// `fremont_sim_fault_*` metric family — but only once a non-empty plan
/// is installed, so fault-free expositions stay byte-identical to
/// builds without this module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `NodeCrash` events applied.
    pub node_crashes: u64,
    /// `NodeReboot` events applied.
    pub node_reboots: u64,
    /// `GatewayDeath` events applied.
    pub gateway_deaths: u64,
    /// `Partition` events applied.
    pub partitions: u64,
    /// `Heal` events applied.
    pub heals: u64,
    /// `Degrade` events applied.
    pub degrades: u64,
    /// `ClearDegrade` events applied.
    pub degrade_clears: u64,
    /// `DuplicateIp` events applied.
    pub duplicate_ips: u64,
    /// `WrongMask` events applied.
    pub wrong_masks: u64,
    /// `ClockSkew` events applied.
    pub clock_skews: u64,
    /// Fault events naming an unknown node/segment (skipped).
    pub unresolved: u64,
    /// Frames swallowed by partitioned segments.
    pub frames_dropped: u64,
}

impl FaultStats {
    /// Total fault events applied (excluding per-frame drop counts).
    pub fn total(&self) -> u64 {
        self.node_crashes
            + self.node_reboots
            + self.gateway_deaths
            + self.partitions
            + self.heals
            + self.degrades
            + self.degrade_clears
            + self.duplicate_ips
            + self.wrong_masks
            + self.clock_skews
    }

    /// Bumps the counter for one applied fault kind.
    pub fn record(&mut self, kind: &FaultKind) {
        match kind {
            FaultKind::NodeCrash { .. } => self.node_crashes += 1,
            FaultKind::NodeReboot { .. } => self.node_reboots += 1,
            FaultKind::GatewayDeath { .. } => self.gateway_deaths += 1,
            FaultKind::Partition { .. } => self.partitions += 1,
            FaultKind::Heal { .. } => self.heals += 1,
            FaultKind::Degrade { .. } => self.degrades += 1,
            FaultKind::ClearDegrade { .. } => self.degrade_clears += 1,
            FaultKind::DuplicateIp { .. } => self.duplicate_ips += 1,
            FaultKind::WrongMask { .. } => self.wrong_masks += 1,
            FaultKind::ClockSkew { .. } => self.clock_skews += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_pair_events() {
        let plan = FaultPlan::new()
            .crash_between("piper", SimTime(5_000_000), SimDuration::from_secs(30))
            .partition_between("cs-net", SimTime(1_000_000), SimDuration::from_secs(10))
            .degrade_window(
                "backbone",
                SimTime(2_000_000),
                SimDuration::from_secs(60),
                0.4,
                SimDuration::from_millis(50),
            );
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.events[0].at(), SimTime(5_000_000));
        assert!(matches!(plan.events[1].kind, FaultKind::NodeReboot { .. }));
        assert_eq!(plan.events[5].at_micros, 62_000_000);
    }

    #[test]
    fn json_round_trip_preserves_every_kind() {
        let plan = FaultPlan::new()
            .at(
                SimTime(1),
                FaultKind::GatewayDeath {
                    gateway: "cs-gw".to_owned(),
                },
            )
            .at(
                SimTime(2),
                FaultKind::DuplicateIp {
                    node: "rogue".to_owned(),
                    ip: "128.138.243.10".parse().unwrap(),
                },
            )
            .at(
                SimTime(3),
                FaultKind::WrongMask {
                    node: "badmask".to_owned(),
                    prefix_len: 16,
                },
            )
            .at(
                SimTime(4),
                FaultKind::ClockSkew {
                    node: "bruno".to_owned(),
                    skew_micros: -86_400_000_000,
                },
            )
            .at(
                SimTime(5),
                FaultKind::Degrade {
                    segment: "cs-net".to_owned(),
                    extra_loss: 0.25,
                    extra_latency_micros: 30_000,
                },
            );
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
    }

    #[test]
    fn stats_record_by_kind() {
        let mut s = FaultStats::default();
        s.record(&FaultKind::NodeCrash {
            node: "x".to_owned(),
        });
        s.record(&FaultKind::Partition {
            segment: "y".to_owned(),
        });
        s.record(&FaultKind::Partition {
            segment: "y".to_owned(),
        });
        assert_eq!(s.node_crashes, 1);
        assert_eq!(s.partitions, 2);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn trace_names_and_targets() {
        let k = FaultKind::Heal {
            segment: "cs-net".to_owned(),
        };
        assert_eq!(k.trace_name(), "fault.heal");
        assert_eq!(k.target(), "cs-net");
    }
}
