//! # fremont-netsim
//!
//! A deterministic, packet-level discrete-event simulator of a campus
//! internetwork — the substrate this reproduction runs Fremont against in
//! place of the University of Colorado's 1993 production network.
//!
//! Nodes run real protocol state machines over byte-encoded packets from
//! [`fremont_net`]: ARP resolution with caches and timeouts, IP forwarding
//! with TTL and ICMP errors, UDP services (echo, RIP, DNS), directed
//! broadcasts, proxy ARP, and the specific *misbehaviors* the paper
//! catalogs (broken traceroute replies, silent gateways, promiscuous RIP
//! hosts, duplicate addresses, wrong masks).
//!
//! Explorer Modules run as [`process::Process`]es on simulated hosts and
//! can only interact with the network the way a real privileged UNIX
//! process could: send packets, receive the host's packets, read the ARP
//! cache, or tap the local segment.
//!
//! # Examples
//!
//! ```
//! use fremont_netsim::builder::TopologyBuilder;
//! use fremont_netsim::time::SimDuration;
//!
//! let mut b = TopologyBuilder::new();
//! let lan = b.segment("lab", "192.168.1.0/24");
//! b.host("alpha", lan, 10);
//! b.host("beta", lan, 11);
//! let (mut sim, topo) = b.build(1);
//! sim.run_for(SimDuration::from_secs(60));
//! assert_eq!(topo.hosts.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arp_cache;
pub mod builder;
pub mod campus;
pub mod dns_server;
pub mod engine;
pub mod faults;
pub mod node;
pub mod process;
pub mod routing;
#[doc(hidden)]
pub mod sched;
pub mod segment;
pub mod stats;
pub mod time;
pub mod traffic;
pub mod uptime;

pub use builder::{Topology, TopologyBuilder};
pub use engine::{ProcCtx, SendError, Sim};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultStats};
pub use node::{Behavior, Iface, Node, NodeKind, RipConfig, TracerouteBug};
pub use process::{IfaceInfo, ProcHandle, Process};
pub use segment::{CollisionModel, NodeId, Segment, SegmentCfg, SegmentId};
pub use time::{SimDuration, SimTime};
