//! Static routing tables with longest-prefix match.
//!
//! The topology builder computes every router's table by shortest path
//! over the subnet graph (hop-count metrics, like RIP's); hosts get
//! connected routes plus a default gateway. Tables are *static* because
//! the paper's campus ran largely on static/RIP routing — route *changes*
//! are modeled by taking nodes down, which is what Fremont is for.

use std::net::Ipv4Addr;

use fremont_net::Subnet;

/// One routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination subnet (use `0.0.0.0/0` for the default route).
    pub dest: Subnet,
    /// Next-hop gateway IP; `None` for directly connected subnets.
    pub gateway: Option<Ipv4Addr>,
    /// Egress interface index on the owning node.
    pub iface: usize,
    /// Hop-count metric (for RIP advertisement).
    pub metric: u32,
}

/// A routing table.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: Vec<Route>,
    version: u64,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable {
            routes: Vec::new(),
            version: 0,
        }
    }

    /// Adds a route. Replaces an existing route to the same destination if
    /// the new metric is not worse.
    pub fn add(&mut self, route: Route) {
        self.version += 1;
        if let Some(existing) = self.routes.iter_mut().find(|r| r.dest == route.dest) {
            if route.metric <= existing.metric {
                *existing = route;
            }
        } else {
            self.routes.push(route);
        }
    }

    /// Appends a route whose destination is known not to duplicate any
    /// existing entry (the builder's shortest-path fill adds one route
    /// per distinct segment), skipping [`RoutingTable::add`]'s replace
    /// scan. Equivalent to `add` whenever the precondition holds.
    pub(crate) fn add_distinct(&mut self, route: Route) {
        debug_assert!(
            self.routes.iter().all(|r| r.dest != route.dest),
            "add_distinct called with a duplicate destination"
        );
        self.version += 1;
        self.routes.push(route);
    }

    /// Monotone mutation counter; `routes` is private, so two reads of
    /// an unchanged version observe identical tables. Derived caches
    /// (the engine's RIP advertisement templates) key on this.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Reserves capacity for `extra` additional routes.
    pub fn reserve(&mut self, extra: usize) {
        self.routes.reserve(extra);
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<Route> {
        self.routes
            .iter()
            .filter(|r| r.dest.contains(dst))
            .max_by_key(|r| (r.dest.prefix_len(), core::cmp::Reverse(r.metric)))
            .copied()
    }

    /// All routes (for RIP advertisement and diagnostics).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subnet(s: &str) -> Subnet {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RoutingTable::new();
        t.add(Route {
            dest: subnet("0.0.0.0/0"),
            gateway: Some(ip("10.0.0.254")),
            iface: 0,
            metric: 1,
        });
        t.add(Route {
            dest: subnet("128.138.0.0/16"),
            gateway: Some(ip("10.0.0.1")),
            iface: 0,
            metric: 2,
        });
        t.add(Route {
            dest: subnet("128.138.238.0/24"),
            gateway: None,
            iface: 1,
            metric: 0,
        });

        assert_eq!(t.lookup(ip("128.138.238.9")).unwrap().iface, 1);
        assert_eq!(
            t.lookup(ip("128.138.1.1")).unwrap().gateway,
            Some(ip("10.0.0.1"))
        );
        assert_eq!(
            t.lookup(ip("192.52.106.4")).unwrap().gateway,
            Some(ip("10.0.0.254"))
        );
    }

    #[test]
    fn no_default_means_unreachable() {
        let mut t = RoutingTable::new();
        t.add(Route {
            dest: subnet("10.0.0.0/24"),
            gateway: None,
            iface: 0,
            metric: 0,
        });
        assert!(t.lookup(ip("10.0.0.7")).is_some());
        assert!(t.lookup(ip("10.0.1.7")).is_none());
    }

    #[test]
    fn better_metric_replaces() {
        let mut t = RoutingTable::new();
        t.add(Route {
            dest: subnet("10.1.0.0/16"),
            gateway: Some(ip("10.0.0.1")),
            iface: 0,
            metric: 5,
        });
        t.add(Route {
            dest: subnet("10.1.0.0/16"),
            gateway: Some(ip("10.0.0.2")),
            iface: 0,
            metric: 2,
        });
        assert_eq!(
            t.lookup(ip("10.1.2.3")).unwrap().gateway,
            Some(ip("10.0.0.2"))
        );
        // Worse metric does not replace.
        t.add(Route {
            dest: subnet("10.1.0.0/16"),
            gateway: Some(ip("10.0.0.3")),
            iface: 0,
            metric: 9,
        });
        assert_eq!(
            t.lookup(ip("10.1.2.3")).unwrap().gateway,
            Some(ip("10.0.0.2"))
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn equal_metric_replaces_for_freshness() {
        let mut t = RoutingTable::new();
        t.add(Route {
            dest: subnet("10.1.0.0/16"),
            gateway: Some(ip("10.0.0.1")),
            iface: 0,
            metric: 2,
        });
        t.add(Route {
            dest: subnet("10.1.0.0/16"),
            gateway: Some(ip("10.0.0.2")),
            iface: 0,
            metric: 2,
        });
        assert_eq!(
            t.lookup(ip("10.1.0.1")).unwrap().gateway,
            Some(ip("10.0.0.2"))
        );
    }
}
