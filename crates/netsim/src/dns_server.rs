//! Authoritative DNS server state (BIND stand-in).
//!
//! The campus runs name servers holding forward zones (name → A records)
//! and reverse `in-addr.arpa` zones (address → PTR records). Fremont's DNS
//! Explorer Module descends the reverse tree with zone transfers; we model
//! per-/24 child zones under the class-B reverse zone so that descent is a
//! real recursion (the parent zone answers AXFR with its SOA and the NS
//! delegations; each child zone answers with its PTR records).

use std::net::Ipv4Addr;

use fremont_net::dns::{DnsMessage, DnsName, DnsRecord, RData, Rcode, RecordType};

/// One authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    /// Zone origin (e.g. `cs.colorado.edu` or `238.138.128.in-addr.arpa`).
    pub origin: DnsName,
    /// Records in the zone (owner names must be under the origin).
    pub records: Vec<DnsRecord>,
    /// Child zone origins delegated from this zone.
    pub delegations: Vec<DnsName>,
    /// Whether zone transfers are permitted (servers can refuse AXFR).
    pub allow_axfr: bool,
}

impl Zone {
    /// Creates an empty zone.
    pub fn new(origin: DnsName) -> Self {
        Zone {
            origin,
            records: Vec::new(),
            delegations: Vec::new(),
            allow_axfr: true,
        }
    }

    /// Adds an A record.
    pub fn add_a(&mut self, name: DnsName, addr: Ipv4Addr) {
        self.records.push(DnsRecord::a(name, addr, 86400));
    }

    /// Adds a PTR record.
    pub fn add_ptr(&mut self, owner: DnsName, target: DnsName) {
        self.records.push(DnsRecord::ptr(owner, target, 86400));
    }
}

/// State of a node's authoritative DNS service.
#[derive(Debug, Clone, Default)]
pub struct DnsServerState {
    zones: Vec<Zone>,
}

impl DnsServerState {
    /// Creates a server with no zones.
    pub fn new() -> Self {
        DnsServerState { zones: Vec::new() }
    }

    /// Adds a zone.
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.push(zone);
    }

    /// Number of zones served.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Total records across zones.
    pub fn record_count(&self) -> usize {
        self.zones.iter().map(|z| z.records.len()).sum()
    }

    /// The most specific zone containing `name`, if any.
    fn zone_for(&self, name: &DnsName) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| name.ends_with(&z.origin))
            .max_by_key(|z| z.origin.labels().len())
    }

    /// The zone whose origin is exactly `name`.
    fn zone_at(&self, name: &DnsName) -> Option<&Zone> {
        self.zones.iter().find(|z| z.origin == *name)
    }

    /// Answers one query (UDP path: A/PTR/NS/ANY; TCP path: AXFR too).
    pub fn answer(&self, query: &DnsMessage) -> DnsMessage {
        let Some(q) = query.questions.first() else {
            return DnsMessage::response_to(query, Rcode::FormErr);
        };
        match q.qtype {
            RecordType::Axfr => self.answer_axfr(query, &q.name),
            _ => self.answer_lookup(query, &q.name, q.qtype),
        }
    }

    fn answer_lookup(&self, query: &DnsMessage, name: &DnsName, qtype: RecordType) -> DnsMessage {
        let Some(zone) = self.zone_for(name) else {
            return DnsMessage::response_to(query, Rcode::Refused);
        };
        let matches: Vec<DnsRecord> = zone
            .records
            .iter()
            .filter(|r| r.name == *name && (qtype == RecordType::Any || r.rtype == qtype))
            .cloned()
            .collect();
        if matches.is_empty() {
            // Exists under a delegation? Point at the child zone.
            if let Some(child) = zone.delegations.iter().find(|d| name.ends_with(d)) {
                let mut resp = DnsMessage::response_to(query, Rcode::NoError);
                resp.authoritative = false;
                resp.authorities.push(DnsRecord {
                    name: child.clone(),
                    rtype: RecordType::Ns,
                    ttl: 86400,
                    rdata: RData::Ns(child.child("ns").unwrap_or_else(|_| child.clone())),
                });
                return resp;
            }
            let name_exists = zone.records.iter().any(|r| r.name == *name);
            let rcode = if name_exists {
                Rcode::NoError // Name exists, no data of this type.
            } else {
                Rcode::NxDomain
            };
            return DnsMessage::response_to(query, rcode);
        }
        let mut resp = DnsMessage::response_to(query, Rcode::NoError);
        resp.answers = matches;
        resp
    }

    fn answer_axfr(&self, query: &DnsMessage, name: &DnsName) -> DnsMessage {
        let Some(zone) = self.zone_at(name) else {
            return DnsMessage::response_to(query, Rcode::NxDomain);
        };
        if !zone.allow_axfr {
            return DnsMessage::response_to(query, Rcode::Refused);
        }
        let mut resp = DnsMessage::response_to(query, Rcode::NoError);
        // SOA bracketing, as a real AXFR stream has.
        let soa = DnsRecord {
            name: zone.origin.clone(),
            rtype: RecordType::Soa,
            ttl: 86400,
            rdata: RData::Soa {
                mname: zone
                    .origin
                    .child("ns")
                    .unwrap_or_else(|_| zone.origin.clone()),
                rname: zone
                    .origin
                    .child("hostmaster")
                    .unwrap_or_else(|_| zone.origin.clone()),
                serial: 19930201,
                refresh: 3600,
                retry: 600,
                expire: 3_600_000,
                minimum: 86400,
            },
        };
        resp.answers.push(soa.clone());
        for d in &zone.delegations {
            resp.answers.push(DnsRecord {
                name: d.clone(),
                rtype: RecordType::Ns,
                ttl: 86400,
                rdata: RData::Ns(d.child("ns").unwrap_or_else(|_| d.clone())),
            });
        }
        resp.answers.extend(zone.records.iter().cloned());
        resp.answers.push(soa);
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn server() -> DnsServerState {
        let mut s = DnsServerState::new();
        let mut fwd = Zone::new(name("cs.colorado.edu"));
        fwd.add_a(
            name("bruno.cs.colorado.edu"),
            Ipv4Addr::new(128, 138, 243, 18),
        );
        fwd.add_a(
            name("cs-gw.cs.colorado.edu"),
            Ipv4Addr::new(128, 138, 243, 1),
        );
        fwd.add_a(
            name("cs-gw.cs.colorado.edu"),
            Ipv4Addr::new(128, 138, 238, 1),
        );
        s.add_zone(fwd);

        let mut rev_parent = Zone::new(name("138.128.in-addr.arpa"));
        rev_parent
            .delegations
            .push(name("243.138.128.in-addr.arpa"));
        s.add_zone(rev_parent);

        let mut rev = Zone::new(name("243.138.128.in-addr.arpa"));
        rev.add_ptr(
            name("18.243.138.128.in-addr.arpa"),
            name("bruno.cs.colorado.edu"),
        );
        s.add_zone(rev);
        s
    }

    #[test]
    fn a_lookup() {
        let s = server();
        let q = DnsMessage::query(1, name("bruno.cs.colorado.edu"), RecordType::A);
        let r = s.answer(&q);
        assert_eq!(r.rcode, Rcode::NoError);
        assert_eq!(r.answers.len(), 1);
        match &r.answers[0].rdata {
            RData::A(a) => assert_eq!(*a, Ipv4Addr::new(128, 138, 243, 18)),
            other => panic!("wrong rdata {other:?}"),
        }
    }

    #[test]
    fn multi_a_for_gateway() {
        let s = server();
        let q = DnsMessage::query(2, name("cs-gw.cs.colorado.edu"), RecordType::A);
        let r = s.answer(&q);
        assert_eq!(
            r.answers.len(),
            2,
            "gateways have one A record per interface"
        );
    }

    #[test]
    fn nxdomain_for_unknown_name() {
        let s = server();
        let q = DnsMessage::query(3, name("nosuch.cs.colorado.edu"), RecordType::A);
        assert_eq!(s.answer(&q).rcode, Rcode::NxDomain);
    }

    #[test]
    fn refused_outside_authority() {
        let s = server();
        let q = DnsMessage::query(4, name("mit.edu"), RecordType::A);
        assert_eq!(s.answer(&q).rcode, Rcode::Refused);
    }

    #[test]
    fn axfr_returns_zone_with_soa_bracket_and_delegations() {
        let s = server();
        let q = DnsMessage::query(5, name("138.128.in-addr.arpa"), RecordType::Axfr);
        let r = s.answer(&q);
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(r.answers.len() >= 3);
        assert_eq!(r.answers.first().unwrap().rtype, RecordType::Soa);
        assert_eq!(r.answers.last().unwrap().rtype, RecordType::Soa);
        assert!(r
            .answers
            .iter()
            .any(|rr| rr.rtype == RecordType::Ns && rr.name == name("243.138.128.in-addr.arpa")));
    }

    #[test]
    fn axfr_child_zone_has_ptrs() {
        let s = server();
        let q = DnsMessage::query(6, name("243.138.128.in-addr.arpa"), RecordType::Axfr);
        let r = s.answer(&q);
        assert!(r.answers.iter().any(|rr| rr.rtype == RecordType::Ptr));
    }

    #[test]
    fn axfr_can_be_refused() {
        let mut s = server();
        s.zones[2].allow_axfr = false;
        let q = DnsMessage::query(7, name("243.138.128.in-addr.arpa"), RecordType::Axfr);
        assert_eq!(s.answer(&q).rcode, Rcode::Refused);
    }

    #[test]
    fn axfr_unknown_zone_is_nxdomain() {
        let s = server();
        let q = DnsMessage::query(8, name("244.138.128.in-addr.arpa"), RecordType::Axfr);
        assert_eq!(s.answer(&q).rcode, Rcode::NxDomain);
    }

    #[test]
    fn delegation_referral_on_lookup() {
        let s = server();
        // PTR lookup under the delegated child through the parent: the
        // parent zone does NOT hold the record; most-specific zone wins, so
        // this is answered from the child directly. Ask for something only
        // the parent could referral-answer:
        let mut s2 = DnsServerState::new();
        let mut parent = Zone::new(name("138.128.in-addr.arpa"));
        parent.delegations.push(name("243.138.128.in-addr.arpa"));
        s2.add_zone(parent);
        let q = DnsMessage::query(9, name("18.243.138.128.in-addr.arpa"), RecordType::Ptr);
        let r = s2.answer(&q);
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(!r.authorities.is_empty(), "referral to the child zone");
        assert!(!r.authoritative);
        // And the full server answers it authoritatively from the child.
        let r = s.answer(&q);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn no_question_is_formerr() {
        let s = server();
        let mut q = DnsMessage::query(10, name("x"), RecordType::A);
        q.questions.clear();
        assert_eq!(s.answer(&q).rcode, Rcode::FormErr);
    }
}
