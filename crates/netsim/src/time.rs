//! Simulation time.
//!
//! The simulator's clock has microsecond resolution: fine enough to model
//! Ethernet reply collisions (the Broadcast Ping failure mode in Table 5),
//! coarse enough to run multi-week discovery schedules (Table 4's module
//! intervals) without overflow — `u64` microseconds covers ~584,000 years.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use fremont_journal::time::JTime;

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Converts to a journal timestamp (whole seconds).
    pub const fn to_jtime(self) -> JTime {
        JTime(self.0 / 1_000_000)
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// An instant `h` whole hours after the simulation epoch. Chaos
    /// scenarios and the model checker schedule faults on hour marks.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000_000)
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000_000)
    }

    /// Microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds in the span.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by an integer factor.
    pub const fn times(self, n: u64) -> Self {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000_000;
        let micros = self.0 % 1_000_000;
        write!(f, "{}.{:06}s", secs, micros)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(1).as_secs(), 60);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3600);
        assert_eq!(SimDuration::from_days(1).as_secs(), 86400);
        assert_eq!(SimDuration::from_secs(5).times(3).as_secs(), 15);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(t.as_secs(), 10);
        assert_eq!(
            (t + SimDuration::from_secs(5)) - t,
            SimDuration::from_secs(5)
        );
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(10) - SimDuration::from_secs(4),
            SimDuration::from_secs(6)
        );
        assert_eq!(
            SimDuration::from_secs(4) - SimDuration::from_secs(10),
            SimDuration::ZERO,
            "duration subtraction saturates"
        );
    }

    #[test]
    fn jtime_conversion() {
        let t = SimTime::ZERO + SimDuration::from_mins(30);
        assert_eq!(t.to_jtime(), JTime::from_mins(30));
        // Sub-second truncation.
        assert_eq!(SimTime(1_999_999).to_jtime(), JTime(1));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(1_500_000).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(500).to_string(), "500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }
}
