//! Runtime half of the lock-order acceptance criterion: with the
//! `lock-sanitizer` feature on, every labeled acquisition is checked
//! against `crates/lint/lock-order.golden` — the same DAG the static
//! `lock-order`/`shard-lock-order` rules export — and a deliberately
//! inverted acquisition panics with both label chains.
//!
//! Run with: `cargo test -p fremont-journal --features lock-sanitizer`
#![cfg(feature = "lock-sanitizer")]

use std::net::Ipv4Addr;

use fremont_journal::observation::{Observation, Source};
use fremont_journal::query::InterfaceQuery;
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use parking_lot::{sanitizer, Mutex, RwLock};

/// Runs `f` on a fresh thread and returns the panic message, or `None`
/// if it completed. A fresh thread keeps the sanitizer's thread-local
/// held stack isolated from the harness thread.
fn panic_message_of(f: impl FnOnce() + Send + 'static) -> Option<String> {
    match std::thread::Builder::new()
        .name("sanitizer-probe".into())
        .spawn(f)
        .expect("spawn probe thread")
        .join()
    {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "<non-string panic>".to_owned()),
        ),
    }
}

#[test]
fn the_embedded_dag_is_nonempty() {
    assert!(
        sanitizer::dag_edges() >= 3,
        "lock-order.golden should carry the meta->shard and wal->* edges"
    );
}

#[test]
fn sanctioned_meta_then_shard_order_is_allowed() {
    let ok = panic_message_of(|| {
        let meta = RwLock::labeled("journal.meta", 0u32);
        let shard = RwLock::labeled_ranked("journal.shard", 0, 0u32);
        let gate = meta.write();
        let s = shard.read();
        assert_eq!(*gate + *s, 0);
        assert_eq!(
            sanitizer::held_labels(),
            vec!["journal.meta", "journal.shard"]
        );
    });
    assert_eq!(ok, None, "the committed DAG blesses meta -> shard");
}

#[test]
fn inverted_shard_then_meta_acquisition_panics() {
    // The dynamic half of the acceptance criterion: the exact inversion
    // the static mutation test seeds into the store
    // (crates/lint/tests/workspace_clean.rs) caught at runtime.
    let msg = panic_message_of(|| {
        let meta = RwLock::labeled("journal.meta", 0u32);
        let shard = RwLock::labeled_ranked("journal.shard", 0, 0u32);
        let s = shard.read();
        let gate = meta.write(); // shard -> meta: not in the DAG.
        drop(gate);
        drop(s);
    })
    .expect("inverted acquisition must panic");
    assert!(msg.contains("fremont lock sanitizer"), "{msg}");
    assert!(
        msg.contains("journal.shard#0 -> journal.meta#0"),
        "the report carries this thread's label chain: {msg}"
    );
    assert!(
        msg.contains("last holder of `journal.meta`"),
        "the report carries the other stack: {msg}"
    );
}

#[test]
fn shard_ranks_must_ascend() {
    let ok = panic_message_of(|| {
        let a = RwLock::labeled_ranked("journal.shard", 0, ());
        let b = RwLock::labeled_ranked("journal.shard", 3, ());
        let _ga = a.read();
        let _gb = b.read(); // 0 -> 3 ascends: fine.
    });
    assert_eq!(ok, None);

    let msg = panic_message_of(|| {
        let a = RwLock::labeled_ranked("journal.shard", 3, ());
        let b = RwLock::labeled_ranked("journal.shard", 0, ());
        let _ga = a.read();
        let _gb = b.read(); // 3 -> 0 descends: the classic AB/BA pair.
    })
    .expect("descending shard acquisition must panic");
    assert!(msg.contains("rank 0"), "{msg}");
    assert!(msg.contains("rank 3"), "{msg}");
}

#[test]
fn unlabeled_locks_are_never_tracked() {
    let ok = panic_message_of(|| {
        // Arbitrary nesting of unlabeled locks is the untracked world;
        // the sanitizer must not see them at all.
        let a = Mutex::new(1u32);
        let b = RwLock::new(2u32);
        let ga = a.lock();
        let gb = b.write();
        assert_eq!(*ga + *gb, 3);
        assert!(sanitizer::held_labels().is_empty());
    });
    assert_eq!(ok, None);
}

#[test]
fn guards_release_out_of_order() {
    let ok = panic_message_of(|| {
        let meta = RwLock::labeled("journal.meta", ());
        let shard = RwLock::labeled_ranked("journal.shard", 0, ());
        let gate = meta.write();
        let s = shard.read();
        drop(gate); // Release the gate first, keep the shard.
        assert_eq!(sanitizer::held_labels(), vec!["journal.shard"]);
        drop(s);
        assert!(sanitizer::held_labels().is_empty());
    });
    assert_eq!(ok, None);
}

#[test]
fn the_real_journal_runs_clean_under_the_sanitizer() {
    // Smoke the sanctioned paths end to end: single applies, the
    // batched write path (meta gate then ascending shard sweep), and
    // cross-shard reads all stay inside the committed DAG.
    let ok = panic_message_of(|| {
        let j = Journal::with_shards(8);
        for i in 1..=32u8 {
            j.apply_shared(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, i / 8, i)),
                JTime(u64::from(i)),
            );
        }
        let obs: Vec<_> = (1..=16u8)
            .map(|i| Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 1, 0, i)))
            .collect();
        j.apply_batch(obs.iter().map(|o| (o, JTime(100))));
        assert_eq!(j.get_interfaces(&InterfaceQuery::all()).len(), 48);
        j.check_invariants().unwrap();
    });
    assert_eq!(ok, None, "sanctioned journal paths must not trip the DAG");
}
