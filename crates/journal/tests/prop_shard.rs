//! Property tests proving the sharded store is observationally
//! equivalent to a single-shard reference.
//!
//! The reference model is `Journal::with_shards(1)` — one shard means
//! one record map and one set of indexes, i.e. the pre-sharding store.
//! Every store/query/delete sequence must produce identical results at
//! any shard count, and the batched write path must be equivalent to
//! applying the same observations one at a time.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use fremont_journal::observation::{Fact, Observation, Source};
use fremont_journal::query::{InterfaceQuery, SubnetQuery};
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::MacAddr;

fn arb_source() -> impl Strategy<Value = Source> {
    prop_oneof![
        Just(Source::ArpWatch),
        Just(Source::EtherHostProbe),
        Just(Source::SeqPing),
        Just(Source::BrdcastPing),
        Just(Source::SubnetMasks),
        Just(Source::Traceroute),
        Just(Source::RipWatch),
        Just(Source::Dns),
    ]
}

/// Small pools so observations collide and exercise merging.
fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    (0u8..4, 0u8..8).prop_map(|(s, h)| Ipv4Addr::new(10, 0, s, h))
}

fn arb_mac() -> impl Strategy<Value = Option<MacAddr>> {
    proptest::option::of((0u8..8).prop_map(|b| MacAddr::new([8, 0, 0x20, 0, 0, b])))
}

/// Mixed observation vocabulary: interfaces (the sharded part), plus
/// subnets, gateways, and RIP sources (the meta part), so the test
/// exercises the cross-partition paths — gateway members living in
/// shards, subnet masks folding into interface records.
fn arb_obs() -> impl Strategy<Value = Observation> {
    prop_oneof![
        (arb_source(), arb_ip(), arb_mac()).prop_map(|(src, ip, mac)| match mac {
            Some(m) => Observation::arp_pair(src, ip, m),
            None => Observation::ip_alive(src, ip),
        }),
        (arb_source(), arb_ip()).prop_map(|(src, ip)| {
            Observation::named_ip(src, ip, &format!("host-{}", ip.octets()[3]))
        }),
        (arb_source(), 0u8..4, 0u8..2).prop_map(|(src, s, assumed)| {
            Observation::subnet(src, format!("10.0.{s}.0/24").parse().unwrap(), assumed == 0)
        }),
        (arb_source(), arb_ip(), arb_ip(), 0u8..4).prop_map(|(src, a, b, s)| {
            Observation::new(
                src,
                Fact::Gateway {
                    interface_ips: vec![a, b],
                    interface_names: vec![],
                    subnets: vec![format!("10.0.{s}.0/24").parse().unwrap()],
                },
            )
        }),
        (arb_source(), arb_ip(), arb_mac(), 1u32..30).prop_map(|(src, ip, mac, n)| {
            Observation::new(
                src,
                Fact::RipSource {
                    ip,
                    mac,
                    advertised_routes: n,
                    promiscuous: n > 25,
                },
            )
        }),
    ]
}

/// Asserts every externally observable surface of the two journals
/// agrees: stats, full and keyed interface queries, modification
/// order, gateways, subnets, and the structural invariants.
fn assert_equivalent(reference: &Journal, sharded: &Journal) {
    reference.check_invariants().unwrap();
    sharded.check_invariants().unwrap();
    assert_eq!(reference.stats(), sharded.stats());
    assert_eq!(
        reference.get_interfaces(&InterfaceQuery::all()),
        sharded.get_interfaces(&InterfaceQuery::all())
    );
    assert_eq!(
        reference.interfaces_by_modification(),
        sharded.interfaces_by_modification()
    );
    assert_eq!(reference.get_gateways(), sharded.get_gateways());
    assert_eq!(
        reference.get_subnets(&SubnetQuery::all()),
        sharded.get_subnets(&SubnetQuery::all())
    );
    // Keyed lookups over the whole (small) IP pool, hit or miss.
    for s in 0..4u8 {
        for h in 0..8u8 {
            let q = InterfaceQuery::by_ip(Ipv4Addr::new(10, 0, s, h));
            assert_eq!(reference.get_interfaces(&q), sharded.get_interfaces(&q));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence property: any shard count, any
    /// observation sequence, identical observable state.
    #[test]
    fn sharded_equals_single_shard_reference(
        obs in proptest::collection::vec(arb_obs(), 0..120),
        shards in prop_oneof![Just(2usize), Just(4), Just(7), Just(8)],
    ) {
        let mut reference = Journal::with_shards(1);
        let mut sharded = Journal::with_shards(shards);
        for (i, o) in obs.iter().enumerate() {
            reference.apply(o, JTime(i as u64));
            sharded.apply(o, JTime(i as u64));
        }
        assert_equivalent(&reference, &sharded);
    }

    /// The batched write path is equivalent to one-at-a-time applies:
    /// the same observations, chunked arbitrarily and applied through
    /// `apply_batch`, land the sharded store in the reference state.
    #[test]
    fn batched_applies_equal_sequential_applies(
        obs in proptest::collection::vec(arb_obs(), 1..120),
        chunk in 1usize..16,
        shards in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let mut reference = Journal::with_shards(1);
        for (i, o) in obs.iter().enumerate() {
            reference.apply(o, JTime(i as u64));
        }
        let sharded = Journal::with_shards(shards);
        let mut next = 0u64;
        for run in obs.chunks(chunk) {
            sharded.apply_batch(run.iter().map(|o| {
                let t = JTime(next);
                next += 1;
                (o, t)
            }));
        }
        assert_equivalent(&reference, &sharded);
    }

    /// The grouped batch path (one meta acquisition, one shard lock per
    /// group, pre-assigned sequence blocks) is equivalent to the legacy
    /// per-observation batch loop AND to one-at-a-time applies — for any
    /// batch chunking, at 1/4/8 shards, whether groups commit inline or
    /// on forced parallel workers. `assert_equivalent` pins observation
    /// order end to end: posting-list order inside keyed queries (idx
    /// sequence assignment) and `interfaces_by_modification` (mod
    /// sequence assignment) must all agree with the reference.
    #[test]
    fn grouped_batches_equal_sequential_batches_and_applies(
        obs in proptest::collection::vec(arb_obs(), 1..120),
        chunk in 1usize..16,
        shards in prop_oneof![Just(1usize), Just(4), Just(8)],
        parallel in any::<bool>(),
    ) {
        let mut reference = Journal::with_shards(1);
        for (i, o) in obs.iter().enumerate() {
            reference.apply(o, JTime(i as u64));
        }
        let sequential = Journal::with_shards(shards);
        let grouped = Journal::with_shards(shards);
        let mut next = 0u64;
        for run in obs.chunks(chunk) {
            let stamped: Vec<(&Observation, JTime)> = run
                .iter()
                .map(|o| {
                    let t = JTime(next);
                    next += 1;
                    (o, t)
                })
                .collect();
            let a = sequential.apply_batch_sequential(stamped.iter().copied());
            let b = grouped.apply_batch_grouped_forced(stamped.iter().copied(), parallel);
            prop_assert_eq!(a, b, "per-batch summaries must agree");
        }
        assert_equivalent(&reference, &sequential);
        assert_equivalent(&reference, &grouped);
        assert_equivalent(&sequential, &grouped);
    }

    /// The canonical-snapshot fingerprint the model checker prunes on
    /// is shard-count independent: the same observations land on the
    /// same fingerprint however the interface records are partitioned.
    #[test]
    fn fingerprint_is_shard_count_independent(
        obs in proptest::collection::vec(arb_obs(), 0..120),
        shards in prop_oneof![Just(2usize), Just(4), Just(7), Just(8)],
    ) {
        let mut reference = Journal::with_shards(1);
        let mut sharded = Journal::with_shards(shards);
        for (i, o) in obs.iter().enumerate() {
            reference.apply(o, JTime(i as u64));
            sharded.apply(o, JTime(i as u64));
        }
        prop_assert_eq!(reference.fingerprint(), sharded.fingerprint());
    }

    /// Deleting the same records from both stores keeps them equal —
    /// index removal and gateway back-pointer cleanup agree per shard.
    #[test]
    fn deletion_preserves_equivalence(
        obs in proptest::collection::vec(arb_obs(), 1..80),
        shards in prop_oneof![Just(2usize), Just(4), Just(8)],
        nth in 1usize..4,
    ) {
        let mut reference = Journal::with_shards(1);
        let mut sharded = Journal::with_shards(shards);
        for (i, o) in obs.iter().enumerate() {
            reference.apply(o, JTime(i as u64));
            sharded.apply(o, JTime(i as u64));
        }
        // Identical apply order assigns identical interface ids.
        let victims: Vec<_> = reference
            .get_interfaces(&InterfaceQuery::all())
            .iter()
            .step_by(nth)
            .map(|r| r.id)
            .collect();
        for id in victims {
            prop_assert_eq!(reference.delete_interface(id), sharded.delete_interface(id));
        }
        assert_equivalent(&reference, &sharded);
    }
}
