//! Integration test: the Journal Server over real TCP sockets.

use std::net::Ipv4Addr;

use fremont_journal::client::RemoteJournal;
use fremont_journal::observation::{Fact, Observation, Source};
use fremont_journal::query::{InterfaceQuery, SubnetQuery};
use fremont_journal::server::{JournalAccess, JournalServer, SharedJournal};
use fremont_journal::time::JTime;

#[test]
fn store_get_delete_over_tcp() {
    let shared = SharedJournal::new();
    let server = JournalServer::start(shared.clone(), "127.0.0.1:0", None).unwrap();
    let client = RemoteJournal::connect(&server.addr().to_string()).unwrap();

    // Store.
    let summary = client
        .store(
            JTime(10),
            &[
                Observation::arp_pair(
                    Source::ArpWatch,
                    Ipv4Addr::new(10, 0, 0, 1),
                    "08:00:20:00:00:01".parse().unwrap(),
                ),
                Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 0, 2)),
                Observation::subnet(Source::RipWatch, "10.0.0.0/24".parse().unwrap(), true),
            ],
        )
        .unwrap();
    assert_eq!(summary.created, 3);

    // Get.
    let ifaces = client.interfaces(&InterfaceQuery::all()).unwrap();
    assert_eq!(ifaces.len(), 2);
    let by_ip = client
        .interfaces(&InterfaceQuery::by_ip(Ipv4Addr::new(10, 0, 0, 1)))
        .unwrap();
    assert_eq!(by_ip.len(), 1);
    assert_eq!(by_ip[0].verified, JTime(10));
    let subnets = client.subnets(&SubnetQuery::all()).unwrap();
    assert_eq!(subnets.len(), 1);

    // The in-process view and the remote view agree.
    assert_eq!(shared.stats().unwrap().interfaces, 2);

    // Delete.
    assert!(client.delete(by_ip[0].id).unwrap());
    assert!(!client.delete(by_ip[0].id).unwrap());
    assert_eq!(client.stats().unwrap().interfaces, 1);

    server.shutdown();
}

#[test]
fn multiple_clients_share_one_journal() {
    let shared = SharedJournal::new();
    let server = JournalServer::start(shared, "127.0.0.1:0", None).unwrap();
    let addr = server.addr().to_string();

    // Two "explorer modules" on separate connections, plus a reader.
    let a = RemoteJournal::connect(&addr).unwrap();
    let b = RemoteJournal::connect(&addr).unwrap();
    a.store(
        JTime(1),
        &[Observation::ip_alive(
            Source::SeqPing,
            Ipv4Addr::new(10, 1, 0, 1),
        )],
    )
    .unwrap();
    b.store(
        JTime(2),
        &[Observation::arp_pair(
            Source::ArpWatch,
            Ipv4Addr::new(10, 1, 0, 1),
            "08:00:20:aa:00:01".parse().unwrap(),
        )],
    )
    .unwrap();

    let reader = RemoteJournal::connect(&addr).unwrap();
    let recs = reader.interfaces(&InterfaceQuery::all()).unwrap();
    assert_eq!(
        recs.len(),
        1,
        "cross-module correlation through one journal"
    );
    let r = &recs[0];
    assert!(r.sources.contains(Source::SeqPing));
    assert!(r.sources.contains(Source::ArpWatch));
    assert_eq!(r.discovered, JTime(1));
    assert_eq!(r.verified, JTime(2));

    server.shutdown();
}

#[test]
fn gateway_observations_over_tcp() {
    let server = JournalServer::start(SharedJournal::new(), "127.0.0.1:0", None).unwrap();
    let client = RemoteJournal::connect(&server.addr().to_string()).unwrap();
    client
        .store(
            JTime(5),
            &[Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![Ipv4Addr::new(128, 138, 238, 1)],
                    interface_names: vec![],
                    subnets: vec![
                        "128.138.238.0/24".parse().unwrap(),
                        "128.138.240.0/24".parse().unwrap(),
                    ],
                },
            )],
        )
        .unwrap();
    let gws = client.gateways().unwrap();
    assert_eq!(gws.len(), 1);
    assert_eq!(gws[0].subnets.len(), 2);
    let with_gw = client
        .subnets(&SubnetQuery {
            has_gateway: Some(true),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(with_gw.len(), 2);
    server.shutdown();
}

#[test]
fn snapshot_on_shutdown() {
    let dir = std::env::temp_dir().join("fremont-server-snap-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.json");
    std::fs::remove_file(&path).ok();

    let server =
        JournalServer::start(SharedJournal::new(), "127.0.0.1:0", Some(path.clone())).unwrap();
    let client = RemoteJournal::connect(&server.addr().to_string()).unwrap();
    client
        .store(
            JTime(1),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 9, 9, 9),
            )],
        )
        .unwrap();
    // Explicit flush writes too.
    client.flush().unwrap();
    assert!(path.exists());
    server.shutdown();

    let snap = fremont_journal::snapshot::JournalSnapshot::load(&path).unwrap();
    assert_eq!(snap.interfaces.len(), 1);
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Error-path behaviour: a hostile or broken client must not take the
// server down, and each failure mode must land in its own error counter.

/// Polls a telemetry counter until it reaches `want` (worker threads
/// update counters slightly after the client observes the disconnect).
fn wait_for_counter(rec: &fremont_telemetry::Recorder, name: &str, label: &str, want: u64) -> u64 {
    for _ in 0..200 {
        let got = rec.counter(name, label);
        if got >= want {
            return got;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    rec.counter(name, label)
}

/// After the bad connection, a fresh client must still get service.
fn assert_server_alive(addr: &str) {
    let client = RemoteJournal::connect(addr).unwrap();
    let summary = client
        .store(
            JTime(2),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 1, 2, 3),
            )],
        )
        .unwrap();
    assert_eq!(summary.created, 1);
}

#[test]
fn malformed_frame_counts_and_server_survives() {
    use std::io::Write;
    let (telemetry, rec) = fremont_telemetry::Telemetry::recording();
    let server =
        JournalServer::start_with_telemetry(SharedJournal::new(), "127.0.0.1:0", None, telemetry)
            .unwrap();
    let addr = server.addr().to_string();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    let garbage = b"this is not json";
    raw.write_all(&(garbage.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(garbage).unwrap();
    raw.flush().unwrap();
    drop(raw);

    let errs = wait_for_counter(
        &rec,
        "fremont_journal_rpc_errors_total",
        "kind=\"malformed\"",
        1,
    );
    assert_eq!(errs, 1, "malformed frame must hit the malformed counter");
    assert_server_alive(&addr);
    server.shutdown();
    assert!(rec.counter("fremont_journal_connections_total", "") >= 2);
}

#[test]
fn oversized_frame_counts_and_server_survives() {
    use std::io::Write;
    let (telemetry, rec) = fremont_telemetry::Telemetry::recording();
    let server =
        JournalServer::start_with_telemetry(SharedJournal::new(), "127.0.0.1:0", None, telemetry)
            .unwrap();
    let addr = server.addr().to_string();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    // A length header far past MAX_FRAME; the server must reject it from
    // the header alone, without trying to buffer 2 GiB.
    raw.write_all(&0x7fff_ffffu32.to_be_bytes()).unwrap();
    raw.flush().unwrap();

    let errs = wait_for_counter(
        &rec,
        "fremont_journal_rpc_errors_total",
        "kind=\"oversized\"",
        1,
    );
    assert_eq!(errs, 1, "oversized frame must hit the oversized counter");
    assert_server_alive(&addr);
    server.shutdown();
}

#[test]
fn mid_request_disconnect_counts_and_server_survives() {
    use std::io::Write;
    let (telemetry, rec) = fremont_telemetry::Telemetry::recording();
    let server =
        JournalServer::start_with_telemetry(SharedJournal::new(), "127.0.0.1:0", None, telemetry)
            .unwrap();
    let addr = server.addr().to_string();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    // Promise a 1000-byte frame, deliver only 3 bytes, then vanish.
    raw.write_all(&1000u32.to_be_bytes()).unwrap();
    raw.write_all(b"abc").unwrap();
    raw.flush().unwrap();
    drop(raw);

    let errs = wait_for_counter(&rec, "fremont_journal_rpc_errors_total", "kind=\"io\"", 1);
    assert_eq!(errs, 1, "truncated frame must hit the io counter");
    assert_server_alive(&addr);
    server.shutdown();
}
