//! RPC-boundary tracing under faults: a connection that dies mid-RPC
//! must leave the server-side span tree balanced (every opened span
//! closed — the trace still validates) and must be counted as an
//! aborted RPC in `fremont_journal_rpc_aborted_total`.

use std::io::{BufReader, Write};
use std::net::{Ipv4Addr, TcpStream};

use fremont_journal::observation::{Observation, Source};
use fremont_journal::proto::{
    read_frame, write_frame, Request, RequestEnvelope, Response, StoreBatchItem, TraceContext,
};
use fremont_journal::server::{JournalServer, SharedJournal};
use fremont_journal::time::JTime;
use fremont_telemetry::trace::{parse_jsonl, validate};
use fremont_telemetry::Telemetry;

#[test]
fn mid_rpc_disconnect_balances_spans_and_counts_the_abort() {
    let (telemetry, rec) = Telemetry::recording();
    let server =
        JournalServer::start_with_telemetry(SharedJournal::new(), "127.0.0.1:0", None, telemetry)
            .unwrap();

    // A traced StoreBatch that completes normally: the server opens its
    // per-RPC span tree (rpc -> decode/apply/reply) under our claimed
    // parent span and closes it with the reply.
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    let env = RequestEnvelope {
        ctx: TraceContext {
            trace_id: 9,
            parent_span: 5,
            at_micros: 1_000,
        },
        req: Request::StoreBatch {
            batches: vec![StoreBatchItem {
                now: JTime(1),
                observations: vec![Observation::ip_alive(
                    Source::SeqPing,
                    Ipv4Addr::new(10, 9, 0, 1),
                )],
            }],
        },
    };
    write_frame(&mut sock, &env).unwrap();
    let reply: Response = read_frame(&mut BufReader::new(&sock)).unwrap().unwrap();
    assert!(matches!(reply, Response::Stored(_)), "got {reply:?}");

    // Now the fault: a second frame whose header promises 100 bytes but
    // whose body stops after three — then the connection dies. On the
    // server this is a read failure inside a frame, not a clean EOF.
    sock.write_all(&100u32.to_be_bytes()).unwrap();
    sock.write_all(b"abc").unwrap();
    drop(sock);

    // The handler notices asynchronously; wait for the abort counter.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while rec.counter("fremont_journal_rpc_aborted_total", "") == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "aborted RPC was never counted"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    server.shutdown();

    assert_eq!(rec.counter("fremont_journal_rpc_aborted_total", ""), 1);

    // The abort must not leave a dangling span: every server span that
    // opened also closed, so the whole trace still validates, and the
    // traced RPC's tree is present under the caller's context.
    let events = parse_jsonl(&rec.trace_jsonl()).unwrap();
    let summary = validate(&events).expect("server trace must stay balanced after an abort");
    assert!(summary.spans >= 4, "rpc/decode/apply/reply: {summary:?}");
    let rpc = events
        .iter()
        .find(|e| e.kind == "span_start" && e.name == "server.rpc")
        .expect("traced RPC opened a server.rpc span");
    assert_eq!(rpc.trace_id, 9);
    assert_eq!(rpc.remote_parent, 5);
    assert_eq!(rpc.at, 1_000);
}
