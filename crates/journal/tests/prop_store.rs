//! Property tests over the Journal store's merge semantics.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use fremont_journal::observation::{Observation, Source};
use fremont_journal::query::InterfaceQuery;
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::MacAddr;

fn arb_source() -> impl Strategy<Value = Source> {
    prop_oneof![
        Just(Source::ArpWatch),
        Just(Source::EtherHostProbe),
        Just(Source::SeqPing),
        Just(Source::BrdcastPing),
        Just(Source::SubnetMasks),
        Just(Source::Traceroute),
        Just(Source::RipWatch),
        Just(Source::Dns),
    ]
}

/// Small pools so observations collide and exercise merging.
fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    (0u8..16).prop_map(|h| Ipv4Addr::new(10, 0, 0, h))
}

fn arb_mac() -> impl Strategy<Value = Option<MacAddr>> {
    proptest::option::of((0u8..8).prop_map(|b| MacAddr::new([8, 0, 0x20, 0, 0, b])))
}

fn arb_obs() -> impl Strategy<Value = Observation> {
    (arb_source(), arb_ip(), arb_mac()).prop_map(|(src, ip, mac)| match mac {
        Some(m) => Observation::arp_pair(src, ip, m),
        None => Observation::ip_alive(src, ip),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexes_stay_consistent(obs in proptest::collection::vec(arb_obs(), 0..200)) {
        let mut j = Journal::new();
        for (i, o) in obs.iter().enumerate() {
            j.apply(o, JTime(i as u64));
        }
        j.check_invariants().unwrap();
    }

    #[test]
    fn apply_is_idempotent_on_content(obs in proptest::collection::vec(arb_obs(), 1..50)) {
        let mut j = Journal::new();
        for o in &obs {
            j.apply(o, JTime(1));
        }
        let count = j.stats().interfaces;
        // Replaying the same batch at a later time creates nothing new.
        for o in &obs {
            j.apply(o, JTime(2));
        }
        prop_assert_eq!(j.stats().interfaces, count);
        j.check_invariants().unwrap();
    }

    #[test]
    fn every_observed_ip_is_queryable(obs in proptest::collection::vec(arb_obs(), 1..100)) {
        let mut j = Journal::new();
        for o in &obs {
            j.apply(o, JTime(0));
        }
        for o in &obs {
            if let fremont_journal::observation::Fact::Interface { ip: Some(ip), .. } = &o.fact {
                let found = j.get_interfaces(&InterfaceQuery::by_ip(*ip));
                prop_assert!(!found.is_empty(), "observed ip {} not found", ip);
            }
        }
    }

    #[test]
    fn timestamps_are_monotone(obs in proptest::collection::vec(arb_obs(), 1..100)) {
        let mut j = Journal::new();
        for (i, o) in obs.iter().enumerate() {
            j.apply(o, JTime(i as u64));
        }
        for r in j.get_interfaces(&InterfaceQuery::all()) {
            prop_assert!(r.discovered <= r.changed);
            prop_assert!(r.changed <= r.verified);
        }
    }

    #[test]
    fn snapshot_restore_preserves_everything(obs in proptest::collection::vec(arb_obs(), 0..100)) {
        let mut j = Journal::new();
        for (i, o) in obs.iter().enumerate() {
            j.apply(o, JTime(i as u64));
        }
        let snap = j.to_snapshot();
        let j2 = Journal::from_snapshot(&snap);
        j2.check_invariants().unwrap();
        prop_assert_eq!(j2.stats(), j.stats());
        let mut a = j.get_interfaces(&InterfaceQuery::all());
        let mut b = j2.get_interfaces(&InterfaceQuery::all());
        a.sort_by_key(|r| r.id);
        b.sort_by_key(|r| r.id);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn deletion_removes_from_queries(obs in proptest::collection::vec(arb_obs(), 1..60)) {
        let mut j = Journal::new();
        for o in &obs {
            j.apply(o, JTime(0));
        }
        let all = j.get_interfaces(&InterfaceQuery::all());
        for r in &all {
            prop_assert!(j.delete_interface(r.id));
        }
        prop_assert_eq!(j.stats().interfaces, 0);
        j.check_invariants().unwrap();
        for r in &all {
            if let Some(ip) = r.ip_addr() {
                prop_assert!(j.get_interfaces(&InterfaceQuery::by_ip(ip)).is_empty());
            }
        }
    }
}
