//! Integration test: concurrent clients hammering one Journal Server.
//!
//! Eight client threads work disjoint IP ranges, mixing batched stores
//! with queries. Because the ranges are disjoint and the server
//! serializes writes, the final journal must match a serial replay of
//! the same observations — regardless of how the threads interleave.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fremont_journal::client::RemoteJournal;
use fremont_journal::observation::{Observation, Source};
use fremont_journal::proto::StoreBatchItem;
use fremont_journal::query::InterfaceQuery;
use fremont_journal::server::{JournalAccess, JournalServer, SharedJournal};
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;

const THREADS: u8 = 8;
const ROUNDS: u64 = 6;
const HOSTS_PER_ROUND: u8 = 4;

/// The batches thread `t` sends, in order. Deterministic, so the serial
/// replay below can reproduce them exactly.
fn thread_batches(t: u8) -> Vec<Vec<StoreBatchItem>> {
    (0..ROUNDS)
        .map(|round| {
            let now = JTime(round * 100 + u64::from(t));
            let mut observations = Vec::new();
            for h in 0..HOSTS_PER_ROUND {
                let ip = Ipv4Addr::new(10, t, 0, h + 1);
                observations.push(Observation::ip_alive(Source::SeqPing, ip));
                observations.push(Observation::arp_pair(
                    Source::ArpWatch,
                    ip,
                    format!("08:00:20:00:{t:02x}:{h:02x}").parse().unwrap(),
                ));
            }
            // Split each round across two timestamped items so the
            // server exercises the multi-item batch path.
            let mid = observations.len() / 2;
            let tail = observations.split_off(mid);
            vec![
                StoreBatchItem { now, observations },
                StoreBatchItem {
                    now: JTime(now.0 + 1),
                    observations: tail,
                },
            ]
        })
        .collect()
}

#[test]
fn concurrent_store_batches_match_serial_replay() {
    let shared = SharedJournal::new();
    let server = JournalServer::start(shared.clone(), "127.0.0.1:0", None).unwrap();
    let addr = server.addr().to_string();
    let queries_ok = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            let queries_ok = Arc::clone(&queries_ok);
            std::thread::spawn(move || {
                let client = RemoteJournal::connect(&addr).unwrap();
                for batches in thread_batches(t) {
                    let summary = client.store_batch(&batches).unwrap();
                    let sent: usize = batches.iter().map(|b| b.observations.len()).sum();
                    assert_eq!(
                        summary.created + summary.updated + summary.verified,
                        sent,
                        "every observation in the batch must be accounted for"
                    );
                    // Interleave reads: our own range must be visible on
                    // this connection (the server answered the store).
                    let mine = client
                        .interfaces(&InterfaceQuery::by_ip(Ipv4Addr::new(10, t, 0, 1)))
                        .unwrap();
                    assert_eq!(mine.len(), 1);
                    let stats = client.stats().unwrap();
                    assert!(stats.interfaces >= usize::from(HOSTS_PER_ROUND));
                    queries_ok.fetch_add(2, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no client thread may fail a request");
    }
    assert_eq!(
        queries_ok.load(Ordering::Relaxed),
        u64::from(THREADS) * ROUNDS * 2
    );

    // Serial replay: one thread at a time, same batches, same times.
    let replay = Journal::new();
    for t in 0..THREADS {
        for batches in thread_batches(t) {
            replay.apply_batch(
                batches
                    .iter()
                    .flat_map(|b| b.observations.iter().map(move |o| (o, b.now))),
            );
        }
    }

    let final_stats = shared.stats().unwrap();
    assert_eq!(final_stats, replay.stats());

    // Every record matches the serial replay field for field, modulo
    // the interface id (allocation order depends on interleaving).
    shared.read(|j| {
        j.check_invariants().unwrap();
        for t in 0..THREADS {
            for h in 0..HOSTS_PER_ROUND {
                let q = InterfaceQuery::by_ip(Ipv4Addr::new(10, t, 0, h + 1));
                let got = j.get_interfaces(&q);
                let want = replay.get_interfaces(&q);
                assert_eq!(got.len(), 1);
                assert_eq!(want.len(), 1);
                assert_eq!(got[0].ip, want[0].ip);
                assert_eq!(got[0].mac, want[0].mac);
                assert_eq!(got[0].sources, want[0].sources);
                assert_eq!(got[0].discovered, want[0].discovered);
                assert_eq!(got[0].changed, want[0].changed);
                assert_eq!(got[0].verified, want[0].verified);
            }
        }
    });

    server.shutdown();
}
