//! Swarm test: a thousand concurrent `RemoteJournal` clients against one
//! Journal Server.
//!
//! Every client holds its connection open for the whole test, so the
//! server is carrying ~1k live sockets at once — the load shape the
//! event-loop rewrite exists for. The assertions pin down the three
//! contracts that matter at that scale: every request completes, no
//! observation is lost, and the server's thread count stays at the fixed
//! pool size instead of growing with connections.

use std::net::Ipv4Addr;

use fremont_journal::client::RemoteJournal;
use fremont_journal::observation::{Observation, Source};
use fremont_journal::proto::{Request, Response, StoreBatchItem};
use fremont_journal::query::InterfaceQuery;
use fremont_journal::server::{JournalAccess, JournalServer, SharedJournal, MAX_EVENTLOOP_WORKERS};
use fremont_journal::time::JTime;

const CLIENTS: usize = 1024;
const DRIVERS: usize = 16;

/// Threads in this process, from /proc (Linux only; `None` elsewhere).
fn thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// The unique IP a client owns; distinct for every `k < 4096`.
fn client_ip(k: usize) -> Ipv4Addr {
    Ipv4Addr::new(
        10,
        (k / 256) as u8,
        ((k / 16) % 16) as u8,
        (k % 16 + 1) as u8,
    )
}

#[test]
fn a_thousand_concurrent_clients_complete_without_losing_observations() {
    let baseline_threads = thread_count();
    let (telemetry, rec) = fremont_telemetry::Telemetry::recording();
    let shared = SharedJournal::new();
    let server =
        JournalServer::start_with_telemetry(shared.clone(), "127.0.0.1:0", None, telemetry)
            .unwrap();
    let addr = server.addr().to_string();

    // Open every connection up front so all of them are live at once.
    let mut clients: Vec<RemoteJournal> = (0..CLIENTS)
        .map(|_| RemoteJournal::connect(&addr).unwrap())
        .collect();

    // With a thousand sockets accepted, the server has added only its
    // accept thread and the fixed worker pool — not a thread per
    // connection.
    if let (Some(before), Some(now)) = (baseline_threads, thread_count()) {
        let added = now.saturating_sub(before);
        assert!(
            added <= 2 + MAX_EVENTLOOP_WORKERS as u64,
            "server added {added} threads for {CLIENTS} connections"
        );
    }

    // Sixteen driver threads walk disjoint slices of the client pool;
    // each client stores two observations about its own IP, reads them
    // back, and every eighth also pulls an introspection report.
    let chunk = CLIENTS / DRIVERS;
    let handles: Vec<_> = (0..DRIVERS)
        .map(|d| {
            let mine: Vec<RemoteJournal> = clients.drain(..chunk).collect();
            std::thread::spawn(move || {
                for (i, client) in mine.iter().enumerate() {
                    let k = d * chunk + i;
                    let ip = client_ip(k);
                    let summary = client
                        .store_batch(&[StoreBatchItem {
                            now: JTime(k as u64),
                            observations: vec![
                                Observation::ip_alive(Source::SeqPing, ip),
                                Observation::arp_pair(
                                    Source::ArpWatch,
                                    ip,
                                    format!("08:00:20:0a:{:02x}:{:02x}", k / 256, k % 256)
                                        .parse()
                                        .unwrap(),
                                ),
                            ],
                        }])
                        .unwrap();
                    assert_eq!(
                        summary.created + summary.updated + summary.verified,
                        2,
                        "client {k}: every observation must be accounted for"
                    );
                    let got = client.interfaces(&InterfaceQuery::by_ip(ip)).unwrap();
                    assert_eq!(got.len(), 1, "client {k} must read its own write");
                    if k.is_multiple_of(8) {
                        let report = client.introspect(4).unwrap();
                        assert_eq!(report.health, "ok");
                    }
                }
                mine
            })
        })
        .collect();
    let mut done: Vec<RemoteJournal> = Vec::with_capacity(CLIENTS);
    for h in handles {
        done.extend(h.join().expect("no client thread may fail a request"));
    }

    // No lost observations: one record per client, two observations
    // each, confirmed by the in-process view.
    let stats = shared.stats().unwrap();
    assert_eq!(stats.interfaces, CLIENTS);
    assert_eq!(stats.observations_applied, 2 * CLIENTS as u64);
    shared.read(|j| j.check_invariants().unwrap());

    // The thread bound still holds with every connection mid-life.
    if let (Some(before), Some(now)) = (baseline_threads, thread_count()) {
        let added = now.saturating_sub(before);
        assert!(
            added <= 2 + MAX_EVENTLOOP_WORKERS as u64,
            "server grew to {added} extra threads during the swarm"
        );
    }

    drop(done);
    server.shutdown();
    assert_eq!(
        rec.counter("fremont_journal_connections_total", ""),
        CLIENTS as u64
    );
    assert_eq!(rec.counter("fremont_journal_rpc_aborted_total", ""), 0);
    assert_eq!(
        rec.counter("fremont_journal_connection_errors_total", ""),
        0
    );
}

/// Two requests queued on one socket come back as two replies in
/// request order — the framing contract that makes client pipelining
/// legal against the event loop.
#[test]
fn pipelined_requests_get_in_order_replies() {
    let server = JournalServer::start(SharedJournal::new(), "127.0.0.1:0", None).unwrap();
    let client = RemoteJournal::connect(&server.addr().to_string()).unwrap();

    let ip = Ipv4Addr::new(10, 200, 0, 1);
    let replies = client
        .pipeline(&[
            Request::Store {
                now: JTime(3),
                observations: vec![Observation::ip_alive(Source::SeqPing, ip)],
            },
            Request::GetInterfaces(InterfaceQuery::by_ip(ip)),
            Request::Stats,
        ])
        .unwrap();

    // The replies land in request order: the second sees the record the
    // first created, which only in-order execution can produce.
    assert_eq!(replies.len(), 3);
    match &replies[0] {
        Response::Stored(s) => assert_eq!(s.created, 1),
        other => panic!("slot 0: expected Stored, got {other:?}"),
    }
    match &replies[1] {
        Response::Interfaces(v) => {
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].ip.as_ref().map(|t| *t.get()), Some(ip));
        }
        other => panic!("slot 1: expected Interfaces, got {other:?}"),
    }
    match &replies[2] {
        Response::Stats(s) => assert_eq!(s.interfaces, 1),
        other => panic!("slot 2: expected Stats, got {other:?}"),
    }
    server.shutdown();
}
