//! Event-loop edge cases: slow readers, severed connections, and the
//! exactly-once accounting around both.
//!
//! The mid-frame-disconnect and oversized-header cases live in
//! `server_tcp.rs` (they predate the event loop and must keep passing
//! under it); this file covers the conditions only a buffered event
//! loop can reach — a reply backlog crossing the high-water mark, and
//! connections parked in a worker when `shutdown()` fires.

use std::net::{Ipv4Addr, TcpStream};

use fremont_journal::observation::{Observation, Source};
use fremont_journal::proto::{
    read_frame, write_frame, Request, RequestEnvelope, Response, TraceContext,
};
use fremont_journal::query::InterfaceQuery;
use fremont_journal::server::{JournalAccess, JournalServer, SharedJournal, WRITE_HIGH_WATER};
use fremont_journal::time::JTime;

/// Polls a telemetry counter until it reaches `want`.
fn wait_for_counter(rec: &fremont_telemetry::Recorder, name: &str, want: u64) -> u64 {
    for _ in 0..400 {
        let got = rec.counter(name, "");
        if got >= want {
            return got;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    rec.counter(name, "")
}

fn envelope(req: Request) -> RequestEnvelope {
    RequestEnvelope {
        ctx: TraceContext::NONE,
        req,
    }
}

/// A client that queues far more reply volume than it reads pushes the
/// connection over the write high-water mark: the server parks its
/// reads, counts exactly one backpressure episode, and still delivers
/// every reply in order once the client drains.
#[test]
fn slow_reader_backpressure_counts_one_episode_and_loses_nothing() {
    let (telemetry, rec) = fremont_telemetry::Telemetry::recording();
    let shared = SharedJournal::new();
    // Enough records that one full query reply is a few hundred KiB.
    let observations: Vec<Observation> = (0..2000u32)
        .map(|i| {
            Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(
                    10,
                    (i / 256) as u8 + 1,
                    (i / 16 % 16) as u8,
                    (i % 16) as u8 + 1,
                ),
            )
        })
        .collect();
    shared.store(JTime(1), &observations).unwrap();
    // Size one reply exactly, then queue six high-water marks' worth —
    // far beyond anything the kernel socket buffers can absorb.
    let mut one_reply = Vec::new();
    write_frame(
        &mut one_reply,
        &Response::Interfaces(shared.interfaces(&InterfaceQuery::all()).unwrap()),
    )
    .unwrap();
    let rounds = 6 * WRITE_HIGH_WATER / one_reply.len() + 1;
    let server =
        JournalServer::start_with_telemetry(shared, "127.0.0.1:0", None, telemetry).unwrap();

    // Raw socket so the test controls exactly when replies are read.
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    for _ in 0..rounds {
        write_frame(
            &mut writer,
            &envelope(Request::GetInterfaces(InterfaceQuery::all())),
        )
        .unwrap();
    }

    let episodes = wait_for_counter(&rec, "fremont_journal_eventloop_backpressure_total", 1);
    assert_eq!(episodes, 1, "one blocked reader is one episode");

    // Drain: every reply arrives, in order, none truncated.
    for i in 0..rounds {
        match read_frame::<_, Response>(&mut reader).unwrap() {
            Some(Response::Interfaces(v)) => {
                assert_eq!(v.len(), 2000, "reply {i} must carry the full journal")
            }
            other => panic!("reply {i}: expected Interfaces, got {other:?}"),
        }
    }
    // The episode ended when the backlog drained; it was counted once.
    assert_eq!(
        rec.counter("fremont_journal_eventloop_backpressure_total", ""),
        1
    );
    assert_eq!(rec.counter("fremont_journal_rpc_aborted_total", ""), 0);
    server.shutdown();
}

/// `shutdown()` severs connections parked in the event loop: each one
/// counts once into the severed counter, and the close is synchronous —
/// by the time `shutdown()` returns, every socket reads EOF.
#[test]
fn shutdown_severs_parked_connections_exactly_once() {
    let (telemetry, rec) = fremont_telemetry::Telemetry::recording();
    let server =
        JournalServer::start_with_telemetry(SharedJournal::new(), "127.0.0.1:0", None, telemetry)
            .unwrap();

    const PARKED: usize = 5;
    let mut conns = Vec::new();
    for _ in 0..PARKED {
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        // One served round trip proves the worker owns the connection
        // before it parks.
        write_frame(&mut writer, &envelope(Request::Stats)).unwrap();
        match read_frame::<_, Response>(&mut reader).unwrap() {
            Some(Response::Stats(_)) => {}
            other => panic!("expected Stats, got {other:?}"),
        }
        conns.push(reader);
    }

    server.shutdown();
    assert_eq!(
        rec.counter("fremont_journal_eventloop_severed_total", ""),
        PARKED as u64,
        "each parked connection is severed exactly once"
    );
    // Severing already happened — a blocking read must observe EOF
    // immediately, not hang waiting for a reply that cannot come.
    for mut reader in conns {
        match read_frame::<_, Response>(&mut reader) {
            Ok(None) | Err(_) => {}
            Ok(Some(r)) => panic!("severed connection produced a reply: {r:?}"),
        }
    }
    // Parked connections were idle, not mid-request: severing them is
    // not an RPC abort.
    assert_eq!(rec.counter("fremont_journal_rpc_aborted_total", ""), 0);
}
