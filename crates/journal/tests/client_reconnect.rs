//! Integration test: the client's reconnect-and-retry behaviour for
//! idempotent query RPCs when the Journal Server restarts between calls.

use std::net::Ipv4Addr;

use fremont_journal::client::RemoteJournal;
use fremont_journal::observation::{Observation, Source};
use fremont_journal::proto::ProtoError;
use fremont_journal::server::{JournalAccess, JournalServer, SharedJournal};
use fremont_journal::time::JTime;

/// Binds a fresh server to the address a previous one just vacated.
/// The old accepted sockets may briefly linger in TIME_WAIT, so retry.
fn restart_at(shared: &SharedJournal, addr: &str) -> JournalServer {
    for _ in 0..100 {
        match JournalServer::start(shared.clone(), addr, None) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    panic!("could not rebind journal server at {addr}");
}

#[test]
fn queries_survive_a_server_restart_but_mutations_do_not_retry() {
    let shared = SharedJournal::new();
    let first = JournalServer::start(shared.clone(), "127.0.0.1:0", None).unwrap();
    let addr = first.addr().to_string();
    let client = RemoteJournal::connect(&addr).unwrap();

    client
        .store(
            JTime(1),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 3, 0, 1),
            )],
        )
        .unwrap();
    assert_eq!(client.stats().unwrap().interfaces, 1);

    // Restart the server behind the client's back. The client's TCP
    // connection is now dead, but the journal state survives in-process.
    first.shutdown();
    let second = restart_at(&shared, &addr);

    // A mutating RPC on the dead connection fails with an IO error and
    // is NOT retried — even though a healthy server is listening (a
    // lost response leaves it unknown whether the store was applied).
    let before = shared.stats().unwrap().observations_applied;
    let err = client
        .store(
            JTime(2),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 3, 0, 2),
            )],
        )
        .unwrap_err();
    assert!(matches!(err, ProtoError::Io(_)), "got {err}");
    assert_eq!(
        shared.stats().unwrap().observations_applied,
        before,
        "a failed mutation must not be silently replayed"
    );

    // An idempotent query on the same client reconnects and succeeds.
    let stats = client.stats().unwrap();
    assert_eq!(stats.interfaces, 1);

    // The refreshed connection serves mutations again.
    client
        .store(
            JTime(3),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 3, 0, 3),
            )],
        )
        .unwrap();
    assert_eq!(client.stats().unwrap().interfaces, 2);

    second.shutdown();
}
