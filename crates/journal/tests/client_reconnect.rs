//! Integration test: the client's reconnect-and-retry behaviour for
//! idempotent query RPCs when the Journal Server restarts between calls,
//! and when the connection dies mid-RPC rather than between clean calls.
//!
//! These tests are deliberately loop-agnostic: they rely only on the
//! server's documented contract that `shutdown()` severs every live
//! connection before returning, never on how connections are torn down
//! or how quickly a serving thread notices the stop.

use std::io::Read;
use std::net::{Ipv4Addr, TcpListener};

use fremont_journal::client::RemoteJournal;
use fremont_journal::observation::{Observation, Source};
use fremont_journal::proto::ProtoError;
use fremont_journal::server::{JournalAccess, JournalServer, SharedJournal};
use fremont_journal::time::JTime;

/// Binds a fresh server to the address a previous one just vacated.
/// The old accepted sockets may briefly linger in TIME_WAIT, so retry.
fn restart_at(shared: &SharedJournal, addr: &str) -> JournalServer {
    for _ in 0..100 {
        match JournalServer::start(shared.clone(), addr, None) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    panic!("could not rebind journal server at {addr}");
}

#[test]
fn queries_survive_a_server_restart_but_mutations_do_not_retry() {
    let shared = SharedJournal::new();
    let first = JournalServer::start(shared.clone(), "127.0.0.1:0", None).unwrap();
    let addr = first.addr().to_string();
    let client = RemoteJournal::connect(&addr).unwrap();

    client
        .store(
            JTime(1),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 3, 0, 1),
            )],
        )
        .unwrap();
    assert_eq!(client.stats().unwrap().interfaces, 1);

    // Restart the server behind the client's back. `shutdown()` severs
    // live connections synchronously — when it returns, the client's
    // socket is already closed — so nothing below depends on how the
    // server dismantles its connections (per-connection threads once,
    // event-loop workers now) or on any teardown timing.
    first.shutdown();

    // Between servers, an idempotent query attempts its one reconnect,
    // which is refused: the error surfaces instead of retrying forever.
    let err = client.stats().unwrap_err();
    assert!(matches!(err, ProtoError::Io(_)), "got {err}");

    let second = restart_at(&shared, &addr);

    // A mutating RPC on the dead connection fails with an IO error and
    // is NOT retried — even though a healthy server is listening (a
    // lost response leaves it unknown whether the store was applied).
    let before = shared.stats().unwrap().observations_applied;
    let err = client
        .store(
            JTime(2),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 3, 0, 2),
            )],
        )
        .unwrap_err();
    assert!(matches!(err, ProtoError::Io(_)), "got {err}");
    assert_eq!(
        shared.stats().unwrap().observations_applied,
        before,
        "a failed mutation must not be silently replayed"
    );

    // An idempotent query on the same client reconnects and succeeds.
    let stats = client.stats().unwrap();
    assert_eq!(stats.interfaces, 1);

    // The refreshed connection serves mutations again.
    client
        .store(
            JTime(3),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 3, 0, 3),
            )],
        )
        .unwrap();
    assert_eq!(client.stats().unwrap().interfaces, 2);

    second.shutdown();
}

/// The harsher fault: the connection dies *mid-RPC* — after the request
/// leaves the client, before any reply arrives. This is what a crashed
/// server process (or a fault-injected node kill) looks like on the
/// wire, as opposed to the clean shutdown above where the connection is
/// already dead before the client writes. The store must fail without
/// being applied or replayed, and the same client must recover once a
/// real server takes over the address.
#[test]
fn a_mid_rpc_kill_fails_the_mutation_and_the_client_recovers() {
    // A bare listener plays the doomed server: it accepts the client,
    // reads the first byte of the request so the RPC is provably in
    // flight, then drops the socket without ever answering.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let killer = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut first_byte = [0u8; 1];
        sock.read_exact(&mut first_byte).unwrap();
        // Dropping `sock` and `listener` here kills the connection with
        // the request half-read and frees the port for the real server.
    });

    let client = RemoteJournal::connect(&addr).unwrap();
    let err = client
        .store(
            JTime(1),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 3, 1, 1),
            )],
        )
        .unwrap_err();
    assert!(matches!(err, ProtoError::Io(_)), "got {err}");
    killer.join().unwrap();

    // A real server takes over the same address with an empty journal.
    let shared = SharedJournal::new();
    let server = restart_at(&shared, &addr);

    // The killed mutation was never applied anywhere and must not be
    // silently replayed by the reconnect path.
    let stats = client.stats().unwrap();
    assert_eq!(stats.interfaces, 0, "killed store must not be replayed");
    assert_eq!(shared.stats().unwrap().observations_applied, 0);

    // The same client object is fully usable after the mid-RPC death.
    client
        .store(
            JTime(2),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 3, 1, 2),
            )],
        )
        .unwrap();
    assert_eq!(client.stats().unwrap().interfaces, 1);

    server.shutdown();
}
