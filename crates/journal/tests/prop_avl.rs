//! Property tests: the AVL map behaves exactly like `BTreeMap`.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

use fremont_journal::avl::AvlMap;

/// Operations for the model test.
#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn behaves_like_btreemap(ops in proptest::collection::vec(arb_op(), 0..400)) {
        let mut avl = AvlMap::new();
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(avl.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(avl.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(avl.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(avl.len(), model.len());
        }
        avl.check_invariants().unwrap();
        let avl_items: Vec<_> = avl.iter().map(|(k, v)| (*k, *v)).collect();
        let model_items: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(avl_items, model_items);
    }

    #[test]
    fn range_matches_btreemap(keys in proptest::collection::btree_set(any::<u16>(), 0..200),
                              lo in any::<u16>(), hi in any::<u16>(),
                              inc_lo in any::<bool>(), inc_hi in any::<bool>()) {
        let avl: AvlMap<u16, ()> = keys.iter().map(|&k| (k, ())).collect();
        let model: BTreeMap<u16, ()> = keys.iter().map(|&k| (k, ())).collect();
        let lb = if inc_lo { Bound::Included(&lo) } else { Bound::Excluded(&lo) };
        let ub = if inc_hi { Bound::Included(&hi) } else { Bound::Excluded(&hi) };
        // BTreeMap panics on inverted ranges; skip those, AvlMap returns empty.
        let inverted = match (lb, ub) {
            (Bound::Included(a), Bound::Included(b)) => a > b,
            (Bound::Included(a), Bound::Excluded(b))
            | (Bound::Excluded(a), Bound::Included(b))
            | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
            _ => false,
        };
        prop_assume!(!inverted);
        let avl_keys: Vec<u16> = avl.range((lb, ub)).map(|(k, _)| *k).collect();
        let model_keys: Vec<u16> = model.range((lb, ub)).map(|(k, _)| *k).collect();
        prop_assert_eq!(avl_keys, model_keys);
    }

    #[test]
    fn height_is_logarithmic(keys in proptest::collection::btree_set(any::<u32>(), 1..1000)) {
        let avl: AvlMap<u32, ()> = keys.iter().map(|&k| (k, ())).collect();
        avl.check_invariants().unwrap();
        let n = avl.len() as f64;
        // AVL height bound: 1.4405 * log2(n + 2).
        let bound = (1.4405 * (n + 2.0).log2()).ceil() as usize + 1;
        prop_assert!(avl.height() <= bound,
                     "height {} exceeds AVL bound {} for n={}", avl.height(), bound, n);
    }

    #[test]
    fn first_last_match_model(keys in proptest::collection::btree_set(any::<i32>(), 0..100)) {
        let avl: AvlMap<i32, ()> = keys.iter().map(|&k| (k, ())).collect();
        let model: BTreeMap<i32, ()> = keys.iter().map(|&k| (k, ())).collect();
        prop_assert_eq!(avl.first().map(|(k, _)| *k), model.first_key_value().map(|(k, _)| *k));
        prop_assert_eq!(avl.last().map(|(k, _)| *k), model.last_key_value().map(|(k, _)| *k));
    }
}
