//! The Journal: merge, index, and query discovered network facts.
//!
//! This is the in-memory representation the paper's Journal Server keeps:
//! records in modification-time order, interface records indexed by AVL
//! trees on Ethernet address, IP address, and DNS name, and subnet records
//! indexed by subnet address. "Because it is the shared place where
//! observations are stored ... the Journal is more than just the sum of
//! its parts": the merge rules below are what turn per-module observations
//! into cross-correlated knowledge.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use fremont_net::{MacAddr, Subnet};

use crate::avl::AvlMap;
use crate::observation::{Fact, Observation, Source};
use crate::query::{InterfaceQuery, SubnetQuery};
use crate::records::{GatewayId, GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
use crate::time::{JTime, Timestamped};

/// Summary of applying a batch of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Records newly created.
    pub created: usize,
    /// Records whose fields changed.
    pub updated: usize,
    /// Records merely re-verified.
    pub verified: usize,
}

impl StoreSummary {
    /// Adds another summary's counters into this one.
    pub fn absorb(&mut self, other: StoreSummary) {
        self.created += other.created;
        self.updated += other.updated;
        self.verified += other.verified;
    }
}

/// Journal-wide statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalStats {
    /// Number of interface records.
    pub interfaces: usize,
    /// Number of gateway records.
    pub gateways: usize,
    /// Number of subnet records.
    pub subnets: usize,
    /// Total observations applied.
    pub observations_applied: u64,
}

/// The Journal store.
pub struct Journal {
    interfaces: Vec<Option<InterfaceRecord>>,
    gateways: Vec<Option<GatewayRecord>>,
    subnets: AvlMap<Subnet, SubnetRecord>,
    /// Ethernet-address index. A MAC maps to *several* records when one
    /// adapter answers for several IP addresses (gateway or proxy ARP).
    idx_mac: AvlMap<MacAddr, Vec<InterfaceId>>,
    /// IP-address index. An IP maps to several records when two hosts are
    /// (mis)configured with the same address, or hardware changed.
    idx_ip: AvlMap<Ipv4Addr, Vec<InterfaceId>>,
    /// DNS-name index. A name maps to several records for multi-homed
    /// gateways.
    idx_name: AvlMap<String, Vec<InterfaceId>>,
    /// Modification-time ordering over interface records (the paper's
    /// "lists ordered by time of last modification").
    idx_modified: AvlMap<(JTime, u64), InterfaceId>,
    mod_keys: HashMap<u64, (JTime, u64)>,
    mod_seq: u64,
    observations_applied: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal {
            interfaces: Vec::new(),
            gateways: Vec::new(),
            subnets: AvlMap::new(),
            idx_mac: AvlMap::new(),
            idx_ip: AvlMap::new(),
            idx_name: AvlMap::new(),
            idx_modified: AvlMap::new(),
            mod_keys: HashMap::new(),
            mod_seq: 0,
            observations_applied: 0,
        }
    }

    /// Applies one observation at time `now` (the Journal Server's
    /// Store/Update operation).
    pub fn apply(&mut self, obs: &Observation, now: JTime) -> StoreSummary {
        self.observations_applied += 1;
        match &obs.fact {
            Fact::Interface {
                ip,
                mac,
                name,
                mask,
            } => self.apply_interface(obs.source, *ip, *mac, name.as_deref(), *mask, now),
            Fact::Subnet {
                subnet,
                mask_assumed,
            } => self.apply_subnet(obs.source, *subnet, *mask_assumed, now),
            Fact::SubnetStats {
                subnet,
                host_count,
                lowest,
                highest,
            } => self.apply_subnet_stats(obs.source, *subnet, *host_count, *lowest, *highest, now),
            Fact::Gateway {
                interface_ips,
                interface_names,
                subnets,
            } => self.apply_gateway(obs.source, interface_ips, interface_names, subnets, now),
            Fact::RipSource {
                ip,
                mac,
                advertised_routes: _,
                promiscuous,
            } => self.apply_rip_source(obs.source, *ip, *mac, *promiscuous, now),
        }
    }

    /// Applies a batch of observations.
    pub fn apply_all<'a>(
        &mut self,
        obs: impl IntoIterator<Item = &'a Observation>,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = StoreSummary::default();
        for o in obs {
            sum.absorb(self.apply(o, now));
        }
        sum
    }

    // ------------------------------------------------------------------
    // Interface merge
    // ------------------------------------------------------------------

    fn apply_interface(
        &mut self,
        source: Source,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
        mask: Option<fremont_net::SubnetMask>,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = StoreSummary::default();
        let targets = self.resolve_targets(ip, mac, name);
        if targets.is_empty() {
            if ip.is_none() && mac.is_none() && name.is_none() {
                return sum; // Nothing identifying; drop.
            }
            let id = self.create_interface(now);
            self.update_interface(id, source, ip, mac, name, mask, now);
            sum.created += 1;
            return sum;
        }
        for id in targets {
            if self.update_interface(id, source, ip, mac, name, mask, now) {
                sum.updated += 1;
            } else {
                sum.verified += 1;
            }
        }
        sum
    }

    /// Finds the records an interface observation should apply to.
    ///
    /// Identity resolution, in order of address quality (MAC > IP > name):
    ///
    /// 1. With a MAC: the record carrying this MAC *and* the same IP (or no
    ///    IP yet). A MAC already bound to a *different* IP gets a separate
    ///    record — that is how "multiple IP addresses for a single Ethernet
    ///    address" (proxy ARP / gateways) stays visible to analysis.
    /// 2. With only an IP: the record that currently *owns* the address —
    ///    the one most recently verified alive. A ping cannot distinguish
    ///    duplicate-address hosts or old hardware, so crediting every
    ///    record would keep dead claimants looking alive forever; only
    ///    MAC-bearing evidence (ARP) refreshes the other claimants.
    /// 3. With only a name: every record carrying that name.
    fn resolve_targets(
        &self,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
    ) -> Vec<InterfaceId> {
        if let Some(mac) = mac {
            let with_mac = self.idx_mac.get(&mac).cloned().unwrap_or_default();
            if let Some(ip) = ip {
                // Exact (mac, ip) record?
                if let Some(&id) = with_mac
                    .iter()
                    .find(|&&id| self.iface(id).ip_addr() == Some(ip))
                {
                    return vec![id];
                }
                // A record with this MAC and no IP yet?
                if let Some(&id) = with_mac
                    .iter()
                    .find(|&&id| self.iface(id).ip_addr().is_none())
                {
                    return vec![id];
                }
                // A record with this IP and no MAC yet (created by a ping)?
                if let Some(ids) = self.idx_ip.get(&ip) {
                    if let Some(&id) = ids.iter().find(|&&id| self.iface(id).mac_addr().is_none()) {
                        return vec![id];
                    }
                }
                // Otherwise: new record (same MAC answering another IP, or
                // same IP on different hardware).
                return Vec::new();
            }
            return with_mac;
        }
        if let Some(ip) = ip {
            let ids = self.idx_ip.get(&ip).cloned().unwrap_or_default();
            if ids.len() <= 1 {
                return ids;
            }
            // Multiple claimants: credit the presumed current owner only.
            return ids
                .into_iter()
                .max_by_key(|id| {
                    let r = self.iface(*id);
                    (r.live_verified, r.verified, r.discovered)
                })
                .into_iter()
                .collect();
        }
        if let Some(name) = name {
            return self
                .idx_name
                .get(&name.to_owned())
                .cloned()
                .unwrap_or_default();
        }
        Vec::new()
    }

    fn create_interface(&mut self, now: JTime) -> InterfaceId {
        let id = InterfaceId(self.interfaces.len() as u64);
        self.interfaces.push(Some(InterfaceRecord::new(id, now)));
        self.touch_modified(id, now);
        id
    }

    /// Applies fields to one record; returns `true` when anything changed.
    #[allow(clippy::too_many_arguments)]
    fn update_interface(
        &mut self,
        id: InterfaceId,
        source: Source,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
        mask: Option<fremont_net::SubnetMask>,
        now: JTime,
    ) -> bool {
        let mut changed = false;

        // Index maintenance requires knowing old values first.
        let (old_ip, old_mac, old_name) = {
            let r = self.iface(id);
            (r.ip_addr(), r.mac_addr(), r.dns_name().map(str::to_owned))
        };

        if let Some(ip) = ip {
            let r = self.iface_mut(id);
            match &mut r.ip {
                Some(t) => changed |= t.observe(ip, now),
                None => {
                    r.ip = Some(Timestamped::new(ip, now));
                    changed = true;
                }
            }
            if old_ip != Some(ip) {
                if let Some(old) = old_ip {
                    remove_from_index(&mut self.idx_ip, &old, id);
                }
                add_to_index(&mut self.idx_ip, ip, id);
            }
        }
        if let Some(mac) = mac {
            let r = self.iface_mut(id);
            match &mut r.mac {
                Some(t) => changed |= t.observe(mac, now),
                None => {
                    r.mac = Some(Timestamped::new(mac, now));
                    changed = true;
                }
            }
            if old_mac != Some(mac) {
                if let Some(old) = old_mac {
                    remove_from_index(&mut self.idx_mac, &old, id);
                }
                add_to_index(&mut self.idx_mac, mac, id);
            }
        }
        if let Some(name) = name {
            let r = self.iface_mut(id);
            match &mut r.name {
                Some(t) => changed |= t.observe(name.to_owned(), now),
                None => {
                    r.name = Some(Timestamped::new(name.to_owned(), now));
                    changed = true;
                }
            }
            if old_name.as_deref() != Some(name) {
                if let Some(old) = old_name {
                    remove_from_index(&mut self.idx_name, &old, id);
                }
                add_to_index(&mut self.idx_name, name.to_owned(), id);
            }
        }
        if let Some(mask) = mask {
            let r = self.iface_mut(id);
            match &mut r.mask {
                Some(t) => changed |= t.observe(mask, now),
                None => {
                    r.mask = Some(Timestamped::new(mask, now));
                    changed = true;
                }
            }
        }

        let r = self.iface_mut(id);
        r.sources.insert(source);
        r.verified = now;
        if source != Source::Dns {
            r.live_verified = Some(now);
        }
        if changed {
            r.changed = now;
            self.touch_modified(id, now);
        }
        changed
    }

    // ------------------------------------------------------------------
    // Subnets
    // ------------------------------------------------------------------

    fn apply_subnet(
        &mut self,
        source: Source,
        subnet: Subnet,
        mask_assumed: bool,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = StoreSummary::default();
        match self.subnets.get_mut(&subnet) {
            Some(rec) => {
                let mut changed = false;
                if rec.mask_assumed && !mask_assumed {
                    rec.mask_assumed = false;
                    changed = true;
                }
                rec.sources.insert(source);
                rec.verified = now;
                if changed {
                    rec.changed = now;
                    sum.updated += 1;
                } else {
                    sum.verified += 1;
                }
            }
            None => {
                let mut rec = SubnetRecord::new(subnet, mask_assumed, now);
                rec.sources.insert(source);
                self.subnets.insert(subnet, rec);
                sum.created += 1;
            }
        }
        sum
    }

    fn apply_subnet_stats(
        &mut self,
        source: Source,
        subnet: Subnet,
        host_count: u32,
        lowest: Ipv4Addr,
        highest: Ipv4Addr,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = self.apply_subnet(source, subnet, false, now);
        let rec = self
            .subnets
            .get_mut(&subnet)
            .expect("apply_subnet ensures presence");
        let mut changed = false;
        match &mut rec.host_count {
            Some(t) => changed |= t.observe(host_count, now),
            None => {
                rec.host_count = Some(Timestamped::new(host_count, now));
                changed = true;
            }
        }
        if rec.lowest != Some(lowest) {
            rec.lowest = Some(lowest);
            changed = true;
        }
        if rec.highest != Some(highest) {
            rec.highest = Some(highest);
            changed = true;
        }
        if changed {
            rec.changed = now;
            sum.updated += 1;
        }
        sum
    }

    // ------------------------------------------------------------------
    // Gateways
    // ------------------------------------------------------------------

    fn apply_gateway(
        &mut self,
        source: Source,
        interface_ips: &[Ipv4Addr],
        interface_names: &[String],
        subnets: &[Subnet],
        now: JTime,
    ) -> StoreSummary {
        let mut sum = StoreSummary::default();

        // Resolve or create an interface record per address.
        let mut members: Vec<InterfaceId> = Vec::new();
        for &ip in interface_ips {
            let s = self.apply_interface(source, Some(ip), None, None, None, now);
            sum.absorb(s);
            // Prefer the record that already belongs to a gateway so
            // repeated observations converge; otherwise take the first.
            let ids = self.idx_ip.get(&ip).cloned().unwrap_or_default();
            let chosen = ids
                .iter()
                .copied()
                .find(|&id| self.iface(id).gateway.is_some())
                .or_else(|| ids.first().copied());
            if let Some(id) = chosen {
                if !members.contains(&id) {
                    members.push(id);
                }
            }
        }
        for name in interface_names {
            if let Some(ids) = self.idx_name.get(&name.clone()) {
                for &id in ids {
                    if !members.contains(&id) {
                        members.push(id);
                    }
                }
            }
        }

        // An observation that resolved to no interfaces would create an
        // unmergeable ghost gateway on every re-observation; record only
        // the subnet knowledge and wait for identifiable evidence.
        if members.is_empty() {
            for &s in subnets {
                sum.absorb(self.apply_subnet(source, s, true, now));
            }
            return sum;
        }

        // Find the gateways any member already belongs to.
        let mut gids: Vec<GatewayId> = Vec::new();
        for &m in &members {
            if let Some(g) = self.iface(m).gateway {
                if !gids.contains(&g) {
                    gids.push(g);
                }
            }
        }
        let gid = match gids.first().copied() {
            Some(primary) => {
                // Merge any additional gateways into the primary: two
                // modules discovered the same box from different sides.
                for &other in &gids[1..] {
                    self.merge_gateways(primary, other, now);
                }
                primary
            }
            None => {
                let gid = GatewayId(self.gateways.len() as u64);
                self.gateways.push(Some(GatewayRecord::new(gid, now)));
                sum.created += 1;
                gid
            }
        };

        // Attach members and subnets.
        let mut gw_changed = false;
        for &m in &members {
            let r = self.iface_mut(m);
            if r.gateway != Some(gid) {
                r.gateway = Some(gid);
                r.changed = now;
                self.touch_modified(m, now);
            }
            let g = self.gw_mut(gid);
            gw_changed |= g.add_interface(m);
        }
        // Subnets derived from member interfaces carry confirmed masks;
        // explicitly-claimed subnets keep their mask *assumed* (modules
        // guess /24 when linking hops) until a mask reply confirms them.
        let mut all_subnets: Vec<(Subnet, bool)> = subnets.iter().map(|s| (*s, true)).collect();
        for &m in &members {
            if let Some(s) = self.iface(m).subnet() {
                if let Some(e) = all_subnets.iter_mut().find(|(x, _)| *x == s) {
                    e.1 = false;
                } else {
                    all_subnets.push((s, false));
                }
            }
        }
        for (s, assumed) in all_subnets {
            sum.absorb(self.apply_subnet(source, s, assumed, now));
            let g = self.gw_mut(gid);
            gw_changed |= g.add_subnet(s);
            let srec = self.subnets.get_mut(&s).expect("ensured");
            if srec.add_gateway(gid) {
                srec.changed = now;
            }
        }
        let g = self.gw_mut(gid);
        g.sources.insert(source);
        g.verified = now;
        if gw_changed {
            g.changed = now;
            sum.updated += 1;
        } else {
            sum.verified += 1;
        }
        sum
    }

    fn merge_gateways(&mut self, into: GatewayId, from: GatewayId, now: JTime) {
        let Some(old) = self.gateways[from.0 as usize].take() else {
            return;
        };
        for i in &old.interfaces {
            let r = self.iface_mut(*i);
            if r.gateway != Some(into) {
                r.gateway = Some(into);
                r.changed = now;
            }
            self.touch_modified(*i, now);
        }
        // Re-point subnet records.
        let subnets: Vec<Subnet> = old.subnets.clone();
        for s in &subnets {
            if let Some(rec) = self.subnets.get_mut(s) {
                rec.gateways.retain(|g| *g != from);
                rec.add_gateway(into);
            }
        }
        let g = self.gw_mut(into);
        for i in old.interfaces {
            g.add_interface(i);
        }
        for s in old.subnets {
            g.add_subnet(s);
        }
        g.changed = now;
        g.sources = {
            let mut s = g.sources;
            for src in old.sources.iter() {
                s.insert(src);
            }
            s
        };
    }

    fn apply_rip_source(
        &mut self,
        source: Source,
        ip: Ipv4Addr,
        mac: Option<MacAddr>,
        promiscuous: bool,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = self.apply_interface(source, Some(ip), mac, None, None, now);
        let ids = self.idx_ip.get(&ip).cloned().unwrap_or_default();
        for id in ids {
            let matches_mac = match (mac, self.iface(id).mac_addr()) {
                (Some(m), Some(rm)) => m == rm,
                _ => true,
            };
            if matches_mac {
                let r = self.iface_mut(id);
                if !r.rip_source || r.rip_promiscuous != promiscuous {
                    r.rip_source = true;
                    r.rip_promiscuous = promiscuous;
                    r.changed = now;
                    self.touch_modified(id, now);
                    sum.updated += 1;
                }
            }
        }
        sum
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    fn iface(&self, id: InterfaceId) -> &InterfaceRecord {
        self.interfaces[id.0 as usize]
            .as_ref()
            .expect("live interface id")
    }

    fn iface_mut(&mut self, id: InterfaceId) -> &mut InterfaceRecord {
        self.interfaces[id.0 as usize]
            .as_mut()
            .expect("live interface id")
    }

    fn gw_mut(&mut self, id: GatewayId) -> &mut GatewayRecord {
        self.gateways[id.0 as usize]
            .as_mut()
            .expect("live gateway id")
    }

    fn touch_modified(&mut self, id: InterfaceId, now: JTime) {
        if let Some(old) = self.mod_keys.remove(&id.0) {
            self.idx_modified.remove(&old);
        }
        self.mod_seq += 1;
        let key = (now, self.mod_seq);
        self.idx_modified.insert(key, id);
        self.mod_keys.insert(id.0, key);
    }

    /// Fetches an interface record by id.
    pub fn interface(&self, id: InterfaceId) -> Option<&InterfaceRecord> {
        self.interfaces.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Fetches a gateway record by id.
    pub fn gateway(&self, id: GatewayId) -> Option<&GatewayRecord> {
        self.gateways.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Fetches the subnet record for an exact subnet.
    pub fn subnet(&self, s: &Subnet) -> Option<&SubnetRecord> {
        self.subnets.get(s)
    }

    /// Returns all interface records matching the query (the Journal
    /// Server's Get operation), using the IP index when the query allows.
    pub fn get_interfaces(&self, q: &InterfaceQuery) -> Vec<InterfaceRecord> {
        // Fast paths through the indexes.
        if let Some(ip) = q.ip {
            return self
                .idx_ip
                .get(&ip)
                .into_iter()
                .flatten()
                .map(|&id| self.iface(id))
                .filter(|r| q.matches(r))
                .cloned()
                .collect();
        }
        if let Some(mac) = q.mac {
            return self
                .idx_mac
                .get(&mac)
                .into_iter()
                .flatten()
                .map(|&id| self.iface(id))
                .filter(|r| q.matches(r))
                .cloned()
                .collect();
        }
        if let Some(s) = q.in_subnet {
            let lo = s.network();
            let hi = s.directed_broadcast();
            return self.scan_ip_range(lo, hi, q);
        }
        if let Some((lo, hi)) = q.ip_range {
            return self.scan_ip_range(lo, hi, q);
        }
        self.interfaces
            .iter()
            .flatten()
            .filter(|r| q.matches(r))
            .cloned()
            .collect()
    }

    fn scan_ip_range(
        &self,
        lo: Ipv4Addr,
        hi: Ipv4Addr,
        q: &InterfaceQuery,
    ) -> Vec<InterfaceRecord> {
        use std::ops::Bound;
        self.idx_ip
            .range((Bound::Included(&lo), Bound::Included(&hi)))
            .flat_map(|(_, ids)| ids.iter())
            .map(|&id| self.iface(id))
            .filter(|r| q.matches(r))
            .cloned()
            .collect()
    }

    /// Interfaces in ascending order of last modification (oldest first).
    pub fn interfaces_by_modification(&self) -> Vec<InterfaceRecord> {
        self.idx_modified
            .iter()
            .map(|(_, &id)| self.iface(id).clone())
            .collect()
    }

    /// All gateway records.
    pub fn get_gateways(&self) -> Vec<GatewayRecord> {
        self.gateways.iter().flatten().cloned().collect()
    }

    /// Subnet records matching the query, in address order.
    pub fn get_subnets(&self, q: &SubnetQuery) -> Vec<SubnetRecord> {
        self.subnets
            .iter()
            .map(|(_, r)| r)
            .filter(|r| q.matches(r))
            .cloned()
            .collect()
    }

    /// Deletes an interface record (the Journal Server's Delete operation).
    ///
    /// Returns `true` when the record existed.
    pub fn delete_interface(&mut self, id: InterfaceId) -> bool {
        let Some(rec) = self
            .interfaces
            .get_mut(id.0 as usize)
            .and_then(Option::take)
        else {
            return false;
        };
        if let Some(ip) = rec.ip_addr() {
            remove_from_index(&mut self.idx_ip, &ip, id);
        }
        if let Some(mac) = rec.mac_addr() {
            remove_from_index(&mut self.idx_mac, &mac, id);
        }
        if let Some(name) = rec.dns_name() {
            remove_from_index(&mut self.idx_name, &name.to_owned(), id);
        }
        if let Some(key) = self.mod_keys.remove(&id.0) {
            self.idx_modified.remove(&key);
        }
        if let Some(gid) = rec.gateway {
            if let Some(g) = self.gateways[gid.0 as usize].as_mut() {
                g.interfaces.retain(|i| *i != id);
            }
        }
        true
    }

    /// Journal-wide statistics.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            interfaces: self.interfaces.iter().flatten().count(),
            gateways: self.gateways.iter().flatten().count(),
            subnets: self.subnets.len(),
            observations_applied: self.observations_applied,
        }
    }

    /// Exports all records as a snapshot.
    pub fn to_snapshot(&self) -> crate::snapshot::JournalSnapshot {
        crate::snapshot::JournalSnapshot {
            version: crate::snapshot::SNAPSHOT_VERSION,
            interfaces: self.interfaces.iter().flatten().cloned().collect(),
            gateways: self.gateways.iter().flatten().cloned().collect(),
            subnets: self.subnets.iter().map(|(_, r)| r.clone()).collect(),
            observations_applied: self.observations_applied,
        }
    }

    /// Rebuilds a journal (including every index) from a snapshot.
    pub fn from_snapshot(snap: &crate::snapshot::JournalSnapshot) -> Journal {
        let mut j = Journal::new();
        j.observations_applied = snap.observations_applied;

        // Records keep their identifiers, so size the slabs to the maximum.
        let max_if = snap
            .interfaces
            .iter()
            .map(|r| r.id.0 + 1)
            .max()
            .unwrap_or(0);
        j.interfaces = (0..max_if).map(|_| None).collect();
        let max_gw = snap.gateways.iter().map(|r| r.id.0 + 1).max().unwrap_or(0);
        j.gateways = (0..max_gw).map(|_| None).collect();

        // Rebuild the modification index in changed-time order.
        let mut by_changed: Vec<&InterfaceRecord> = snap.interfaces.iter().collect();
        by_changed.sort_by_key(|r| r.changed);
        for rec in by_changed {
            let id = rec.id;
            j.interfaces[id.0 as usize] = Some(rec.clone());
            if let Some(ip) = rec.ip_addr() {
                add_to_index(&mut j.idx_ip, ip, id);
            }
            if let Some(mac) = rec.mac_addr() {
                add_to_index(&mut j.idx_mac, mac, id);
            }
            if let Some(name) = rec.dns_name() {
                add_to_index(&mut j.idx_name, name.to_owned(), id);
            }
            j.touch_modified(id, rec.changed);
        }
        for g in &snap.gateways {
            j.gateways[g.id.0 as usize] = Some(g.clone());
        }
        for s in &snap.subnets {
            j.subnets.insert(s.subnet, s.clone());
        }
        j
    }

    /// Verifies internal index consistency (used by tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.idx_ip.check_invariants()?;
        self.idx_mac.check_invariants()?;
        self.idx_name.check_invariants()?;
        self.idx_modified.check_invariants()?;
        for (ip, ids) in self.idx_ip.iter() {
            for id in ids {
                let r = self
                    .interface(*id)
                    .ok_or_else(|| format!("idx_ip points at dead record {id:?}"))?;
                if r.ip_addr() != Some(*ip) {
                    return Err(format!("idx_ip stale for {ip}"));
                }
            }
        }
        for (mac, ids) in self.idx_mac.iter() {
            for id in ids {
                let r = self
                    .interface(*id)
                    .ok_or_else(|| format!("idx_mac points at dead record {id:?}"))?;
                if r.mac_addr() != Some(*mac) {
                    return Err(format!("idx_mac stale for {mac}"));
                }
            }
        }
        for rec in self.interfaces.iter().flatten() {
            if let Some(ip) = rec.ip_addr() {
                let ids = self.idx_ip.get(&ip).cloned().unwrap_or_default();
                if !ids.contains(&rec.id) {
                    return Err(format!("record {:?} missing from idx_ip", rec.id));
                }
            }
            if let Some(gid) = rec.gateway {
                let g = self
                    .gateway(gid)
                    .ok_or_else(|| format!("record {:?} points at dead gateway", rec.id))?;
                if !g.interfaces.contains(&rec.id) {
                    return Err(format!("gateway {gid:?} missing member {:?}", rec.id));
                }
            }
        }
        Ok(())
    }
}

fn add_to_index<K: Ord>(idx: &mut AvlMap<K, Vec<InterfaceId>>, key: K, id: InterfaceId) {
    match idx.get_mut(&key) {
        Some(v) => {
            if !v.contains(&id) {
                v.push(id);
            }
        }
        None => {
            idx.insert(key, vec![id]);
        }
    }
}

fn remove_from_index<K: Ord>(idx: &mut AvlMap<K, Vec<InterfaceId>>, key: &K, id: InterfaceId) {
    let emptied = match idx.get_mut(key) {
        Some(v) => {
            v.retain(|x| *x != id);
            v.is_empty()
        }
        None => false,
    };
    if emptied {
        idx.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn mac(s: &str) -> MacAddr {
        s.parse().unwrap()
    }

    fn subnet(s: &str) -> Subnet {
        s.parse().unwrap()
    }

    #[test]
    fn ping_then_arp_merges_into_one_record() {
        let mut j = Journal::new();
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.5")),
            JTime(10),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.5"), mac("08:00:20:00:00:05")),
            JTime(20),
        );
        let recs = j.get_interfaces(&InterfaceQuery::by_ip(ip("10.0.0.5")));
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.mac_addr(), Some(mac("08:00:20:00:00:05")));
        assert_eq!(r.discovered, JTime(10));
        assert!(r.sources.contains(Source::SeqPing));
        assert!(r.sources.contains(Source::ArpWatch));
        j.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_ip_keeps_two_records() {
        let mut j = Journal::new();
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(1),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("00:00:0c:00:00:02")),
            JTime(2),
        );
        let recs = j.get_interfaces(&InterfaceQuery::by_ip(ip("10.0.0.9")));
        assert_eq!(recs.len(), 2, "duplicate address must stay visible");
        j.check_invariants().unwrap();
    }

    #[test]
    fn proxy_arp_mac_with_multiple_ips_keeps_records() {
        let mut j = Journal::new();
        let gw_mac = mac("00:00:0c:aa:bb:cc");
        for i in 1..=3u8 {
            j.apply(
                &Observation::arp_pair(Source::EtherHostProbe, Ipv4Addr::new(10, 0, 0, i), gw_mac),
                JTime(u64::from(i)),
            );
        }
        let recs = j.get_interfaces(&InterfaceQuery::by_mac(gw_mac));
        assert_eq!(recs.len(), 3, "one MAC answering three IPs: three records");
        j.check_invariants().unwrap();
    }

    #[test]
    fn reverification_updates_timestamps_only() {
        let mut j = Journal::new();
        let o = Observation::arp_pair(Source::ArpWatch, ip("10.0.0.5"), mac("08:00:20:00:00:05"));
        let s1 = j.apply(&o, JTime(10));
        assert_eq!(s1.created, 1);
        let s2 = j.apply(&o, JTime(99));
        assert_eq!(s2.verified, 1);
        assert_eq!(s2.updated, 0);
        let r = &j.get_interfaces(&InterfaceQuery::all())[0];
        assert_eq!(r.verified, JTime(99));
        assert_eq!(r.changed, JTime(10));
    }

    #[test]
    fn dns_verification_does_not_count_as_live() {
        let mut j = Journal::new();
        j.apply(
            &Observation::named_ip(Source::Dns, ip("10.0.0.7"), "ghost.cs"),
            JTime(5),
        );
        let r = &j.get_interfaces(&InterfaceQuery::all())[0];
        assert_eq!(r.live_verified, None);
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.7")),
            JTime(9),
        );
        let r = &j.get_interfaces(&InterfaceQuery::all())[0];
        assert_eq!(r.live_verified, Some(JTime(9)));
        assert_eq!(r.dns_name(), Some("ghost.cs"));
    }

    #[test]
    fn mask_observation_attaches_to_ip() {
        let mut j = Journal::new();
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.1.4")),
            JTime(0),
        );
        j.apply(
            &Observation::mask(
                Source::SubnetMasks,
                ip("10.0.1.4"),
                fremont_net::SubnetMask::from_prefix_len(24).unwrap(),
            ),
            JTime(1),
        );
        let r = &j.get_interfaces(&InterfaceQuery::by_ip(ip("10.0.1.4")))[0];
        assert_eq!(r.subnet(), Some(subnet("10.0.1.0/24")));
    }

    #[test]
    fn subnet_upsert_and_mask_confirmation() {
        let mut j = Journal::new();
        let s = subnet("128.138.238.0/24");
        let s1 = j.apply(&Observation::subnet(Source::RipWatch, s, true), JTime(1));
        assert_eq!(s1.created, 1);
        assert!(j.subnet(&s).unwrap().mask_assumed);
        let s2 = j.apply(
            &Observation::subnet(Source::SubnetMasks, s, false),
            JTime(2),
        );
        assert_eq!(s2.updated, 1);
        assert!(!j.subnet(&s).unwrap().mask_assumed);
        // A later assumed observation does not downgrade.
        j.apply(&Observation::subnet(Source::RipWatch, s, true), JTime(3));
        assert!(!j.subnet(&s).unwrap().mask_assumed);
    }

    #[test]
    fn gateway_merge_across_modules() {
        let mut j = Journal::new();
        // Traceroute sees interfaces .1 on two subnets as one gateway.
        j.apply(
            &Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![ip("128.138.238.1")],
                    interface_names: vec![],
                    subnets: vec![subnet("128.138.238.0/24"), subnet("128.138.240.0/24")],
                },
            ),
            JTime(10),
        );
        // DNS later learns the same box via another interface plus a shared ip.
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::Gateway {
                    interface_ips: vec![ip("128.138.238.1"), ip("128.138.240.1")],
                    interface_names: vec![],
                    subnets: vec![],
                },
            ),
            JTime(20),
        );
        let gws = j.get_gateways();
        assert_eq!(gws.len(), 1, "both observations describe one gateway");
        let g = &gws[0];
        assert!(g.subnets.contains(&subnet("128.138.238.0/24")));
        assert!(g.subnets.contains(&subnet("128.138.240.0/24")));
        assert_eq!(g.interfaces.len(), 2);
        assert!(g.sources.contains(Source::Traceroute));
        assert!(g.sources.contains(Source::Dns));
        // Subnet records point back at the gateway.
        assert_eq!(
            j.subnet(&subnet("128.138.238.0/24")).unwrap().gateways,
            vec![g.id]
        );
        j.check_invariants().unwrap();
    }

    #[test]
    fn distinct_gateways_merge_when_bridged() {
        let mut j = Journal::new();
        // Two modules each discover a different interface of the same box.
        j.apply(
            &Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![ip("10.1.0.1")],
                    interface_names: vec![],
                    subnets: vec![subnet("10.1.0.0/24")],
                },
            ),
            JTime(1),
        );
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::Gateway {
                    interface_ips: vec![ip("10.2.0.1")],
                    interface_names: vec![],
                    subnets: vec![subnet("10.2.0.0/24")],
                },
            ),
            JTime(2),
        );
        assert_eq!(j.get_gateways().len(), 2);
        // A third observation bridges them.
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::Gateway {
                    interface_ips: vec![ip("10.1.0.1"), ip("10.2.0.1")],
                    interface_names: vec![],
                    subnets: vec![],
                },
            ),
            JTime(3),
        );
        let gws = j.get_gateways();
        assert_eq!(gws.len(), 1, "bridging observation merges gateways");
        assert_eq!(gws[0].interfaces.len(), 2);
        assert_eq!(gws[0].subnets.len(), 2);
        j.check_invariants().unwrap();
    }

    #[test]
    fn rip_source_flags() {
        let mut j = Journal::new();
        j.apply(
            &Observation::new(
                Source::RipWatch,
                Fact::RipSource {
                    ip: ip("10.0.0.1"),
                    mac: Some(mac("00:00:0c:01:02:03")),
                    advertised_routes: 40,
                    promiscuous: false,
                },
            ),
            JTime(1),
        );
        let r = &j.get_interfaces(&InterfaceQuery::by_ip(ip("10.0.0.1")))[0];
        assert!(r.rip_source);
        assert!(!r.rip_promiscuous);
        let q = InterfaceQuery {
            rip_source: Some(true),
            ..Default::default()
        };
        assert_eq!(j.get_interfaces(&q).len(), 1);
    }

    #[test]
    fn subnet_stats_recorded() {
        let mut j = Journal::new();
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::SubnetStats {
                    subnet: subnet("128.138.243.0/24"),
                    host_count: 56,
                    lowest: ip("128.138.243.1"),
                    highest: ip("128.138.243.91"),
                },
            ),
            JTime(1),
        );
        let r = j.subnet(&subnet("128.138.243.0/24")).unwrap();
        assert_eq!(r.host_count.as_ref().map(|t| *t.get()), Some(56));
        assert_eq!(r.lowest, Some(ip("128.138.243.1")));
        assert_eq!(r.highest, Some(ip("128.138.243.91")));
    }

    #[test]
    fn delete_interface_cleans_indexes() {
        let mut j = Journal::new();
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.5"), mac("08:00:20:00:00:05")),
            JTime(1),
        );
        let id = j.get_interfaces(&InterfaceQuery::all())[0].id;
        assert!(j.delete_interface(id));
        assert!(!j.delete_interface(id));
        assert!(j.get_interfaces(&InterfaceQuery::all()).is_empty());
        assert!(j
            .get_interfaces(&InterfaceQuery::by_ip(ip("10.0.0.5")))
            .is_empty());
        j.check_invariants().unwrap();
    }

    #[test]
    fn modification_order_tracks_changes() {
        let mut j = Journal::new();
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.1")),
            JTime(1),
        );
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.2")),
            JTime(2),
        );
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.3")),
            JTime(3),
        );
        // Touch .1 with a change (new mac) so it moves to the end.
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.1"), mac("08:00:20:00:00:01")),
            JTime(4),
        );
        let order: Vec<_> = j
            .interfaces_by_modification()
            .iter()
            .map(|r| r.ip_addr().unwrap())
            .collect();
        assert_eq!(
            order,
            vec![ip("10.0.0.2"), ip("10.0.0.3"), ip("10.0.0.1")],
            "most recently changed records move to the end"
        );
    }

    #[test]
    fn ip_change_on_same_mac_reindexes() {
        let mut j = Journal::new();
        let m = mac("08:00:20:00:00:07");
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.7"), m),
            JTime(1),
        );
        // The host was renumbered; EtherHostProbe sees the same MAC with a
        // previously-unknown IP. Policy: new record (visible reconfiguration).
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.77"), m),
            JTime(2),
        );
        let recs = j.get_interfaces(&InterfaceQuery::by_mac(m));
        assert_eq!(recs.len(), 2);
        j.check_invariants().unwrap();
    }

    #[test]
    fn stats_counts() {
        let mut j = Journal::new();
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.1")),
            JTime(1),
        );
        j.apply(
            &Observation::subnet(Source::RipWatch, subnet("10.0.0.0/24"), true),
            JTime(1),
        );
        let s = j.stats();
        assert_eq!(s.interfaces, 1);
        assert_eq!(s.subnets, 1);
        assert_eq!(s.gateways, 0);
        assert_eq!(s.observations_applied, 2);
    }

    #[test]
    fn query_uses_subnet_index_path() {
        let mut j = Journal::new();
        for i in 1..=20u8 {
            j.apply(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 1, i)),
                JTime(1),
            );
            j.apply(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 2, i)),
                JTime(1),
            );
        }
        let recs = j.get_interfaces(&InterfaceQuery::in_subnet(subnet("10.0.1.0/24")));
        assert_eq!(recs.len(), 20);
        assert!(recs.iter().all(|r| r.ip_addr().unwrap().octets()[2] == 1));
    }
}
