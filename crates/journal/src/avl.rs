//! A from-scratch AVL tree map.
//!
//! The paper's Journal Server indexes its interface records "by three AVL
//! trees, for lookups by Ethernet address, IP address, and DNS name", plus
//! one more for subnet records. We implement the same structure rather than
//! reaching for `BTreeMap`, both for fidelity and because the Journal needs
//! ordered *range* scans over each index (e.g. "all interfaces in this
//! address range").
//!
//! The implementation is recursive over `Box` nodes, fully safe, and
//! property-tested against `BTreeMap` in `tests/prop_avl.rs`.

use core::cmp::Ordering;
use core::fmt;
use std::ops::Bound;

/// An ordered map implemented as an AVL tree.
///
/// # Examples
///
/// ```
/// use fremont_journal::avl::AvlMap;
///
/// let mut m = AvlMap::new();
/// m.insert(3, "c");
/// m.insert(1, "a");
/// m.insert(2, "b");
/// assert_eq!(m.get(&2), Some(&"b"));
/// let keys: Vec<_> = m.iter().map(|(k, _)| *k).collect();
/// assert_eq!(keys, vec![1, 2, 3]);
/// ```
pub struct AvlMap<K, V> {
    root: Link<K, V>,
    len: usize,
}

type Link<K, V> = Option<Box<Node<K, V>>>;

struct Node<K, V> {
    key: K,
    value: V,
    height: i8,
    left: Link<K, V>,
    right: Link<K, V>,
}

impl<K: Ord, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> AvlMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AvlMap { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a key/value pair, returning the previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let root = self.root.take();
        let (new_root, old) = insert_rec(root, key, value);
        self.root = new_root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
                Ordering::Equal => return Some(&n.value),
            }
        }
        None
    }

    /// Looks up a value mutably by key.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut cur = self.root.as_deref_mut();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = n.left.as_deref_mut(),
                Ordering::Greater => cur = n.right.as_deref_mut(),
                Ordering::Equal => return Some(&mut n.value),
            }
        }
        None
    }

    /// Returns `true` when the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let root = self.root.take();
        let (new_root, removed) = remove_rec(root, key);
        self.root = new_root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// The smallest key/value pair.
    pub fn first(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        while let Some(l) = cur.left.as_deref() {
            cur = l;
        }
        Some((&cur.key, &cur.value))
    }

    /// The largest key/value pair.
    pub fn last(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        while let Some(r) = cur.right.as_deref() {
            cur = r;
        }
        Some((&cur.key, &cur.value))
    }

    /// In-order iterator over all entries.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::over(self.root.as_deref(), Bound::Unbounded, Bound::Unbounded)
    }

    /// In-order iterator over entries with keys in the given bounds.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::ops::Bound;
    /// use fremont_journal::avl::AvlMap;
    ///
    /// let mut m = AvlMap::new();
    /// for k in 0..10 { m.insert(k, k * k); }
    /// let in_range: Vec<_> = m
    ///     .range((Bound::Included(&3), Bound::Excluded(&6)))
    ///     .map(|(k, _)| *k)
    ///     .collect();
    /// assert_eq!(in_range, vec![3, 4, 5]);
    /// ```
    pub fn range<'a>(&'a self, bounds: (Bound<&'a K>, Bound<&'a K>)) -> Iter<'a, K, V> {
        Iter::over(self.root.as_deref(), bounds.0, bounds.1)
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    /// Tree height (for diagnostics; `0` for the empty tree).
    pub fn height(&self) -> usize {
        height(&self.root) as usize
    }

    /// Verifies the AVL invariants (ordering + balance); used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk<K: Ord, V>(
            link: &Link<K, V>,
            lo: Option<&K>,
            hi: Option<&K>,
        ) -> Result<i8, String> {
            let Some(n) = link.as_deref() else {
                return Ok(0);
            };
            if let Some(lo) = lo {
                if n.key <= *lo {
                    return Err("ordering violated (left bound)".to_owned());
                }
            }
            if let Some(hi) = hi {
                if n.key >= *hi {
                    return Err("ordering violated (right bound)".to_owned());
                }
            }
            let lh = walk(&n.left, lo, Some(&n.key))?;
            let rh = walk(&n.right, Some(&n.key), hi)?;
            if (lh - rh).abs() > 1 {
                return Err(format!("balance violated ({lh} vs {rh})"));
            }
            let h = 1 + lh.max(rh);
            if h != n.height {
                return Err(format!("stale height (stored {}, actual {h})", n.height));
            }
            Ok(h)
        }
        let counted = self.iter().count();
        if counted != self.len {
            return Err(format!(
                "len mismatch (stored {}, actual {counted})",
                self.len
            ));
        }
        walk(&self.root, None, None).map(|_| ())
    }
}

impl<K: Ord + fmt::Debug, V: fmt::Debug> fmt::Debug for AvlMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone> Clone for AvlMap<K, V> {
    fn clone(&self) -> Self {
        let mut m = AvlMap::new();
        for (k, v) in self.iter() {
            m.insert(k.clone(), v.clone());
        }
        m
    }
}

fn height<K, V>(link: &Link<K, V>) -> i8 {
    link.as_deref().map_or(0, |n| n.height)
}

fn update_height<K, V>(n: &mut Node<K, V>) {
    n.height = 1 + height(&n.left).max(height(&n.right));
}

fn balance_factor<K, V>(n: &Node<K, V>) -> i8 {
    height(&n.left) - height(&n.right)
}

fn rotate_right<K, V>(mut n: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut l = n.left.take().expect("rotate_right requires left child");
    n.left = l.right.take();
    update_height(&mut n);
    l.right = Some(n);
    update_height(&mut l);
    l
}

fn rotate_left<K, V>(mut n: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut r = n.right.take().expect("rotate_left requires right child");
    n.right = r.left.take();
    update_height(&mut n);
    r.left = Some(n);
    update_height(&mut r);
    r
}

fn rebalance<K, V>(mut n: Box<Node<K, V>>) -> Box<Node<K, V>> {
    update_height(&mut n);
    let bf = balance_factor(&n);
    if bf > 1 {
        if balance_factor(n.left.as_deref().expect("bf>1 implies left")) < 0 {
            n.left = Some(rotate_left(n.left.take().expect("checked")));
        }
        return rotate_right(n);
    }
    if bf < -1 {
        if balance_factor(n.right.as_deref().expect("bf<-1 implies right")) > 0 {
            n.right = Some(rotate_right(n.right.take().expect("checked")));
        }
        return rotate_left(n);
    }
    n
}

fn insert_rec<K: Ord, V>(link: Link<K, V>, key: K, value: V) -> (Link<K, V>, Option<V>) {
    match link {
        None => (
            Some(Box::new(Node {
                key,
                value,
                height: 1,
                left: None,
                right: None,
            })),
            None,
        ),
        Some(mut n) => match key.cmp(&n.key) {
            Ordering::Less => {
                let (l, old) = insert_rec(n.left.take(), key, value);
                n.left = l;
                (Some(rebalance(n)), old)
            }
            Ordering::Greater => {
                let (r, old) = insert_rec(n.right.take(), key, value);
                n.right = r;
                (Some(rebalance(n)), old)
            }
            Ordering::Equal => {
                let old = core::mem::replace(&mut n.value, value);
                (Some(n), Some(old))
            }
        },
    }
}

/// Removes and returns the minimum node of a non-empty subtree.
fn take_min<K: Ord, V>(mut n: Box<Node<K, V>>) -> (Link<K, V>, Box<Node<K, V>>) {
    if n.left.is_none() {
        let right = n.right.take();
        return (right, n);
    }
    let (new_left, min) = take_min(n.left.take().expect("checked non-none"));
    n.left = new_left;
    (Some(rebalance(n)), min)
}

fn remove_rec<K: Ord, V>(link: Link<K, V>, key: &K) -> (Link<K, V>, Option<V>) {
    match link {
        None => (None, None),
        Some(mut n) => match key.cmp(&n.key) {
            Ordering::Less => {
                let (l, removed) = remove_rec(n.left.take(), key);
                n.left = l;
                (Some(rebalance(n)), removed)
            }
            Ordering::Greater => {
                let (r, removed) = remove_rec(n.right.take(), key);
                n.right = r;
                (Some(rebalance(n)), removed)
            }
            Ordering::Equal => match (n.left.take(), n.right.take()) {
                (None, None) => (None, Some(n.value)),
                (Some(l), None) => (Some(l), Some(n.value)),
                (None, Some(r)) => (Some(r), Some(n.value)),
                (Some(l), Some(r)) => {
                    let (new_right, mut successor) = take_min(r);
                    successor.left = Some(l);
                    successor.right = new_right;
                    (Some(rebalance(successor)), Some(n.value))
                }
            },
        },
    }
}

/// In-order (optionally bounded) iterator over an [`AvlMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    upper: Bound<&'a K>,
}

impl<'a, K: Ord, V> Iter<'a, K, V> {
    fn over(root: Option<&'a Node<K, V>>, lower: Bound<&'a K>, upper: Bound<&'a K>) -> Self {
        let mut it = Iter {
            stack: Vec::new(),
            upper,
        };
        it.push_left_edge(root, &lower);
        it
    }

    /// Descends the left spine, skipping subtrees entirely below `lower`.
    fn push_left_edge(&mut self, mut link: Option<&'a Node<K, V>>, lower: &Bound<&'a K>) {
        while let Some(n) = link {
            let in_range = match lower {
                Bound::Unbounded => true,
                Bound::Included(lo) => n.key >= **lo,
                Bound::Excluded(lo) => n.key > **lo,
            };
            if in_range {
                self.stack.push(n);
                link = n.left.as_deref();
            } else {
                link = n.right.as_deref();
            }
        }
    }
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let within = match self.upper {
            Bound::Unbounded => true,
            Bound::Included(hi) => n.key <= *hi,
            Bound::Excluded(hi) => n.key < *hi,
        };
        if !within {
            self.stack.clear();
            return None;
        }
        // Successors of `n` under the lower bound were already admitted, so
        // push the full left edge of the right subtree.
        let mut link = n.right.as_deref();
        while let Some(r) = link {
            self.stack.push(r);
            link = r.left.as_deref();
        }
        Some((&n.key, &n.value))
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a AvlMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for AvlMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = AvlMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = AvlMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(5, "FIVE"), Some("five"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&5), Some(&"FIVE"));
        assert_eq!(m.remove(&5), Some("FIVE"));
        assert_eq!(m.remove(&5), None);
        assert!(m.is_empty());
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let mut m = AvlMap::new();
        for k in 0..1024 {
            m.insert(k, k);
            m.check_invariants().unwrap();
        }
        // A perfectly balanced 1024-node tree has height 11; AVL guarantees
        // within ~1.44x of optimal.
        assert!(m.height() <= 15, "height {} too large", m.height());
    }

    #[test]
    fn descending_inserts_stay_balanced() {
        let mut m = AvlMap::new();
        for k in (0..512).rev() {
            m.insert(k, ());
        }
        m.check_invariants().unwrap();
        assert!(m.height() <= 14);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = AvlMap::new();
        for k in [5, 3, 9, 1, 7, 2, 8, 0, 6, 4] {
            m.insert(k, k * 10);
        }
        let items: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(items, (0..10).map(|k| (k, k * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn range_bounds() {
        let mut m = AvlMap::new();
        for k in 0..100 {
            m.insert(k, ());
        }
        let r: Vec<_> = m
            .range((Bound::Included(&10), Bound::Included(&12)))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(r, vec![10, 11, 12]);
        let r: Vec<_> = m
            .range((Bound::Excluded(&97), Bound::Unbounded))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(r, vec![98, 99]);
        let r: Vec<_> = m
            .range((Bound::Unbounded, Bound::Excluded(&2)))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(r, vec![0, 1]);
        let r = m
            .range((Bound::Included(&50), Bound::Excluded(&50)))
            .count();
        assert_eq!(r, 0);
    }

    #[test]
    fn range_on_sparse_keys() {
        let mut m = AvlMap::new();
        for k in [10, 20, 30, 40, 50] {
            m.insert(k, ());
        }
        let r: Vec<_> = m
            .range((Bound::Included(&15), Bound::Included(&45)))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(r, vec![20, 30, 40]);
    }

    #[test]
    fn remove_keeps_balance() {
        let mut m = AvlMap::new();
        for k in 0..200 {
            m.insert(k, k);
        }
        for k in (0..200).step_by(2) {
            assert_eq!(m.remove(&k), Some(k));
            m.check_invariants().unwrap();
        }
        assert_eq!(m.len(), 100);
        for k in 0..200 {
            assert_eq!(m.contains_key(&k), k % 2 == 1);
        }
    }

    #[test]
    fn remove_root_with_two_children() {
        let mut m = AvlMap::new();
        for k in [50, 25, 75, 12, 37, 62, 87] {
            m.insert(k, k);
        }
        assert_eq!(m.remove(&50), Some(50));
        m.check_invariants().unwrap();
        let keys: Vec<_> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![12, 25, 37, 62, 75, 87]);
    }

    #[test]
    fn first_and_last() {
        let mut m = AvlMap::new();
        assert_eq!(m.first(), None);
        for k in [5, 1, 9, 3] {
            m.insert(k, k * 2);
        }
        assert_eq!(m.first(), Some((&1, &2)));
        assert_eq!(m.last(), Some((&9, &18)));
    }

    #[test]
    fn get_mut_modifies() {
        let mut m = AvlMap::new();
        m.insert("a", 1);
        *m.get_mut(&"a").unwrap() += 10;
        assert_eq!(m.get(&"a"), Some(&11));
        assert_eq!(m.get_mut(&"b"), None);
    }

    #[test]
    fn clone_is_deep() {
        let mut m = AvlMap::new();
        m.insert(1, "one");
        let c = m.clone();
        m.insert(2, "two");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&"one"));
    }

    #[test]
    fn clear_resets() {
        let mut m: AvlMap<i32, i32> = (0..10).map(|k| (k, k)).collect();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn string_keys() {
        let mut m = AvlMap::new();
        for name in ["bruno", "anchor", "piper", "spot"] {
            m.insert(name.to_owned(), ());
        }
        let names: Vec<_> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["anchor", "bruno", "piper", "spot"]);
    }
}
