//! K-way merge of sorted per-shard result lists.

/// Merges per-shard lists, each already sorted ascending by `key`, into one
/// sorted list.
///
/// Ties go to the lowest shard index; in practice every caller uses globally
/// unique keys (insertion sequences, record ids, modification keys), so ties
/// cannot occur. Shard counts are small, so a linear selection over the list
/// heads beats a heap here.
pub(super) fn k_way<T, K: Ord>(mut lists: Vec<Vec<T>>, key: impl Fn(&T) -> K) -> Vec<T> {
    for list in &mut lists {
        list.reverse(); // pop() now yields elements front-first
    }
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<usize> = None;
        for (i, list) in lists.iter().enumerate() {
            let Some(head) = list.last() else { continue };
            let better = match best.and_then(|b| lists[b].last()) {
                None => true,
                Some(best_head) => key(head) < key(best_head),
            };
            if better {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        if let Some(item) = lists[i].pop() {
            out.push(item);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::k_way;

    #[test]
    fn merges_sorted_runs() {
        let merged = k_way(
            vec![vec![1u32, 4, 7], vec![2, 3, 9], vec![], vec![5, 6, 8]],
            |x| *x,
        );
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn ties_prefer_lowest_list() {
        let merged = k_way(vec![vec![(1u32, "a")], vec![(1, "b")]], |x| x.0);
        assert_eq!(merged, vec![(1, "a"), (1, "b")]);
    }
}
